#!/usr/bin/env python3
"""How many layers can be stacked? (the Sec. 4.1 screening study)

Sweeps layer count and cooling options with the HotSpot-lite solver and
reports the hotspot temperature, reproducing the paper's setup decision
that 8 layers of the 16-core processor are feasible under air cooling
(hotspot below 100 C), and showing how far volumetric cooling would
push the wall.

Run:  python examples/thermal_feasibility.py
"""

from repro import StackConfig
from repro.thermal import HotSpotLite, ThermalConfig, max_feasible_layers

GRID = 12
LIMIT = 100.0

COOLING_OPTIONS = {
    "air (paper default)": ThermalConfig(),
    "high-end air": ThermalConfig(sink_resistance=0.12),
    "cold plate / liquid": ThermalConfig(sink_resistance=0.05),
    "microchannel (volumetric)": ThermalConfig(sink_resistance=0.02),
}


def main() -> None:
    print(f"Hotspot temperature (C) at peak power, {LIMIT:.0f} C limit\n")
    header = f"{'layers':>7} | " + " | ".join(f"{n:^24}" for n in COOLING_OPTIONS)
    print(header)
    print("-" * len(header))
    for n in (1, 2, 4, 6, 8, 10, 12):
        row = [f"{n:>7}"]
        for config in COOLING_OPTIONS.values():
            stack = StackConfig(n_layers=n, grid_nodes=GRID)
            hotspot = HotSpotLite(stack, config).solve().hotspot
            flag = " " if hotspot <= LIMIT else "*"
            row.append(f"{hotspot:>22.1f}{flag} ")
        print(" | ".join(row))
    print("\n(* exceeds the 100 C hotspot limit)\n")

    base = StackConfig(n_layers=1, grid_nodes=GRID)
    for name, config in COOLING_OPTIONS.items():
        feasible = max_feasible_layers(base, LIMIT, max_layers=16, config=config)
        print(f"max feasible layers with {name:<26}: {feasible}")
    print(
        "\nThe paper's air-cooled limit of 8 layers is what bounds its design\n"
        "space; better-than-air cooling shifts the power-delivery problem\n"
        "(this library's subject) to even taller stacks."
    )


if __name__ == "__main__":
    main()
