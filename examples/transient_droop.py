#!/usr/bin/env python3
"""Transient (di/dt) droop after a full-chip power step — an extension.

The paper's results are static IR drop; this example exercises the
transient extension: settle a stack at idle, step every core to full
activity in one cycle, and watch the local supply headroom at the top
layer.  Compares the regular and voltage-stacked arrangements and the
effect of on-chip decap budget.

Run:  python examples/transient_droop.py
"""

from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.pdn.transient import TransientPDNAnalysis

N_LAYERS = 2
GRID = 8


def droop_for(factory, decap_nf: float) -> float:
    analysis = TransientPDNAnalysis(
        factory, decap_per_layer=decap_nf * 1e-9, dt=50e-12
    )
    trace = analysis.load_step(warmup_steps=400, step_steps=400)
    return analysis.first_droop(trace)


def main() -> None:
    print(f"{N_LAYERS}-layer stack, idle -> full-power step, 50 ps timestep\n")
    print(f"{'decap/layer':>12} | {'regular droop':>14} | {'V-S droop':>10}")
    print("-" * 44)
    for decap_nf in (50, 100, 200, 400):
        reg = droop_for(
            lambda: build_regular_pdn(
                N_LAYERS, grid_nodes=GRID, package_inductor_nodes=True
            ),
            decap_nf,
        )
        vs = droop_for(
            lambda: build_stacked_pdn(
                N_LAYERS,
                converters_per_core=4,
                grid_nodes=GRID,
                package_inductor_nodes=True,
            ),
            decap_nf,
        )
        print(
            f"{decap_nf:>9} nF | {reg * 1e3:>11.2f} mV | {vs * 1e3:>7.2f} mV"
        )
    print(
        "\nBoth arrangements recover to their static IR-drop level within a\n"
        "few RC time constants.  The V-S PDN's recycled (one-layer-worth)\n"
        "supply current keeps its transient excursion smaller too.  With the\n"
        "260 uF on-package decap holding the rails, the on-chip decap budget\n"
        "barely moves the first droop -- remove the package capacitor from\n"
        "PackageModel to see the on-chip budget take over."
    )


if __name__ == "__main__":
    main()
