#!/usr/bin/env python3
"""Imbalance-aware scheduling on a voltage-stacked processor (Sec. 5.2).

The paper suggests that "by scheduling different instances of the same
application ... onto the cores in the same core-stack, we can reduce the
workload-imbalance and a V-S PDN's noise".  This example quantifies that
end to end: sample PARSEC-like workloads, schedule them onto a 4-layer
voltage-stacked processor either naively (random mix) or same-app-
per-stack, and compare the resulting supply noise from full PDN solves.

Run:  python examples/workload_scheduling.py
"""

import numpy as np

from repro import ProcessorSpec, build_stacked_pdn
from repro.utils.rng import make_rng
from repro.workload.sampling import sample_suite

N_LAYERS = 4
GRID = 12
TRIALS = 8


def layer_activities_for(apps, suite, proc, rng):
    """Draw one activity factor per layer from each layer's application."""
    activities = []
    for app in apps:
        dynamic = suite[app].dynamic_powers
        sample = dynamic[rng.integers(len(dynamic))]
        activities.append(sample / proc.dynamic_power)
    return np.clip(np.array(activities), 0.0, 1.0)


def main() -> None:
    proc = ProcessorSpec()
    rng = make_rng(7)
    suite = sample_suite(proc, n_samples=1000, rng=rng)
    names = sorted(suite)
    pdn = build_stacked_pdn(
        N_LAYERS, converters_per_core=8, grid_nodes=GRID
    )

    def run_policy(pick_apps):
        drops = []
        for _ in range(TRIALS):
            apps = pick_apps()
            acts = layer_activities_for(apps, suite, proc, rng)
            result = pdn.solve(layer_activities=acts)
            drops.append(result.max_ir_drop_fraction())
        return np.array(drops)

    mixed = run_policy(
        lambda: [names[rng.integers(len(names))] for _ in range(N_LAYERS)]
    )
    same = run_policy(
        lambda: [names[rng.integers(len(names))]] * N_LAYERS
    )

    print(f"{N_LAYERS}-layer V-S stack, 8 converters/core, {TRIALS} trials per policy\n")
    print(f"{'policy':<28}{'mean IR drop':>14}{'worst IR drop':>15}")
    print("-" * 57)
    print(
        f"{'random application mix':<28}"
        f"{mixed.mean() * 100:>13.2f}%{mixed.max() * 100:>14.2f}%"
    )
    print(
        f"{'same app per core-stack':<28}"
        f"{same.mean() * 100:>13.2f}%{same.max() * 100:>14.2f}%"
    )
    reduction = 1 - same.mean() / mixed.mean()
    print(
        f"\nSame-application scheduling cuts average V-S supply noise by "
        f"{reduction:.0%},\nbecause samples of one application cluster tightly "
        "(Fig. 7) while mixes\nexpose the full cross-application spread."
    )


if __name__ == "__main__":
    main()
