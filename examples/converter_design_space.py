#!/usr/bin/env python3
"""SC converter design-space walk (the Sec. 3.1 circuit study).

Sweeps the 2:1 push-pull converter's fly capacitance and switching
frequency, evaluates each design point with the compact model, checks a
few points against the transient switched-capacitor simulator, and
prices the fly caps in the three integrated-capacitor technologies.

Run:  python examples/converter_design_space.py
"""

from repro import SCConverterSpec, SCCompactModel, SwitchCapSimulator
from repro.config.converters import CAPACITOR_TECHNOLOGIES
from repro.regulator.control import ClosedLoopControl, OpenLoopControl

LOAD = 0.05  # evaluation load: 50 mA (half rating)


def sweep_capacitance_and_frequency() -> None:
    print("Design sweep at 50 mA load (open loop):")
    print(f"{'C_fly (nF)':>10} {'fsw (MHz)':>10} {'RSERIES':>8} {'eff (%)':>8} "
          f"{'droop (mV)':>10}")
    for c_nf in (2, 4, 8, 16):
        for f_mhz in (25, 50, 100):
            spec = SCConverterSpec(
                fly_capacitance=c_nf * 1e-9, switching_frequency=f_mhz * 1e6
            )
            model = SCCompactModel(spec)
            op = model.operating_point(2.0, 0.0, LOAD)
            print(
                f"{c_nf:>10} {f_mhz:>10} {model.r_series():>8.3f} "
                f"{op.efficiency * 100:>8.1f} {op.voltage_drop * 1e3:>10.1f}"
            )
    print()


def validate_chosen_design() -> None:
    spec = SCConverterSpec()  # the paper's 8 nF / 50 MHz design
    model = SCCompactModel(spec)
    sim = SwitchCapSimulator(spec)
    print("Validation of the chosen design against the transient simulator:")
    print(f"{'policy':>12} {'I (mA)':>7} {'eff model':>10} {'eff sim':>8} "
          f"{'droop model':>12} {'droop sim':>10}")
    for policy in (OpenLoopControl(), ClosedLoopControl()):
        for load in (0.01, 0.05, 0.09):
            fsw = policy.frequency(spec, load)
            op = model.operating_point(2.0, 0.0, load, fsw=fsw)
            tr = sim.steady_state(load, fsw=fsw)
            print(
                f"{policy.name:>12} {load * 1e3:>7.0f} "
                f"{op.efficiency * 100:>9.1f}% {tr.efficiency * 100:>7.1f}% "
                f"{op.voltage_drop * 1e3:>10.1f}mV {tr.voltage_drop * 1e3:>8.1f}mV"
            )
    print()


def price_capacitor_technologies() -> None:
    print("Fly-capacitor technology options for the 8 nF design:")
    for name, tech in CAPACITOR_TECHNOLOGIES.items():
        spec = SCConverterSpec(capacitor_technology=name)
        print(
            f"  {name:<14} converter area {spec.area * 1e6:.3f} mm^2 "
            f"(density {tech.density * 1e-12 * 1e6:.1f} fF/um^2)"
        )
    print()
    print("The paper's Fig. 6 equal-area comparison assumes the trench option:")
    from repro.config.stackups import ProcessorSpec
    from repro.regulator.area import converters_area_overhead

    overhead = converters_area_overhead(
        SCConverterSpec(), 8, ProcessorSpec().core_area, technology="trench"
    )
    print(f"  8 converters/core cost {overhead:.1%} of a core "
          "(~= the Dense TSV topology's 24% KoZ overhead).")


def main() -> None:
    sweep_capacitance_and_frequency()
    validate_chosen_design()
    price_capacitor_technologies()


if __name__ == "__main__":
    main()
