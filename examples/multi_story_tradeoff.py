#!/usr/bin/env python3
"""Multi-story power delivery: between the paper's two extremes.

The paper compares fully-parallel and fully-stacked power delivery; its
reference [6] (Jain et al., ISLPED 2008) proposed the middle ground:
stories of ``h`` voltage-stacked layers, stories paralleled.  This
example sweeps ``h`` for an 8-layer stack at the PARSEC-average
imbalance and prints the whole trade-off surface, then translates the
noise column into frequency guardbands.

Run:  python examples/multi_story_tradeoff.py
"""

import numpy as np

from repro.config.stackups import StackConfig
from repro.core.guardband import AlphaPowerModel
from repro.em import (
    C4_CROSS_SECTION,
    expected_em_lifetime,
    median_lifetimes_from_currents,
)
from repro.pdn.hybrid3d import HybridPDN3D
from repro.workload.imbalance import interleaved_layer_activities
from repro.workload.parsec import average_max_imbalance

GRID = 12
N_LAYERS = 8


def main() -> None:
    imbalance = average_max_imbalance()
    stack = StackConfig(n_layers=N_LAYERS, grid_nodes=GRID)
    activities = interleaved_layer_activities(N_LAYERS, imbalance)
    guardband = AlphaPowerModel()

    print(
        f"{N_LAYERS}-layer stack at {imbalance:.0%} workload imbalance, "
        "8 converters/core where stories are stacked\n"
    )
    print(
        f"{'h':>3} | {'supply':>7} | {'IR drop':>8} | {'f guard':>8} | "
        f"{'eff':>6} | {'pad I max':>10} | {'C4 EM life':>10}"
    )
    print("-" * 72)
    reference = None
    for h in (1, 2, 4, 8):
        pdn = HybridPDN3D(stack, story_height=h, converters_per_core=8)
        result = pdn.solve(layer_activities=activities)
        c4 = result.conductor_currents("c4")
        life = expected_em_lifetime(
            median_lifetimes_from_currents(c4, C4_CROSS_SECTION)
        )
        if reference is None:
            reference = life
        drop = result.max_ir_drop_fraction()
        print(
            f"{h:>3} | {pdn.supply_voltage:>6.0f}V | {drop:>7.2%} | "
            f"{guardband.guardband_for_droop(drop):>7.2%} | "
            f"{result.efficiency():>5.1%} | {c4.max() * 1e3:>8.1f}mA | "
            f"{life / reference:>9.2f}x"
        )

    print(
        "\nReading: per-pad current (and hence C4 EM lifetime) scales with\n"
        "the story height, but the noise/guardband optimum is an\n"
        "*intermediate* height -- tall ladders pay regulation noise, flat\n"
        "ones pay delivery current.  Partial stacking is a real design\n"
        "point between the paper's two endpoints."
    )


if __name__ == "__main__":
    main()
