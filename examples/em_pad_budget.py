#!/usr/bin/env python3
"""Pads-as-a-scarce-resource study (the Fig. 5b design question).

A fixed pad array must be split between power delivery and I/O.  This
example asks: for a target EM lifetime, how many pads does each PDN
arrangement leave for I/O as the stack grows?  It reproduces the paper's
conclusion that voltage stacking "reduces the requirement for power
supply pads and allows more pads to be used for I/O".

Run:  python examples/em_pad_budget.py
"""

import numpy as np

from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.em import C4_CROSS_SECTION, expected_em_lifetime, median_lifetimes_from_currents

GRID = 12
LAYER_COUNTS = (2, 4, 8)
PAD_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def c4_lifetime(result) -> float:
    medians = median_lifetimes_from_currents(
        result.conductor_currents("c4"), C4_CROSS_SECTION
    )
    return expected_em_lifetime(medians)


def main() -> None:
    # Reference target: the 2-layer V-S PDN with a 25% pad budget.
    reference = c4_lifetime(
        build_stacked_pdn(2, power_pad_fraction=0.25, grid_nodes=GRID).solve()
    )
    print("Target: match the 2-layer V-S PDN's C4 EM lifetime (1.00x).\n")

    header = f"{'layers':>7} | " + " ".join(f"reg@{int(f*100)}%".rjust(9) for f in PAD_FRACTIONS)
    print(header + " |   V-S@25% | pads freed for I/O by V-S")
    print("-" * (len(header) + 42))
    for n in LAYER_COUNTS:
        cells = []
        smallest_ok = None
        for fraction in PAD_FRACTIONS:
            pdn = build_regular_pdn(n, power_pad_fraction=fraction, grid_nodes=GRID)
            life = c4_lifetime(pdn.solve()) / reference
            cells.append(f"{life:>8.2f}x")
            if smallest_ok is None and life >= 1.0:
                smallest_ok = fraction
        vs = build_stacked_pdn(n, power_pad_fraction=0.25, grid_nodes=GRID)
        vs_result = vs.solve()
        vs_life = c4_lifetime(vs_result) / reference
        total_sites = vs.pad_array.total_sites
        if smallest_ok is None:
            freed = f"regular cannot reach target even at 100%"
        else:
            freed_pads = int(total_sites * (smallest_ok - 0.25))
            freed = f"{freed_pads} pads ({smallest_ok:.0%} -> 25%)"
        print(f"{n:>7} | " + " ".join(cells) + f" | {vs_life:>8.2f}x | {freed}")

    print(
        "\nReading: each added layer multiplies the regular PDN's per-pad\n"
        "current, so matching the V-S lifetime requires an ever-larger pad\n"
        "budget -- and beyond ~4 layers no budget suffices, while the V-S\n"
        "PDN holds the target with 25% of the sites regardless of height."
    )


if __name__ == "__main__":
    main()
