#!/usr/bin/env python3
"""Electro-thermal reliability: coupling every model in the tool chain.

An end-to-end cross-layer walk that goes beyond the paper's fixed-
temperature EM analysis:

1. converge the leakage-temperature loop (McPAT-lite <-> HotSpot-lite)
   for 2/4/8-layer stacks,
2. solve the PDN with the self-consistent power maps,
3. evaluate EM lifetime with per-tier temperatures (Black's equation is
   steeply Arrhenius, and the bottom tiers are both the most loaded and
   the hottest),
4. render the bottom layer's temperature and IR-drop fields.

Run:  python examples/electrothermal_reliability.py
"""

import numpy as np

from repro.analysis.heatmap import ascii_heatmap
from repro.config.stackups import StackConfig
from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.em.thermal_coupling import thermally_coupled_lifetime
from repro.power.thermal_feedback import LeakageThermalLoop

GRID = 10


def main() -> None:
    print("Self-consistent leakage/temperature, then thermally-coupled EM:\n")
    print(f"{'layers':>7} | {'hotspot (C)':>11} | {'leak uplift':>11} | "
          f"{'reg TSV life':>12} | {'V-S TSV life':>12}")
    print("-" * 66)
    reference = None
    for n in (2, 4, 8):
        loop = LeakageThermalLoop(StackConfig(n_layers=n, grid_nodes=GRID))
        op = loop.converge()
        activities = np.ones(n)

        reg = build_regular_pdn(n, grid_nodes=GRID)
        reg_result = reg.solve(power_maps=op.power_maps)
        reg_life = thermally_coupled_lifetime(reg_result, op.thermal, "tsv")

        vs = build_stacked_pdn(n, converters_per_core=8, grid_nodes=GRID)
        vs_result = vs.solve(power_maps=op.power_maps)
        vs_life = thermally_coupled_lifetime(vs_result, op.thermal, "tsv")

        if reference is None:
            reference = vs_life
        print(
            f"{n:>7} | {op.thermal.hotspot:>11.1f} | {op.leakage_uplift:>10.1%} | "
            f"{reg_life / reference:>12.3f} | {vs_life / reference:>12.3f}"
        )

    # Spatial view of the 8-layer bottom layer, with component-level
    # (floorplanned) power density so real hotspots appear.
    loop = LeakageThermalLoop(
        StackConfig(n_layers=8, grid_nodes=GRID), floorplanned=True
    )
    op = loop.converge()
    pdn = build_regular_pdn(8, grid_nodes=GRID)
    result = pdn.solve(power_maps=op.power_maps)
    print()
    print(ascii_heatmap(
        op.thermal.layer_temperatures[0],
        title="bottom-layer temperature (8 layers, self-consistent)",
        unit=" C",
    ))
    print()
    print(ascii_heatmap(
        result.ir_drop_map(7) * 1e3,
        title="top-layer IR drop (regular PDN)",
        unit=" mV",
    ))
    print(
        "\nBeyond the paper's fixed-temperature analysis: the Arrhenius\n"
        "factor now dominates tall stacks -- the 8-layer hotspot erodes BOTH\n"
        "arrangements' lifetimes -- but the regular PDN is hit on two fronts\n"
        "(hotter AND higher current density), so the V-S advantage survives\n"
        "the coupling, and cooling quality becomes an EM knob, not just a\n"
        "thermal one."
    )


if __name__ == "__main__":
    main()
