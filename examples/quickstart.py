#!/usr/bin/env python3
"""Quickstart: compare regular vs voltage-stacked power delivery.

Builds the paper's 8-layer, 16-core-per-layer example processor with
both PDN arrangements, solves the worst-case operating point, and prints
the three headline metrics side by side: IR drop, system efficiency, and
EM-damage-free lifetime of the C4 pad array.

Run:  python examples/quickstart.py
"""

from repro import build_regular_pdn, build_stacked_pdn
from repro.em import C4_CROSS_SECTION, expected_em_lifetime, median_lifetimes_from_currents

N_LAYERS = 8
GRID = 16  # model-grid resolution (nodes per die side)


def c4_lifetime(result) -> float:
    """Expected EM-damage-free lifetime of the C4 array (arbitrary units)."""
    medians = median_lifetimes_from_currents(
        result.conductor_currents("c4"), C4_CROSS_SECTION
    )
    return expected_em_lifetime(medians)


def main() -> None:
    print(f"Building {N_LAYERS}-layer 3D stacks (grid {GRID}x{GRID} per net)...")
    regular = build_regular_pdn(N_LAYERS, topology="Few", grid_nodes=GRID)
    stacked = build_stacked_pdn(
        N_LAYERS, converters_per_core=8, topology="Few", grid_nodes=GRID
    )

    reg = regular.solve()   # regular worst case: all layers fully active
    vs = stacked.solve()

    reg_life = c4_lifetime(reg)
    vs_life = c4_lifetime(vs)

    print()
    print(f"{'metric':<38}{'regular PDN':>14}{'V-S PDN':>14}")
    print("-" * 66)
    print(
        f"{'max on-chip IR drop (% Vdd)':<38}"
        f"{reg.max_ir_drop_fraction() * 100:>13.2f}%"
        f"{vs.max_ir_drop_fraction() * 100:>13.2f}%"
    )
    print(
        f"{'system power efficiency (%)':<38}"
        f"{reg.efficiency() * 100:>13.1f}%"
        f"{vs.efficiency() * 100:>13.1f}%"
    )
    print(
        f"{'off-chip supply current (A)':<38}"
        f"{reg.solution.vsource_currents('supply')[0]:>14.1f}"
        f"{vs.solution.vsource_currents('supply')[0]:>14.1f}"
    )
    print(
        f"{'C4 EM lifetime (norm. to regular)':<38}"
        f"{1.0:>14.2f}"
        f"{vs_life / reg_life:>14.2f}"
    )
    print()
    print(
        "Voltage stacking recycles charge between layers: the stack draws\n"
        "one layer's worth of current at N*Vdd, which is what flattens the\n"
        "C4/TSV current densities and buys the EM-lifetime headroom above."
    )


if __name__ == "__main__":
    main()
