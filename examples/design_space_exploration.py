#!/usr/bin/env python3
"""Cross-layer design-space exploration (the paper's stated use case).

Sweeps PDN arrangement x TSV topology x pad budget x converters/core for
an 8-layer stack at the PARSEC-average workload imbalance, scores each
scenario on five objectives (noise, efficiency, EM lifetime, silicon
area, pad budget) and prints the Pareto frontier — "our models can help
designers to choose the optimal design point based on their specific
design objectives" (Sec. 5.3).

Run:  python examples/design_space_exploration.py
"""

from repro.core.explorer import DesignSpaceExplorer
from repro.workload.parsec import average_max_imbalance


def main() -> None:
    imbalance = average_max_imbalance()  # 65%, the paper's average
    explorer = DesignSpaceExplorer(n_layers=8, imbalance=imbalance, grid_nodes=12)
    # Pad fractions: 25%/50% as in Fig. 5b, plus the ~93% "via-rich"
    # allocation the paper uses for the V-S TSV study (32 Vdd pads/core).
    result = explorer.explore(pad_fractions=(0.25, 0.5, 0.93))

    print(result.format(pareto_only=True))
    print()
    for objective in ("noise", "efficiency", "c4_lifetime", "tsv_lifetime", "area"):
        best = result.best_by(objective)
        print(
            f"best {objective:<11}: {best.arrangement}, {best.tsv_topology} TSV, "
            f"{best.converters_per_core or 'no'} conv/core, "
            f"{best.power_pad_fraction:.0%} power pads"
        )
    n_pareto = len(result.pareto_frontier)
    n_total = len(result.points)
    n_infeasible = n_total - len(result.feasible_points)
    print(
        f"\n{n_total} design points evaluated, {n_infeasible} infeasible "
        f"(converter rating), {n_pareto} on the Pareto frontier."
    )


if __name__ == "__main__":
    main()
