"""Fig. 6 — max on-chip IR drop vs workload imbalance (8 layers)."""

from conftest import BENCH_GRID

from repro.core.experiments.fig6 import compute_fig6


def test_fig6_ir_drop(benchmark, record_output):
    result = benchmark.pedantic(
        compute_fig6, kwargs={"grid_nodes": BENCH_GRID}, rounds=1, iterations=1
    )
    lines = [result.format()]
    cross = result.crossover_imbalance(converters=8, regular="Dense")
    lines.append(
        f"\nV-S(8 conv, Few TSV) crosses Reg(Dense) at ~{cross:.0%} imbalance "
        "(paper: ~50%)"
        if cross is not None
        else "\nV-S(8 conv) never exceeds Reg(Dense) in this sweep"
    )
    record_output("\n".join(lines), "fig6_ir_drop")

    # Shape assertions mirroring the paper's reading of the figure.
    assert result.vs_at(8, 0.0) < result.regular_lines["Dense"]  # V-S wins balanced
    assert result.vs_at(8, 1.0) > result.regular_lines["Dense"]  # loses at extreme
    assert result.vs_series[2][-1] is None  # 2-conv bank saturates (skipped points)
    assert (
        result.regular_lines["Dense"]
        <= result.regular_lines["Sparse"]
        <= result.regular_lines["Few"]
    )
