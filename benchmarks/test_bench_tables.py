"""Tables 1 and 2 — parameter echo and derived TSV metrics."""

from repro.core.experiments.tables import table1_report, table2_report


def test_table1_parameters(benchmark, record_output):
    text = benchmark(table1_report)
    record_output(text, "table1_parameters")
    assert "44.539" in text


def test_table2_tsv_configs(benchmark, record_output):
    text = benchmark(table2_report)
    record_output(text, "table2_tsv_configs")
    for count in ("6650", "1675", "110"):
        assert count in text
