"""Fig. 3 — SC converter compact model vs transient circuit simulation."""

from repro.core.experiments.fig3 import compute_fig3


def test_fig3_validation(benchmark, record_output):
    result = benchmark.pedantic(compute_fig3, rounds=1, iterations=1)
    record_output(result.format(), "fig3_validation")
    # The paper's point: the compact model is accurate for both policies.
    assert result.max_efficiency_error() < 0.10
    assert result.max_vdrop_error() < 5e-3
