"""Engine-level benchmarks: PDN build/factorise/solve cost.

Not a paper figure — these time the substrate itself so regressions in
the sparse engine are visible, and they quantify the factorisation-reuse
design choice called out in DESIGN.md (RHS-only sweeps are much cheaper
than rebuilds).
"""

from conftest import BENCH_GRID, OUTPUT_DIR

from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.workload.imbalance import interleaved_layer_activities


def test_build_regular_8layer(benchmark):
    pdn = benchmark(lambda: build_regular_pdn(8, grid_nodes=BENCH_GRID))
    assert pdn.stack.n_layers == 8


def test_first_solve_regular_8layer(benchmark):
    def build_and_solve():
        return build_regular_pdn(8, grid_nodes=BENCH_GRID).solve()

    result = benchmark.pedantic(build_and_solve, rounds=3, iterations=1)
    assert result.max_ir_drop_fraction() > 0


def test_resolve_reuses_factorisation(benchmark):
    """RHS-only re-solves (the Fig. 6/8 inner loop) after one warm-up."""
    pdn = build_stacked_pdn(8, converters_per_core=8, grid_nodes=BENCH_GRID)
    pdn.solve()  # factorise once
    activities = interleaved_layer_activities(8, 0.5)

    result = benchmark(lambda: pdn.solve(layer_activities=activities))
    assert result.max_ir_drop_fraction() > 0


def _ir_drop_extract(outcome):
    return outcome.unwrap().max_ir_drop_fraction()


def test_sweep_engine_batched_speedup(benchmark, record_output):
    """SweepEngine vs rebuild-per-point on a Fig. 6-style imbalance sweep.

    The engine builds and factorises the 8-layer stacked topology once
    and solves all imbalance points in a single batched multi-RHS call;
    the baseline rebuilds the PDN for every point, which is what the
    experiment drivers did before the sweep engine existed.  The
    acceptance floor is a 3x speedup at the production grid.
    """
    import time

    from repro.runtime import SweepEngine, SweepPoint, PDNSpec
    from repro.runtime.metrics import write_bench_json

    n_layers = 8
    imbalances = tuple(round(0.1 * i, 1) for i in range(11))
    activity_sets = [
        tuple(interleaved_layer_activities(n_layers, im)) for im in imbalances
    ]
    spec = PDNSpec.stacked(n_layers, converters_per_core=8, grid_nodes=BENCH_GRID)
    points = [SweepPoint(spec=spec, layer_activities=a) for a in activity_sets]

    # Baseline: fresh build + factorisation per point (pre-engine shape).
    t0 = time.perf_counter()
    sequential = [
        build_stacked_pdn(n_layers, converters_per_core=8, grid_nodes=BENCH_GRID)
        .solve(layer_activities=a)
        .max_ir_drop_fraction()
        for a in activity_sets
    ]
    sequential_s = time.perf_counter() - t0

    engine_times = []
    last_run = {}

    def engine_sweep():
        t_start = time.perf_counter()
        engine = SweepEngine()  # cold cache every round
        run = engine.run(points, extract=_ir_drop_extract)
        engine_times.append(time.perf_counter() - t_start)
        last_run["values"] = run.values
        last_run["metrics"] = run.metrics
        return run

    benchmark.pedantic(engine_sweep, rounds=3, iterations=1)

    batched = last_run["values"]
    worst_rel = max(
        abs(a - b) / max(1.0, abs(a)) for a, b in zip(sequential, batched)
    )
    assert worst_rel <= 1e-12, "batched sweep diverged from sequential"

    engine_s = min(engine_times)
    speedup = sequential_s / engine_s
    metrics = last_run["metrics"]
    payload = {
        "benchmark": "sweep_engine_batched_speedup",
        "grid_nodes": BENCH_GRID,
        "n_layers": n_layers,
        "n_points": len(points),
        "sequential_rebuild_s": round(sequential_s, 6),
        "engine_s": round(engine_s, 6),
        "speedup": round(speedup, 3),
        "worst_rel_error": worst_rel,
        "engine": metrics.to_json(),
    }
    write_bench_json("sweep_engine", payload, directory=OUTPUT_DIR)
    record_output(
        f"sweep engine: {len(points)} points, grid {BENCH_GRID}: "
        f"rebuild-per-point {sequential_s:.3f}s -> engine {engine_s:.3f}s "
        f"({speedup:.1f}x)\n{metrics.summary()}",
        data=payload,
    )
    assert speedup >= 3.0, f"expected >=3x speedup, measured {speedup:.2f}x"


def test_em_lifetime_evaluation(benchmark):
    """Black's equation + array-CDF root find over a full TSV array."""
    from repro.em import TSV_CROSS_SECTION, expected_em_lifetime, median_lifetimes_from_currents

    pdn = build_regular_pdn(8, grid_nodes=BENCH_GRID)
    currents = pdn.solve().conductor_currents("tsv")

    def evaluate():
        medians = median_lifetimes_from_currents(currents, TSV_CROSS_SECTION)
        return expected_em_lifetime(medians)

    lifetime = benchmark(evaluate)
    assert lifetime > 0
