"""Engine-level benchmarks: PDN build/factorise/solve cost.

Not a paper figure — these time the substrate itself so regressions in
the sparse engine are visible, and they quantify the factorisation-reuse
design choice called out in DESIGN.md (RHS-only sweeps are much cheaper
than rebuilds).
"""

import numpy as np

from conftest import BENCH_GRID

from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.workload.imbalance import interleaved_layer_activities


def test_build_regular_8layer(benchmark):
    pdn = benchmark(lambda: build_regular_pdn(8, grid_nodes=BENCH_GRID))
    assert pdn.stack.n_layers == 8


def test_first_solve_regular_8layer(benchmark):
    def build_and_solve():
        return build_regular_pdn(8, grid_nodes=BENCH_GRID).solve()

    result = benchmark.pedantic(build_and_solve, rounds=3, iterations=1)
    assert result.max_ir_drop_fraction() > 0


def test_resolve_reuses_factorisation(benchmark):
    """RHS-only re-solves (the Fig. 6/8 inner loop) after one warm-up."""
    pdn = build_stacked_pdn(8, converters_per_core=8, grid_nodes=BENCH_GRID)
    pdn.solve()  # factorise once
    activities = interleaved_layer_activities(8, 0.5)

    result = benchmark(lambda: pdn.solve(layer_activities=activities))
    assert result.max_ir_drop_fraction() > 0


def test_em_lifetime_evaluation(benchmark):
    """Black's equation + array-CDF root find over a full TSV array."""
    from repro.em import TSV_CROSS_SECTION, expected_em_lifetime, median_lifetimes_from_currents

    pdn = build_regular_pdn(8, grid_nodes=BENCH_GRID)
    currents = pdn.solve().conductor_currents("tsv")

    def evaluate():
        medians = median_lifetimes_from_currents(currents, TSV_CROSS_SECTION)
        return expected_em_lifetime(medians)

    lifetime = benchmark(evaluate)
    assert lifetime > 0
