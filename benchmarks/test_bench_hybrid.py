"""Extension bench: multi-story (hybrid) power delivery sweep.

Sweeps the story height between the paper's two extremes (fully
parallel, fully stacked) and reports the whole trade-off surface —
noise, efficiency, EM-relevant currents, supply voltage.
"""

import numpy as np

from conftest import BENCH_GRID

from repro.analysis.tables import format_table
from repro.config.stackups import StackConfig
from repro.em import (
    C4_CROSS_SECTION,
    expected_em_lifetime,
    median_lifetimes_from_currents,
)
from repro.pdn.hybrid3d import HybridPDN3D
from repro.workload.imbalance import interleaved_layer_activities


def test_multi_story_tradeoff(benchmark, record_output):
    stack = StackConfig(n_layers=8, grid_nodes=12)
    activities = interleaved_layer_activities(8, 0.5)

    def sweep():
        rows = []
        lifetimes = {}
        for h in (1, 2, 4, 8):
            pdn = HybridPDN3D(stack, story_height=h, converters_per_core=8)
            result = pdn.solve(layer_activities=activities)
            c4 = result.conductor_currents("c4")
            lifetimes[h] = expected_em_lifetime(
                median_lifetimes_from_currents(c4, C4_CROSS_SECTION)
            )
            rows.append(
                (
                    h,
                    pdn.supply_voltage,
                    result.max_ir_drop_fraction() * 100,
                    result.efficiency() * 100,
                    float(c4.max()) * 1e3,
                )
            )
        reference = lifetimes[1]
        rows = [
            row + (lifetimes[row[0]] / reference,) for row in rows
        ]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        [
            "story height", "supply (V)", "IR drop (%Vdd)", "efficiency (%)",
            "max pad current (mA)", "C4 EM life (vs h=1)",
        ],
        rows,
        title=(
            "Extension: multi-story power delivery (8 layers, 50% imbalance, "
            "8 conv/core) — between the paper's regular and V-S extremes"
        ),
    )
    record_output(text, "extension_multi_story")

    by_h = {row[0]: row for row in rows}
    # EM lifetime improves monotonically with the stacked fraction...
    assert by_h[8][5] > by_h[4][5] > by_h[2][5] > by_h[1][5]
    # ...while full stacking is NOT the noise optimum at this imbalance:
    # an intermediate story height matches or beats both extremes.
    best_noise = min(row[2] for row in rows)
    assert best_noise <= min(by_h[1][2], by_h[8][2]) + 1e-9
