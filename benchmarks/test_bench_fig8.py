"""Fig. 8 — system power efficiency vs workload imbalance (8 layers)."""

from conftest import BENCH_GRID

from repro.core.experiments.fig8 import compute_fig8


def test_fig8_power_efficiency(benchmark, record_output):
    result = benchmark.pedantic(
        compute_fig8, kwargs={"grid_nodes": BENCH_GRID}, rounds=1, iterations=1
    )
    record_output(result.format(), "fig8_efficiency")

    # Paper's reading: efficiency falls with imbalance; more converters
    # cost efficiency; V-S beats the SC-for-all-power regular PDN.
    series8 = [v for v in result.vs_series[8] if v is not None]
    assert series8 == sorted(series8, reverse=True)
    assert result.vs_at(2, 0.1) > result.vs_at(8, 0.1)
    assert result.vs_at(2, 0.1) > result.regular_sc[0]
