"""Fig. 5a — power-TSV array EM-damage-free lifetime vs layer count."""

from conftest import BENCH_GRID

from repro.core.experiments.fig5 import compute_fig5a


def test_fig5a_tsv_mttf(benchmark, record_output):
    result = benchmark.pedantic(
        compute_fig5a, kwargs={"grid_nodes": BENCH_GRID}, rounds=1, iterations=1
    )
    summary = result.format() + "\n\n" + "\n".join(
        [
            f"V-S / Reg(Few) at 8 layers: {result.improvement_at(8):.2f}x (paper: >3x)",
            f"Reg(Few) lifetime loss 2->8 layers: "
            f"{result.regular_degradation():.0%} (paper: up to 84%)",
        ]
    )
    record_output(summary, "fig5a_tsv_mttf")
    assert result.improvement_at(8) > 3.0
    assert result.series["Reg. PDN, Few TSV"][0] > 1.0  # V-S worse at 2 layers
