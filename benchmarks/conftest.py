"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper at the
default (production) grid resolution, times it with pytest-benchmark,
prints the paper-style rows, and writes them to
``benchmarks/output/<name>.txt`` for inspection.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

#: Grid resolution for benchmark-grade runs (override with REPRO_BENCH_GRID
#: for quick CI smoke runs).
BENCH_GRID = int(os.environ.get("REPRO_BENCH_GRID", "20"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_output(output_dir, request):
    """Return a writer that prints and persists a figure/table rendering.

    Pass ``data`` to also write a structured ``<stem>.json`` next to the
    text rendering, so benchmark results are machine-readable.
    """

    def write(text: str, name: str = None, data: dict = None) -> None:
        stem = name or request.node.name
        path = output_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        if data is not None:
            json_path = output_dir / f"{stem}.json"
            json_path.write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )
        print()
        print(text)

    return write
