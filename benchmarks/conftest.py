"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper at the
default (production) grid resolution, times it with pytest-benchmark,
prints the paper-style rows, and writes them to
``benchmarks/output/<name>.txt`` for inspection.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

#: Grid resolution for benchmark-grade runs.
BENCH_GRID = 20

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_output(output_dir, request):
    """Return a writer that prints and persists a figure/table rendering."""

    def write(text: str, name: str = None) -> None:
        stem = name or request.node.name
        path = output_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return write
