"""Fig. 7 — PARSEC power-sample distributions (box plot)."""

from repro.core.experiments.fig7 import compute_fig7


def test_fig7_workload_distributions(benchmark, record_output):
    result = benchmark.pedantic(
        compute_fig7, kwargs={"n_samples": 1000}, rounds=1, iterations=1
    )
    record_output(result.format(), "fig7_workload")
    assert abs(result.average_max_imbalance - 0.65) < 0.05
    assert result.suite_max_imbalance > 0.9
    assert result.best_case_application() == "blackscholes"
