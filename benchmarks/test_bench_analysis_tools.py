"""Benches for the design-aid tooling built on top of the reproduction:
tornado sensitivity analysis and the statistical noise profiler."""

from conftest import BENCH_GRID

from repro.config.stackups import ProcessorSpec, StackConfig
from repro.core.noise_profile import NoiseProfiler
from repro.core.scenarios import build_stacked_pdn
from repro.core.sensitivity import SensitivityAnalysis
from repro.workload.sampling import sample_suite


def test_sensitivity_tornado(benchmark, record_output):
    analysis = SensitivityAnalysis(
        StackConfig(n_layers=8, grid_nodes=12), arrangement="regular"
    )
    entries = benchmark.pedantic(analysis.run, rounds=1, iterations=1)
    record_output(analysis.format(entries), "tool_sensitivity_tornado")
    # The calibration discussion's claim: the package/pad path dominates
    # the regular PDN's noise, the lumped metal geometry barely matters.
    assert entries[0].parameter == "package_resistance"
    by_name = {e.parameter: e for e in entries}
    assert by_name["metal_thickness"].swing < entries[0].swing / 10


def test_noise_profile_distribution(benchmark, record_output):
    pdn = build_stacked_pdn(8, converters_per_core=8, grid_nodes=12)
    suite = sample_suite(ProcessorSpec(), n_samples=1000, rng=0)
    profiler = NoiseProfiler(pdn, suite)

    profiles = benchmark.pedantic(
        lambda: profiler.compare_policies(trials=60, rng=1), rounds=1, iterations=1
    )
    lines = ["Statistical V-S noise profile (8 layers, 8 conv/core, 60 samples):"]
    for name, profile in profiles.items():
        lines.append(
            f"  {name:>9}: mean {profile.mean:.2%}  P95 "
            f"{profile.percentile(95):.2%}  worst {profile.worst:.2%} of Vdd"
        )
    gain = 1 - profiles["same-app"].mean / profiles["mixed"].mean
    lines.append(f"  same-app scheduling cuts mean noise by {gain:.0%}")
    record_output("\n".join(lines), "tool_noise_profile")
    assert profiles["same-app"].mean < profiles["mixed"].mean


def test_pdn_impedance_profile(benchmark, record_output):
    """AC extension: PDN impedance vs frequency at the top-layer load."""
    import numpy as np

    from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
    from repro.grid.ac import pdn_impedance_profile

    freqs = np.logspace(5, 10, 21)

    def evaluate():
        reg = build_regular_pdn(2, grid_nodes=10, package_inductor_nodes=True)
        vs = build_stacked_pdn(
            2, converters_per_core=8, grid_nodes=10, package_inductor_nodes=True
        )
        return (
            pdn_impedance_profile(reg, frequencies=freqs),
            pdn_impedance_profile(vs, frequencies=freqs),
        )

    reg_prof, vs_prof = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    from repro.analysis.tables import format_table

    rows = [
        (f"{f / 1e6:.2f}", r * 1e3, v * 1e3)
        for f, r, v in zip(freqs, reg_prof.magnitude, vs_prof.magnitude)
    ]
    text = format_table(
        ["frequency (MHz)", "regular |Z| (mOhm)", "V-S |Z| (mOhm)"],
        rows,
        title="Extension: PDN impedance profile at the top-layer load",
    )
    record_output(text, "extension_pdn_impedance")
    assert np.all(np.isfinite(reg_prof.magnitude))
    assert reg_prof.magnitude[-1] < reg_prof.magnitude[0]  # decap roll-off


def test_frequency_guardbands(benchmark, record_output):
    """Translate the Fig. 6 noise numbers into frequency cost."""
    from repro.core.experiments.fig6 import compute_fig6
    from repro.core.guardband import AlphaPowerModel, fig6_guardbands

    def evaluate():
        result = compute_fig6(n_layers=8, grid_nodes=12)
        return result, fig6_guardbands(result, imbalance=0.6)

    result, bands = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    from repro.analysis.tables import format_table

    rows = [
        (name, None if value is None else value * 100)
        for name, value in bands.items()
    ]
    text = format_table(
        ["design", "frequency guardband (%)"],
        rows,
        title="Design aid: frequency guardband at 60% workload imbalance "
        "(alpha-power law, Vth=0.35V)",
    )
    record_output(text, "tool_frequency_guardbands")
    finite = [v for v in bands.values() if v is not None]
    assert all(0 < v < 0.5 for v in finite)
