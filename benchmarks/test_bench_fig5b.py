"""Fig. 5b — power-C4 array EM-damage-free lifetime vs layer count."""

from conftest import BENCH_GRID

from repro.core.experiments.fig5 import compute_fig5b


def test_fig5b_c4_mttf(benchmark, record_output):
    result = benchmark.pedantic(
        compute_fig5b, kwargs={"grid_nodes": BENCH_GRID}, rounds=1, iterations=1
    )
    summary = result.format() + "\n\n" + (
        f"V-S / Reg(25%) at 8 layers: {result.improvement_at(8):.2f}x "
        "(paper: up to ~5x)"
    )
    record_output(summary, "fig5b_c4_mttf")
    assert result.improvement_at(8) > 4.0
    # Even 100% power pads cannot catch the V-S PDN at 8 layers.
    assert (
        result.series["Reg. PDN (100% Power C4)"][-1]
        < result.series["V-S PDN (25% Power C4)"][-1]
    )
