"""End-to-end headline report: every abstract claim in one run."""

from conftest import BENCH_GRID

from repro.core.experiments.headline import run_headline


def test_headline_claims(benchmark, record_output):
    report = benchmark.pedantic(
        run_headline, kwargs={"grid_nodes": BENCH_GRID}, rounds=1, iterations=1
    )
    record_output(report.format(), "headline_claims")
    assert report.c4_improvement_8l > 4.0
    assert report.tsv_improvement_8l > 3.0
    assert 0.7 < report.regular_tsv_degradation < 0.95
    assert abs(report.average_imbalance - 0.65) < 0.05
    assert report.vs_extra_ir_drop_at_average < 0.02
