"""Ablations of the design choices DESIGN.md calls out, plus the
extension studies (closed-loop control, inductive converters,
thermally-coupled EM, trace-driven workloads).

These are not paper figures; they quantify how sensitive the reproduced
results are to the free modeling choices, and they exercise the
extensions end to end at benchmark scale.
"""

import numpy as np

from conftest import BENCH_GRID

from repro.analysis.tables import format_table
from repro.core.scenarios import build_regular_pdn, build_stacked_pdn, stacked_stack
from repro.pdn.closedloop import closed_loop_efficiency_gain
from repro.workload.imbalance import interleaved_layer_activities


def test_grid_resolution_sensitivity(benchmark, record_output):
    """Ablation: does the headline IR-drop comparison move with the
    model-grid resolution?  (It should converge; VoltSpot's accuracy
    argument rests on this.)"""

    def sweep():
        rows = []
        for grid in (8, 12, 16, 20, 24):
            reg = build_regular_pdn(8, topology="Dense", grid_nodes=grid).solve()
            vs = build_stacked_pdn(8, converters_per_core=8, grid_nodes=grid).solve(
                layer_activities=interleaved_layer_activities(8, 0.65)
            )
            rows.append(
                (
                    grid,
                    reg.max_ir_drop_fraction() * 100,
                    vs.max_ir_drop_fraction() * 100,
                    (vs.max_ir_drop_fraction() - reg.max_ir_drop_fraction()) * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["grid nodes/side", "Reg Dense (%Vdd)", "V-S 8conv @65% (%Vdd)", "delta (%Vdd)"],
        rows,
        title="Ablation: grid-resolution sensitivity of the Fig. 6 comparison",
    )
    record_output(text, "ablation_grid_resolution")
    deltas = [r[3] for r in rows]
    # The comparison's sign and rough magnitude are resolution-stable
    # from 12 nodes up.
    assert max(deltas[1:]) - min(deltas[1:]) < 1.0


def test_closed_loop_control_extension(benchmark, record_output):
    """Extension: system-level closed-loop frequency modulation (the
    paper's future work) recovers open-loop parasitic losses."""

    def evaluate():
        stack = stacked_stack(8, grid_nodes=12)
        rows = []
        for imbalance in (0.1, 0.3, 0.5):
            gains = closed_loop_efficiency_gain(
                stack, 8, interleaved_layer_activities(8, imbalance)
            )
            rows.append(
                (
                    f"{imbalance:.0%}",
                    gains["open_loop"] * 100,
                    gains["closed_loop"] * 100,
                    gains["gain"] * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    text = format_table(
        ["imbalance", "open loop (%)", "closed loop (%)", "gain (pts)"],
        rows,
        title="Extension: closed-loop converter control, 8 layers, 8 conv/core",
    )
    record_output(text, "extension_closed_loop")
    assert all(r[3] > 0 for r in rows)


def test_sc_vs_inductive_converters(benchmark, record_output):
    """Extension: the inductive-converter comparison the paper defers."""
    from repro.regulator.inductive import compare_sc_vs_buck

    def sweep():
        rows = []
        for load_ma in (10, 30, 50, 70, 90):
            c = compare_sc_vs_buck(load_current=load_ma * 1e-3)
            rows.append(
                (
                    load_ma,
                    c["sc"]["efficiency"] * 100,
                    c["buck"]["efficiency"] * 100,
                    c["sc"]["area"] * 1e6,
                    c["buck"]["area"] * 1e6,
                )
            )
        return rows

    rows = benchmark(sweep)
    text = format_table(
        ["load (mA)", "SC eff (%)", "buck eff (%)", "SC area (mm^2)", "buck area (mm^2)"],
        rows,
        title="Extension: switched-capacitor vs integrated buck (future work)",
    )
    record_output(text, "extension_sc_vs_buck")
    assert all(r[1] > r[2] for r in rows)  # SC wins on-die


def test_thermally_coupled_em(benchmark, record_output):
    """Extension: per-tier temperatures in Black's equation."""
    from repro.em.thermal_coupling import (
        thermally_coupled_lifetime,
        uniform_temperature_lifetime,
    )
    from repro.thermal import HotSpotLite

    def evaluate():
        rows = []
        for n in (2, 4, 8):
            pdn = build_regular_pdn(n, grid_nodes=12)
            result = pdn.solve()
            thermal = HotSpotLite(pdn.stack).solve()
            coupled = thermally_coupled_lifetime(result, thermal, "tsv")
            uniform = uniform_temperature_lifetime(result, 105.0, "tsv")
            rows.append((n, thermal.hotspot, coupled / uniform))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    text = format_table(
        ["layers", "hotspot (C)", "coupled / uniform-105C lifetime"],
        rows,
        title="Extension: thermally-coupled EM (regular PDN, air cooling)",
    )
    record_output(text, "extension_thermal_em")
    # Cool stacks gain headroom over the fixed-105C assumption; the gain
    # erodes as the stack approaches the thermal wall.
    ratios = [r[2] for r in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[0] > ratios[-1]


def test_montecarlo_vs_analytic_em(benchmark, record_output):
    """Validation: the closed-form array lifetime against simulation."""
    from repro.em import (
        TSV_CROSS_SECTION,
        expected_em_lifetime,
        median_lifetimes_from_currents,
        simulate_array_lifetime,
    )

    pdn = build_regular_pdn(4, grid_nodes=12)
    currents = pdn.solve().conductor_currents("tsv")
    medians = median_lifetimes_from_currents(currents, TSV_CROSS_SECTION)

    mc = benchmark.pedantic(
        lambda: simulate_array_lifetime(medians, trials=800, rng=1),
        rounds=1,
        iterations=1,
    )
    analytic = expected_em_lifetime(medians)
    error = abs(mc.median / analytic - 1.0)
    text = "\n".join(
        [
            "Validation: Monte-Carlo vs closed-form array lifetime",
            f"conductors: {len(medians)}   trials: 800",
            f"analytic P(t)=0.5 point : {analytic:.4e}",
            f"Monte-Carlo median      : {mc.median:.4e}   (error {error:.2%})",
            f"MC inter-quartile range : {mc.spread / mc.median:.1%} of median",
        ]
    )
    record_output(text, "validation_montecarlo_em")
    assert error < 0.05


def test_gem5_lite_vs_calibrated_workloads(benchmark, record_output):
    """Extension: emergent (trace-driven) vs calibrated workload stats."""
    from repro.config.stackups import ProcessorSpec
    from repro.workload.gem5_lite import gem5_sample_suite
    from repro.workload.sampling import sample_suite

    def evaluate():
        proc = ProcessorSpec()
        calibrated = sample_suite(proc, n_samples=1000, rng=1)
        emergent = gem5_sample_suite(proc, n_windows=1000, rng=1)
        rows = []
        for name in sorted(calibrated):
            rows.append(
                (
                    name,
                    calibrated[name].max_imbalance * 100,
                    emergent[name].max_imbalance * 100,
                )
            )
        return rows, calibrated, emergent

    rows, calibrated, emergent = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    cal_mean = np.mean([c.max_imbalance for c in calibrated.values()])
    eme_mean = np.mean([e.max_imbalance for e in emergent.values()])
    text = format_table(
        ["application", "calibrated max imb (%)", "gem5-lite max imb (%)"],
        rows,
        title="Extension: calibrated vs micro-architecturally emergent workloads",
    ) + f"\n\nsuite means: calibrated {cal_mean:.1%}, gem5-lite {eme_mean:.1%}"
    record_output(text, "extension_gem5_lite")
    # Same qualitative structure: blackscholes steadiest, wide spread.
    eme = {name: e.max_imbalance for name, e in emergent.items()}
    assert min(eme, key=eme.get) == "blackscholes"
    assert max(eme.values()) > 0.6


def test_converter_placement_ablation(benchmark, record_output):
    """Ablation: is the paper's uniform converter placement optimal?

    A greedy placer with full freedom over converter sites barely beats
    the uniform distribution even with a 100x-thinner on-chip metal —
    the converter's own 0.6-ohm output impedance, not its location,
    sets the V-S noise.  The paper's Sec. 3.2 assumption is safe.
    """
    from repro.config.stackups import StackConfig
    from repro.config.technology import OnChipMetal
    from repro.core.placement import GreedyConverterPlacer
    from repro.utils.units import from_micro

    def evaluate():
        rows = []
        for label, metal in (
            ("Table-1 metal", None),
            ("100x thinner metal", OnChipMetal(thickness=from_micro(7.2))),
        ):
            kwargs = {"metal": metal} if metal is not None else {}
            placer = GreedyConverterPlacer(
                StackConfig(n_layers=2, grid_nodes=12), imbalance=0.5, **kwargs
            )
            result = placer.optimise(budget_per_core=4)
            rows.append(
                (
                    label,
                    result.uniform_ir_drop * 100,
                    result.ir_drop * 100,
                    result.improvement * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    text = format_table(
        ["metal stack", "uniform (%Vdd)", "greedy (%Vdd)", "improvement (%)"],
        rows,
        title="Ablation: greedy vs uniform converter placement (2 layers, 4 conv/core)",
    )
    record_output(text, "ablation_converter_placement")
    for _, uniform, greedy, _ in rows:
        assert greedy <= uniform * 1.02  # greedy never materially worse
