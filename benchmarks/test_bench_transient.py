"""Extension bench: transient load-step droop (RC/RLC analysis)."""

from conftest import BENCH_GRID

from repro.analysis.tables import format_table
from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.pdn.transient import TransientPDNAnalysis


def test_transient_load_step(benchmark, record_output):
    def evaluate():
        rows = []
        for n_layers in (2, 4):
            reg = TransientPDNAnalysis(
                lambda: build_regular_pdn(
                    n_layers, grid_nodes=10, package_inductor_nodes=True
                ),
                dt=50e-12,
            )
            reg_trace = reg.load_step(warmup_steps=150, step_steps=250)
            vs = TransientPDNAnalysis(
                lambda: build_stacked_pdn(
                    n_layers,
                    converters_per_core=8,
                    grid_nodes=10,
                    package_inductor_nodes=True,
                ),
                dt=50e-12,
            )
            vs_trace = vs.load_step(warmup_steps=150, step_steps=250)
            rows.append(
                (
                    n_layers,
                    reg.first_droop(reg_trace) * 1e3,
                    vs.first_droop(vs_trace) * 1e3,
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    text = format_table(
        ["layers", "regular droop (mV)", "V-S droop (mV)"],
        rows,
        title="Extension: idle->peak load-step droop (RLC package + decap)",
    )
    record_output(text, "extension_transient_droop")
    # Charge recycling keeps the V-S transient excursion smaller too.
    for _, reg_droop, vs_droop in rows:
        assert vs_droop < reg_droop
