"""HotSpot-lite: steady-state thermal screening of 3D stacks.

The paper uses HotSpot (Skadron et al., ISCA 2003) once, to establish
that up to 8 layers of the example processor stay below the 100 C
hotspot limit under conventional air cooling (Sec. 4.1).  This package
provides a steady-state 3D conduction solver on the same grid as the PDN
model — temperature maps per layer, the stack hotspot, and the derived
maximum feasible layer count.  The thermal network is solved with the
same sparse engine as the electrical model (temperature <-> voltage,
heat <-> current).
"""

from repro.thermal.grid3d import HotSpotLite, ThermalConfig, ThermalResult, max_feasible_layers

__all__ = ["HotSpotLite", "ThermalConfig", "ThermalResult", "max_feasible_layers"]
