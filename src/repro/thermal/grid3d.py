"""Steady-state 3D thermal conduction on the model grid.

Stack-up (bottom to top, heat flowing up to the sink as in a
conventional flip-chip 3D assembly with the heat sink on the back of the
top die):

    C4/board (adiabatic)  |  layer 0  | bond | layer 1 | bond | ...
    ... | layer N-1 | TIM | spreader (lumped) | sink-to-ambient R

Each silicon layer is discretised into the PDN grid's cells with lateral
conduction ``k_si * t_si`` per square; vertical paths go through the
bond/BEOL interfaces cell-by-cell.  The network is assembled as a
resistive circuit (temperature = voltage above ambient, power = injected
current) and solved with :mod:`repro.grid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config.stackups import StackConfig
from repro.grid.netlist import Circuit
from repro.grid.solver import SolveRequest
from repro.power.powermap import PowerMap, layer_power_map
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ThermalConfig:
    """Material / cooling parameters for the thermal model."""

    #: Silicon thermal conductivity near operating temperature (W/mK).
    silicon_conductivity: float = 110.0
    #: Thinned die thickness (m); stacked dies are ~100 um or less.
    silicon_thickness: float = 100e-6
    #: Inter-layer bond (BEOL + underfill + microbumps) thickness (m).
    bond_thickness: float = 10e-6
    #: Effective bond-layer conductivity (W/mK).
    bond_conductivity: float = 2.0
    #: Thermal-interface-material thickness between the top die and the
    #: heat spreader (m).
    tim_thickness: float = 50e-6
    #: TIM conductivity (W/mK).
    tim_conductivity: float = 4.0
    #: Lumped spreader+sink-to-ambient resistance (K/W), air cooling.
    sink_resistance: float = 0.20
    #: Ambient temperature (Celsius).
    ambient: float = 45.0

    def __post_init__(self) -> None:
        check_positive("silicon_conductivity", self.silicon_conductivity)
        check_positive("silicon_thickness", self.silicon_thickness)
        check_positive("bond_thickness", self.bond_thickness)
        check_positive("bond_conductivity", self.bond_conductivity)
        check_positive("tim_thickness", self.tim_thickness)
        check_positive("tim_conductivity", self.tim_conductivity)
        check_positive("sink_resistance", self.sink_resistance)


@dataclass
class ThermalResult:
    """Solved temperature field of one stack operating point."""

    #: Per-layer temperature maps (Celsius), bottom layer first.
    layer_temperatures: List[np.ndarray]
    #: Ambient used (Celsius).
    ambient: float

    @property
    def hotspot(self) -> float:
        """Peak temperature anywhere in the stack (Celsius)."""
        return max(float(t.max()) for t in self.layer_temperatures)

    @property
    def hotspot_layer(self) -> int:
        """Index of the layer containing the hotspot."""
        peaks = [float(t.max()) for t in self.layer_temperatures]
        return int(np.argmax(peaks))


class HotSpotLite:
    """Steady-state thermal solver for a :class:`StackConfig` stack."""

    def __init__(self, stack: StackConfig, config: Optional[ThermalConfig] = None):
        self.stack = stack
        self.config = config or ThermalConfig()
        self._node_ids: List[np.ndarray] = []
        self._circuit = Circuit()
        self._assembled = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        stack = self.stack
        g = stack.grid_nodes
        cell = stack.processor.die_side / g
        cell_area = cell * cell
        circuit = self._circuit
        circuit.set_ground("ambient")

        # Lateral silicon conduction: R per square = 1 / (k * t).
        r_lateral = 1.0 / (cfg.silicon_conductivity * cfg.silicon_thickness)
        for layer in range(stack.n_layers):
            ids = circuit.nodes(
                (("T", layer, j, i) for j in range(g) for i in range(g))
            ).reshape(g, g)
            self._node_ids.append(ids)
            n1 = ids[:, :-1].ravel()
            n2 = ids[:, 1:].ravel()
            circuit.add_resistors(n1, n2, np.full(n1.size, r_lateral), tag=f"lat.l{layer}")
            n1 = ids[:-1, :].ravel()
            n2 = ids[1:, :].ravel()
            circuit.add_resistors(n1, n2, np.full(n1.size, r_lateral), tag=f"lat.l{layer}")

        # Vertical conduction through bond layers, cell by cell.
        r_bond = cfg.bond_thickness / (cfg.bond_conductivity * cell_area)
        for tier in range(stack.n_layers - 1):
            n1 = self._node_ids[tier].ravel()
            n2 = self._node_ids[tier + 1].ravel()
            circuit.add_resistors(n1, n2, np.full(n1.size, r_bond), tag=f"bond.t{tier}")

        # TIM from the top layer into the lumped spreader, then the sink.
        r_tim = cfg.tim_thickness / (cfg.tim_conductivity * cell_area)
        top = self._node_ids[-1].ravel()
        spreader = circuit.node("spreader")
        circuit.add_resistors(
            top,
            np.full(top.size, spreader, dtype=int),
            np.full(top.size, r_tim),
            tag="tim",
        )
        circuit.add_resistor("spreader", "ambient", cfg.sink_resistance, tag="sink")

        # Heat injection placeholders (peak power); solve() overrides.
        for layer in range(stack.n_layers):
            ids = self._node_ids[layer].ravel()
            peak = layer_power_map(stack, activity=1.0).cell_power.ravel()
            circuit.add_current_sources(
                np.full(ids.size, circuit.node("ambient"), dtype=int),
                ids,
                peak,
                tag=f"heat.l{layer}",
            )

    # ------------------------------------------------------------------
    def solve(
        self,
        power_maps: Optional[Sequence[PowerMap]] = None,
        layer_activities: Optional[Sequence[float]] = None,
    ) -> ThermalResult:
        """Solve the temperature field for the given per-layer powers.

        Defaults to every layer at peak power — the feasibility check of
        Sec. 4.1.
        """
        stack = self.stack
        g = stack.grid_nodes
        if self._assembled is None:
            self._assembled = self._circuit.assemble()
        if power_maps is None:
            if layer_activities is None:
                layer_activities = np.ones(stack.n_layers)
            layer_activities = np.asarray(layer_activities, dtype=float)
            if layer_activities.shape != (stack.n_layers,):
                raise ValueError(
                    f"layer_activities must have shape ({stack.n_layers},)"
                )
            power_maps = [
                layer_power_map(stack, activity=float(a)) for a in layer_activities
            ]
        if len(power_maps) != stack.n_layers:
            raise ValueError(f"need {stack.n_layers} power maps")
        heats = np.concatenate([m.cell_power.ravel() for m in power_maps])
        solution = self._assembled.solve(SolveRequest(isource_current=heats))
        layers = [
            solution.voltage_by_id(ids).reshape(g, g) + self.config.ambient
            for ids in self._node_ids
        ]
        return ThermalResult(layer_temperatures=layers, ambient=self.config.ambient)


def max_feasible_layers(
    base_stack: StackConfig,
    limit_celsius: float = 100.0,
    max_layers: int = 12,
    config: Optional[ThermalConfig] = None,
) -> int:
    """Largest layer count whose peak-power hotspot stays below the limit.

    Reproduces the paper's Sec. 4.1 finding that the example processor
    can stack up to 8 layers under air cooling.
    """
    check_positive("limit_celsius", limit_celsius)
    feasible = 0
    for n in range(1, max_layers + 1):
        stack = StackConfig(
            n_layers=n,
            processor=base_stack.processor,
            tsv_topology=base_stack.tsv_topology,
            pads=base_stack.pads,
            grid_nodes=base_stack.grid_nodes,
        )
        result = HotSpotLite(stack, config).solve()
        if result.hotspot <= limit_celsius:
            feasible = n
        else:
            break
    return feasible
