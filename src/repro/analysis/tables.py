"""Minimal fixed-width ASCII table rendering for bench output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width table.

    ``None`` cells render as ``-`` (the paper's skipped data points);
    floats are shown with 3 significant decimals.
    """
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    materialised: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in materialised)) if materialised
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialised:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
