"""ASCII heat maps (spatial IR-drop / temperature / power rendering)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Character ramp from cold to hot.
DEFAULT_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    values: np.ndarray,
    title: str = "",
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    ramp: str = DEFAULT_RAMP,
    unit: str = "",
) -> str:
    """Render a 2-D array as a character heat map.

    Rows are printed top-to-bottom as the array's last row first, so the
    output matches the usual plot orientation (row 0 at the bottom).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    if len(ramp) < 2:
        raise ValueError("ramp needs at least two characters")
    lo = float(values.min()) if lo is None else lo
    hi = float(values.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    scaled = np.clip((values - lo) / (hi - lo), 0.0, 1.0)
    indices = np.minimum((scaled * len(ramp)).astype(int), len(ramp) - 1)
    lines = []
    if title:
        lines.append(title)
    for row in indices[::-1]:
        lines.append("".join(ramp[i] for i in row))
    # Pick enough decimals that the two endpoints actually differ.
    span = hi - lo
    decimals = max(0, int(np.ceil(-np.log10(span))) + 2) if span > 0 else 2
    lines.append(
        f"scale: '{ramp[0]}' = {lo:.{decimals}f}{unit}  ...  "
        f"'{ramp[-1]}' = {hi:.{decimals}f}{unit}"
    )
    return "\n".join(lines)
