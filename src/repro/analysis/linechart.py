"""ASCII line charts (terminal rendering of Fig. 6 / Fig. 8 sweeps)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Series:
    """One line of an XY chart; ``None`` y-values are gaps."""

    label: str
    x: Sequence[float]
    y: Sequence[Optional[float]]
    marker: str = "*"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")
        if len(self.marker) != 1:
            raise ValueError("marker must be a single character")


def ascii_linechart(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot several series on a shared character canvas.

    Horizontal reference lines can be drawn by passing a series whose y
    values are all equal.  Values are clipped to the data range.
    """
    if not series:
        raise ValueError("series must be non-empty")
    if width < 16 or height < 6:
        raise ValueError("canvas too small")
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y if y is not None]
    if not ys:
        raise ValueError("no finite data points to plot")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    def col(x: float) -> int:
        return int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(round(frac * (height - 1)))

    canvas: List[List[str]] = [[" "] * width for _ in range(height)]
    for s in series:
        for x, y in zip(s.x, s.y):
            if y is None:
                continue
            canvas[row(y)][col(x)] = s.marker

    lines = []
    if y_label:
        lines.append(y_label)
    for r, line in enumerate(canvas):
        edge = f"{y_hi:8.2f} |" if r == 0 else (
            f"{y_lo:8.2f} |" if r == height - 1 else "         |"
        )
        lines.append(edge + "".join(line))
    lines.append("         +" + "-" * width)
    axis = f"{x_lo:<10.2f}" + x_label.center(width - 20) + f"{x_hi:>10.2f}"
    lines.append("          " + axis)
    legend = "   ".join(f"{s.marker} {s.label}" for s in series)
    lines.append("          " + legend)
    return "\n".join(lines)
