"""ASCII box plots (for the Fig. 7 power-distribution rendering)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary of one distribution."""

    label: str
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def __post_init__(self) -> None:
        ordered = (self.minimum, self.q25, self.median, self.q75, self.maximum)
        if any(a > b for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"box statistics for {self.label!r} are not sorted")


def ascii_boxplot(
    boxes: Sequence[BoxStats],
    width: int = 60,
    lo: float = None,
    hi: float = None,
    unit: str = "",
) -> str:
    """Render horizontal box-and-whisker rows over a shared axis.

    ``|---[==M==]---|`` per row: whiskers at min/max, box at the
    quartiles, ``M`` at the median.
    """
    if not boxes:
        raise ValueError("boxes must be non-empty")
    if width < 20:
        raise ValueError("width must be at least 20")
    lo = min(b.minimum for b in boxes) if lo is None else lo
    hi = max(b.maximum for b in boxes) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    label_w = max(len(b.label) for b in boxes)

    def col(value: float) -> int:
        clipped = min(max(value, lo), hi)
        return int(round((clipped - lo) / span * (width - 1)))

    lines = []
    for b in boxes:
        row = [" "] * width
        for x in range(col(b.minimum), col(b.maximum) + 1):
            row[x] = "-"
        for x in range(col(b.q25), col(b.q75) + 1):
            row[x] = "="
        row[col(b.minimum)] = "|"
        row[col(b.maximum)] = "|"
        row[col(b.q25)] = "["
        row[col(b.q75)] = "]"
        row[col(b.median)] = "M"
        lines.append(f"{b.label.rjust(label_w)} {''.join(row)}")
    axis = f"{lo:.2f}{unit}".ljust(width // 2) + f"{hi:.2f}{unit}".rjust(
        width - width // 2
    )
    lines.append(" " * (label_w + 1) + axis)
    return "\n".join(lines)
