"""Exporting experiment results to CSV / JSON.

Every figure driver returns a structured dataclass; these helpers
flatten the common shapes (XY series keyed by label, plain tables) into
files so results can be re-plotted outside the terminal.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]


def export_series_csv(
    path: PathLike,
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[Optional[float]]],
) -> pathlib.Path:
    """Write ``x`` plus one column per series; ``None`` cells stay empty."""
    path = pathlib.Path(path)
    labels = list(series)
    for label in labels:
        if len(series[label]) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(series[label])} values for "
                f"{len(x_values)} x points"
            )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + labels)
        for i, x in enumerate(x_values):
            row = [x] + [
                "" if series[label][i] is None else series[label][i]
                for label in labels
            ]
            writer.writerow(row)
    return path


def export_table_csv(
    path: PathLike, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> pathlib.Path:
    """Write a plain table; ``None`` cells stay empty."""
    path = pathlib.Path(path)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match {len(headers)} headers")
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])
    return path


def export_json(path: PathLike, payload: dict) -> pathlib.Path:
    """Write a JSON document (numpy scalars are coerced)."""
    import numpy as np

    def coerce(obj):
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"not JSON serialisable: {type(obj).__name__}")

    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, default=coerce) + "\n")
    return path


def fig6_to_csv(result, path: PathLike) -> pathlib.Path:
    """Export a Fig. 6 result's sweep plus regular lines."""
    series = {
        f"vs_{k}_conv_per_core": values for k, values in result.vs_series.items()
    }
    for name, value in result.regular_lines.items():
        series[f"regular_{name.lower()}"] = [value] * len(result.imbalances)
    return export_series_csv(path, "imbalance", list(result.imbalances), series)


def fig8_to_csv(result, path: PathLike) -> pathlib.Path:
    """Export a Fig. 8 result's sweep plus the regular+SC line."""
    series = {
        f"vs_{k}_conv_per_core": values for k, values in result.vs_series.items()
    }
    series["regular_sc_all_power"] = list(result.regular_sc)
    return export_series_csv(path, "imbalance", list(result.imbalances), series)
