"""Terminal-friendly rendering of experiment results."""

from repro.analysis.tables import format_table
from repro.analysis.boxplot import ascii_boxplot, BoxStats
from repro.analysis.export import (
    export_json,
    export_series_csv,
    export_table_csv,
    fig6_to_csv,
    fig8_to_csv,
)
from repro.analysis.heatmap import ascii_heatmap
from repro.analysis.linechart import Series, ascii_linechart

__all__ = [
    "format_table",
    "ascii_boxplot",
    "BoxStats",
    "ascii_heatmap",
    "Series",
    "ascii_linechart",
    "export_json",
    "export_series_csv",
    "export_table_csv",
    "fig6_to_csv",
    "fig8_to_csv",
]
