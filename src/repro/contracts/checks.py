"""The physics invariant catalog.

:func:`check_pdn_result` evaluates every applicable contract against a
solved :class:`repro.pdn.results.PDNResult` (duck-typed — anything with
a ``solution`` and the power accessors works):

``finite_fields``
    Every solved field (node voltages, source/converter branch
    unknowns) is finite — no NaN/Inf leaked out of the solver.
``kcl_residual``
    Global energy-form KCL: the power sourced by the supplies matches
    the power absorbed by loads, resistors and converter losses to a
    relative tolerance; combined with the linear-system residual the
    resilient solver recorded, when present.
``passivity``
    The network delivers no more power to the loads than the off-chip
    sources put in (delivered load power <= input power).
``voltage_bounds``
    All node voltages lie within the stack's source span ``[0, V_max]``
    plus a small relative margin — a DC resistive PDN cannot exceed its
    sources.
``efficiency_range``
    System efficiency lies in ``[0, 1]`` (plus numerical slack).

:func:`check_em_monotonicity` verifies the EM model's MTTF is monotone
non-increasing in current density — used by the fuzz harness and
available for spot audits.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

import numpy as np

from repro.contracts.report import (
    ContractCheck,
    ContractPolicy,
    ContractReport,
    enforce,
    get_policy,
)
from repro.obs.trace import get_tracer

__all__ = [
    "KCL_RELATIVE_TOLERANCE",
    "PASSIVITY_RELATIVE_TOLERANCE",
    "EFFICIENCY_TOLERANCE",
    "VOLTAGE_RELATIVE_MARGIN",
    "check_pdn_result",
    "check_em_monotonicity",
]

#: Relative power-balance tolerance (fraction of the supplied power).
KCL_RELATIVE_TOLERANCE = 1e-6
#: How far load power may exceed source power before passivity trips.
PASSIVITY_RELATIVE_TOLERANCE = 1e-9
#: Slack on the efficiency-in-[0, 1] contract.
EFFICIENCY_TOLERANCE = 1e-9
#: Node-voltage excursion beyond [0, V_max], relative to V_max.
VOLTAGE_RELATIVE_MARGIN = 1e-6


def check_pdn_result(
    result,
    policy: Optional[ContractPolicy] = None,
    context: str = "",
    degraded: Optional[bool] = None,
) -> Optional[ContractReport]:
    """Evaluate the invariant catalog against one solved PDN result.

    Returns the :class:`ContractReport` (or ``None`` when the active
    policy disables checking), enforcing ``warn``/``raise`` severities
    on the way out.  Checks of degraded solves are capped at ``record``
    severity by the default policy so resilient sweeps keep running.
    ``degraded`` force-marks the result degraded regardless of its
    diagnostics — callers pass it for solves of fault-injected networks,
    whose pristine invariants (passivity, efficiency in [0, 1], voltage
    bounds) no longer hold by construction.
    """
    policy = policy or get_policy()
    if not policy.enabled:
        return None
    t0 = perf_counter()
    solution = result.solution
    diagnostics = getattr(result, "diagnostics", None)
    degraded = bool(degraded) or bool(diagnostics is not None and diagnostics.degraded)
    report = ContractReport(degraded=degraded)

    def add(name, passed, observed=None, limit=None, message=""):
        report.checks.append(
            ContractCheck(
                name=name,
                passed=bool(passed),
                severity=policy.severity_for(name, degraded),
                observed=None if observed is None else float(observed),
                limit=None if limit is None else float(limit),
                message=message,
            )
        )

    # -- finite_fields --------------------------------------------------
    voltages = solution.node_voltage
    fields = [voltages, solution.vsource_currents()]
    try:
        fields.append(solution.converter_output_currents())
    except (KeyError, AttributeError):
        pass
    n_bad = int(sum(np.size(f) - np.count_nonzero(np.isfinite(f)) for f in fields))
    add(
        "finite_fields",
        n_bad == 0,
        observed=n_bad,
        limit=0,
        message=f"{n_bad} non-finite solved field value(s)" if n_bad else "",
    )

    if n_bad == 0:
        # The remaining invariants are meaningless on NaN fields.
        supplied = solution.vsource_power()
        load = solution.isource_power()
        dissipated = solution.resistor_power() + solution.converter_series_loss()
        scale = max(abs(supplied), 1e-12)

        # -- kcl_residual -----------------------------------------------
        balance = abs(supplied - (load + dissipated)) / scale
        linear = float(getattr(diagnostics, "residual", 0.0) or 0.0)
        observed = max(balance, linear)
        add(
            "kcl_residual",
            observed <= KCL_RELATIVE_TOLERANCE,
            observed=observed,
            limit=KCL_RELATIVE_TOLERANCE,
            message=f"relative power-balance error {observed:.3g}",
        )

        # -- passivity ---------------------------------------------------
        excess = (load - supplied) / scale
        add(
            "passivity",
            excess <= PASSIVITY_RELATIVE_TOLERANCE,
            observed=excess,
            limit=PASSIVITY_RELATIVE_TOLERANCE,
            message=(
                f"load power exceeds source power by {excess:.3g} (relative)"
                if excess > PASSIVITY_RELATIVE_TOLERANCE
                else ""
            ),
        )

        # -- voltage_bounds ----------------------------------------------
        sources = solution.vsource_values()
        if sources.size:
            v_max = float(np.max(np.abs(sources)))
            margin = VOLTAGE_RELATIVE_MARGIN * max(v_max, 1e-12)
            excursion = max(
                float(np.max(voltages)) - v_max, -float(np.min(voltages))
            )
            add(
                "voltage_bounds",
                excursion <= margin,
                observed=excursion,
                limit=margin,
                message=(
                    f"node voltage leaves [0, {v_max:.3g}] V by {excursion:.3g} V"
                    if excursion > margin
                    else ""
                ),
            )

        # -- efficiency_range --------------------------------------------
        efficiency = 0.0 if supplied <= 0 else load / supplied
        add(
            "efficiency_range",
            -EFFICIENCY_TOLERANCE <= efficiency <= 1.0 + EFFICIENCY_TOLERANCE,
            observed=efficiency,
            limit=1.0,
            message=f"efficiency {efficiency:.6g} outside [0, 1]",
        )

    report.elapsed_s = perf_counter() - t0
    tracer = get_tracer()
    if tracer.enabled:
        # The span duration IS the report's elapsed_s, so the BENCH
        # contracts_s total and the trace's contracts span total agree
        # exactly (both sum the same measurements).
        histogram = report.histogram()
        tracer.record(
            "contracts",
            report.elapsed_s,
            degraded=degraded,
            violations={
                status: count
                for status, count in histogram.items()
                if status != "pass"
            },
        )
    return enforce(report, context)


def check_em_monotonicity(
    currents=None,
    cross_section: Optional[float] = None,
    em=None,
    n_samples: int = 16,
    policy: Optional[ContractPolicy] = None,
) -> ContractReport:
    """Verify MTTF is monotone non-increasing in current density.

    Evaluates Black's median lifetime over ``currents`` (or a log-spaced
    default sweep) sorted ascending, and checks the lifetimes never
    increase (within a tiny relative slack).  Returns the report;
    severity routing follows the active policy.
    """
    from repro.em.black import TSV_CROSS_SECTION, median_lifetimes_from_currents

    policy = policy or get_policy()
    report = ContractReport()
    if not policy.enabled:
        return report
    t0 = perf_counter()
    if cross_section is None:
        cross_section = TSV_CROSS_SECTION
    if currents is None:
        currents = np.logspace(-4, 0, n_samples)
    currents = np.sort(np.abs(np.asarray(currents, dtype=float)))
    currents = currents[currents > 0]
    lifetimes = median_lifetimes_from_currents(currents, cross_section, em=em)
    rises = np.diff(lifetimes) > 1e-9 * np.abs(lifetimes[:-1])
    n_rises = int(np.count_nonzero(rises))
    report.checks.append(
        ContractCheck(
            name="em_mttf_monotone",
            passed=n_rises == 0,
            severity=policy.severity_for("em_mttf_monotone"),
            observed=n_rises,
            limit=0,
            message=(
                f"MTTF increased at {n_rises} of {len(currents) - 1} current steps"
                if n_rises
                else ""
            ),
        )
    )
    report.elapsed_s = perf_counter() - t0
    return enforce(report)
