"""Runtime physics contracts and hardened fixed-point iteration.

The correctness firewall between the solvers and the results users
consume:

* :mod:`repro.contracts.checks` — the invariant catalog
  (:func:`check_pdn_result`, :func:`check_em_monotonicity`).
* :mod:`repro.contracts.report` — :class:`ContractReport` /
  :class:`ContractCheck`, severity policies and the ``REPRO_CONTRACTS``
  environment switch.
* :mod:`repro.contracts.fixedpoint` — the shared hardened fixed-point
  driver (adaptive damping, Anderson acceleration, oscillation and
  divergence detection, graceful degradation).

See ``docs/CONTRACTS.md`` for the full catalog and semantics.
"""

from repro.contracts.checks import (
    EFFICIENCY_TOLERANCE,
    KCL_RELATIVE_TOLERANCE,
    PASSIVITY_RELATIVE_TOLERANCE,
    VOLTAGE_RELATIVE_MARGIN,
    check_em_monotonicity,
    check_pdn_result,
)
from repro.contracts.fixedpoint import (
    FixedPointDivergence,
    FixedPointResult,
    absolute_residual,
    fixed_point,
    relative_residual,
)
from repro.contracts.report import (
    CONTRACTS_ENV,
    DEFAULT_SEVERITIES,
    SEVERITIES,
    ContractCheck,
    ContractPolicy,
    ContractReport,
    ContractWarning,
    contract_policy,
    enforce,
    get_policy,
    policy_from_env,
    set_policy,
)

__all__ = [
    "check_pdn_result",
    "check_em_monotonicity",
    "KCL_RELATIVE_TOLERANCE",
    "PASSIVITY_RELATIVE_TOLERANCE",
    "EFFICIENCY_TOLERANCE",
    "VOLTAGE_RELATIVE_MARGIN",
    "fixed_point",
    "FixedPointResult",
    "FixedPointDivergence",
    "relative_residual",
    "absolute_residual",
    "ContractCheck",
    "ContractReport",
    "ContractPolicy",
    "ContractWarning",
    "contract_policy",
    "get_policy",
    "set_policy",
    "policy_from_env",
    "enforce",
    "SEVERITIES",
    "DEFAULT_SEVERITIES",
    "CONTRACTS_ENV",
]
