"""Contract reports and severity policies.

A *contract* is a declarative physics invariant checked against a solved
result (see :mod:`repro.contracts.checks` for the catalog).  Every check
lands in a :class:`ContractReport` as a :class:`ContractCheck` with a
pass/fail verdict and the *severity* the active policy assigned to it:

``record``
    The violation is only recorded in the report (machine-readable).
``warn``
    Additionally emits a :class:`ContractWarning` via :mod:`warnings`.
``raise``
    Raises :class:`repro.errors.ContractViolationError` carrying the
    full report.

Degraded solves (island pruning, solver fallback rungs, non-converged
fixed points) cap the effective severity at ``degraded_cap`` (default
``record``): a result that is *already* flagged as degraded must not
crash a resilient sweep a second time.

The active policy is process-global, initialised lazily from the
``REPRO_CONTRACTS`` environment variable (``off`` / ``record`` /
``warn`` / ``raise`` / ``default``), and can be swapped with
:func:`set_policy` or scoped with the :func:`contract_policy` context
manager.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.errors import ContractViolationError, ReproError

__all__ = [
    "SEVERITIES",
    "DEFAULT_SEVERITIES",
    "CONTRACTS_ENV",
    "ContractWarning",
    "ContractCheck",
    "ContractReport",
    "ContractPolicy",
    "policy_from_env",
    "get_policy",
    "set_policy",
    "contract_policy",
    "enforce",
]

#: Recognised severities, mildest first (used for capping comparisons).
SEVERITIES = ("record", "warn", "raise")

#: Per-check default severities: hard physics violations raise, soft
#: bound excursions (tiny overshoots near sources) only warn.
DEFAULT_SEVERITIES: Dict[str, str] = {
    "finite_fields": "raise",
    "kcl_residual": "raise",
    "passivity": "raise",
    "efficiency_range": "raise",
    "voltage_bounds": "warn",
    "em_mttf_monotone": "raise",
}

#: Environment variable selecting the process-wide policy.
CONTRACTS_ENV = "REPRO_CONTRACTS"


class ContractWarning(UserWarning):
    """Emitted for contract violations at severity ``warn``."""


@dataclass(frozen=True)
class ContractCheck:
    """One evaluated invariant."""

    name: str
    passed: bool
    #: Severity the policy assigned (effective, i.e. after degraded cap).
    severity: str
    #: Observed value of the invariant metric, when scalar.
    observed: Optional[float] = None
    #: The limit it was compared against.
    limit: Optional[float] = None
    message: str = ""

    @property
    def status(self) -> str:
        """``pass`` or, for violations, the effective severity."""
        return "pass" if self.passed else self.severity


@dataclass
class ContractReport:
    """Machine-readable outcome of a contract evaluation."""

    checks: List[ContractCheck] = field(default_factory=list)
    #: True when the checked result came from a degraded solve (severity
    #: was capped accordingly).
    degraded: bool = False
    #: Wall time spent evaluating the checks (s), for overhead metering.
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def violations(self) -> List[ContractCheck]:
        return [check for check in self.checks if not check.passed]

    def histogram(self) -> Dict[str, int]:
        """Counts per status (``pass`` / ``record`` / ``warn`` / ``raise``)."""
        counts: Dict[str, int] = {}
        for check in self.checks:
            counts[check.status] = counts.get(check.status, 0) + 1
        return counts

    def summary(self) -> str:
        if self.passed:
            return f"contracts: {len(self.checks)} checks passed"
        parts = [
            f"{check.name}[{check.severity}] {check.message}"
            for check in self.violations()
        ]
        return "contracts: " + "; ".join(parts)

    def to_json(self) -> Dict:
        return {
            "passed": self.passed,
            "degraded": self.degraded,
            "elapsed_s": self.elapsed_s,
            "checks": [
                {
                    "name": check.name,
                    "status": check.status,
                    "observed": check.observed,
                    "limit": check.limit,
                    "message": check.message,
                }
                for check in self.checks
            ],
        }


@dataclass(frozen=True)
class ContractPolicy:
    """Which checks run and how loudly violations are reported."""

    enabled: bool = True
    #: Per-check severities; unknown checks fall back to ``warn``.
    severities: Mapping[str, str] = field(default_factory=lambda: dict(DEFAULT_SEVERITIES))
    #: When set, forces this severity for every check.
    override: Optional[str] = None
    #: Severity cap applied to checks of degraded solves.
    degraded_cap: str = "record"

    def __post_init__(self) -> None:
        for value in (self.override, self.degraded_cap):
            if value is not None and value not in SEVERITIES:
                raise ValueError(f"unknown severity {value!r}; expected one of {SEVERITIES}")

    def severity_for(self, name: str, degraded: bool = False) -> str:
        severity = self.override or self.severities.get(name, "warn")
        if degraded:
            cap = SEVERITIES.index(self.degraded_cap)
            severity = SEVERITIES[min(SEVERITIES.index(severity), cap)]
        return severity


def policy_from_env(value: Optional[str] = None) -> ContractPolicy:
    """Build the policy selected by ``REPRO_CONTRACTS``.

    ``off``/``0``/``none`` disable checking entirely; ``record``,
    ``warn`` and ``raise`` force that severity for every check; unset,
    empty or ``default`` selects the per-check defaults.
    """
    if value is None:
        value = os.environ.get(CONTRACTS_ENV, "")
    value = value.strip().lower()
    if value in ("off", "0", "none", "disabled", "false"):
        return ContractPolicy(enabled=False)
    if value in ("", "default", "on", "true", "1"):
        return ContractPolicy()
    if value in SEVERITIES:
        return ContractPolicy(override=value)
    raise ReproError(
        f"{CONTRACTS_ENV} must be one of off|record|warn|raise|default, got {value!r}"
    )


_active_policy: Optional[ContractPolicy] = None


def get_policy() -> ContractPolicy:
    """The process-wide policy, initialised from the environment once."""
    global _active_policy
    if _active_policy is None:
        _active_policy = policy_from_env()
    return _active_policy


def set_policy(policy: Optional[ContractPolicy]) -> Optional[ContractPolicy]:
    """Install ``policy`` (None re-reads the environment on next use).

    Returns the previously installed policy.
    """
    global _active_policy
    previous = _active_policy
    _active_policy = policy
    return previous


@contextmanager
def contract_policy(policy: Optional[ContractPolicy] = None, **overrides):
    """Scoped policy swap: ``with contract_policy(override="raise"): ...``."""
    if policy is None:
        policy = get_policy()
    if overrides:
        policy = replace(policy, **overrides)
    previous = set_policy(policy)
    try:
        yield policy
    finally:
        set_policy(previous)


def enforce(report: ContractReport, context: str = "") -> ContractReport:
    """Apply severities: warn/raise as the report's checks demand.

    The full report is always built *before* enforcement so the
    exception (and any warning) carries every check, not just the first
    failure.
    """
    raising = [c for c in report.violations() if c.severity == "raise"]
    warning = [c for c in report.violations() if c.severity == "warn"]
    for check in warning:
        warnings.warn(
            f"contract violated{context}: {check.name}: {check.message}",
            ContractWarning,
            stacklevel=3,
        )
    if raising:
        detail = "; ".join(f"{c.name}: {c.message}" for c in raising)
        raise ContractViolationError(
            f"physics contract violated{context}: {detail}", report=report
        )
    return report
