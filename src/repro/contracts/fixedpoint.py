"""Hardened fixed-point driver shared by every outer iteration loop.

The coupled models in this codebase — the closed-loop SC frequency
iteration (:mod:`repro.pdn.closedloop`), the leakage-temperature loop
(:mod:`repro.power.thermal_feedback`) and the regulator's
self-consistent load resolution (:mod:`repro.regulator.control`) — were
originally bare Picard iterations: ``x <- g(x)`` until a tolerance is
met, with ad-hoc handling of the failure paths.  This module centralises
that loop and hardens it:

* **adaptive under-relaxation** — the update is ``x <- x + d * (g(x) -
  x)`` with ``d = 1`` (plain Picard) by default; ``d`` is halved after
  ``growth_patience`` consecutive residual increases or when an
  oscillation is detected, down to ``min_damping``.  A converging plain
  Picard iteration never triggers adaptation, so hardened loops
  reproduce the legacy iterate sequence bit-for-bit.
* **optional Anderson acceleration** — ``anderson_m > 0`` mixes the last
  ``m`` residual differences (type-II AA with damping), which converges
  much faster on stiff but contractive maps.  Off by default.
* **oscillation detection** — ``g_k`` matching ``g_{k-2}`` (within
  tolerance) while differing from ``g_{k-1}`` flags a period-2 cycle.
* **divergence detection** — the residual growing over a window of
  consecutive iterations *and* exceeding ``divergence_factor`` times the
  best residual seen aborts the loop early; a step function may also
  declare divergence itself by raising :class:`FixedPointDivergence`.
* **graceful degradation** — on non-convergence the driver returns the
  *best-residual* iterate flagged ``degraded=True`` together with the
  full residual trace (``on_failure="degrade"``), or raises a typed
  :class:`repro.errors.ConvergenceError` carrying the same record
  (``on_failure="raise"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.obs.trace import get_tracer
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "FixedPointDivergence",
    "FixedPointResult",
    "fixed_point",
    "relative_residual",
    "absolute_residual",
]


class FixedPointDivergence(Exception):
    """Raised *by a step function* to declare the iteration divergent.

    This is a control-flow signal, not a :class:`repro.errors.ReproError`:
    the driver catches it and routes it through the configured failure
    policy (degrade or raise a typed ``ConvergenceError``).
    """


def relative_residual(x_new: np.ndarray, x_old: np.ndarray) -> float:
    """``max |x_new - x_old| / |x_old|`` (zero entries fall back to abs)."""
    x_new = np.asarray(x_new, dtype=float)
    x_old = np.asarray(x_old, dtype=float)
    denom = np.where(np.abs(x_old) > 0.0, np.abs(x_old), 1.0)
    return float(np.max(np.abs(x_new - x_old) / denom))


def absolute_residual(x_new: np.ndarray, x_old: np.ndarray) -> float:
    """``max |x_new - x_old|``."""
    return float(
        np.max(np.abs(np.asarray(x_new, dtype=float) - np.asarray(x_old, dtype=float)))
    )


@dataclass
class FixedPointResult:
    """Outcome of one :func:`fixed_point` run.

    ``x`` is the accepted iterate: the converged output ``g(x)`` on
    success, otherwise the best-residual output seen (graceful
    degradation).  ``best_iteration`` is its 1-based step index, which
    callers use to recover per-iteration payloads they stashed from
    inside the step function.
    """

    x: np.ndarray
    converged: bool
    degraded: bool
    iterations: int
    residual: float
    residual_trace: List[float] = field(default_factory=list)
    best_iteration: int = 0
    oscillating: bool = False
    diverged: bool = False
    reason: str = ""
    #: Damping factor in effect when the loop ended.
    damping: float = 1.0


def fixed_point(
    step: Callable[[np.ndarray], np.ndarray],
    x0,
    *,
    tolerance: float,
    max_iterations: int,
    residual_fn: Callable[[np.ndarray, np.ndarray], float] = relative_residual,
    damping: float = 1.0,
    adaptive_damping: bool = True,
    min_damping: float = 0.05,
    growth_patience: int = 2,
    anderson_m: int = 0,
    min_iterations: int = 1,
    divergence_window: int = 3,
    divergence_factor: float = 1e3,
    on_failure: str = "degrade",
) -> FixedPointResult:
    """Drive ``x <- x + d * (step(x) - x)`` to a fixed point.

    Converges when ``residual_fn(step(x), x) < tolerance`` after at
    least ``min_iterations`` step evaluations (``min_iterations=2``
    reproduces the legacy loops' "never accept the first iterate"
    behaviour).  See the module docstring for the hardening semantics.
    """
    with get_tracer().span("fixed_point") as span:
        try:
            result = _fixed_point_loop(
                step,
                x0,
                tolerance=tolerance,
                max_iterations=max_iterations,
                residual_fn=residual_fn,
                damping=damping,
                adaptive_damping=adaptive_damping,
                min_damping=min_damping,
                growth_patience=growth_patience,
                anderson_m=anderson_m,
                min_iterations=min_iterations,
                divergence_window=divergence_window,
                divergence_factor=divergence_factor,
                on_failure=on_failure,
            )
        except ConvergenceError as exc:
            diagnostics = getattr(exc, "diagnostics", None)
            if isinstance(diagnostics, FixedPointResult):
                span.set(
                    converged=False,
                    degraded=True,
                    iterations=diagnostics.iterations,
                    residual=_finite_or_none(diagnostics.residual),
                )
            raise
        span.set(
            converged=result.converged,
            degraded=result.degraded,
            iterations=result.iterations,
            residual=_finite_or_none(result.residual),
        )
        return result


def _finite_or_none(value: float) -> Optional[float]:
    return float(value) if np.isfinite(value) else None


def _fixed_point_loop(
    step: Callable[[np.ndarray], np.ndarray],
    x0,
    *,
    tolerance: float,
    max_iterations: int,
    residual_fn: Callable[[np.ndarray, np.ndarray], float],
    damping: float,
    adaptive_damping: bool,
    min_damping: float,
    growth_patience: int,
    anderson_m: int,
    min_iterations: int,
    divergence_window: int,
    divergence_factor: float,
    on_failure: str,
) -> FixedPointResult:
    check_positive("tolerance", tolerance)
    check_positive_int("max_iterations", max_iterations)
    check_positive_int("min_iterations", min_iterations)
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must lie in (0, 1]")
    if not 0.0 < min_damping <= damping:
        raise ValueError("min_damping must lie in (0, damping]")
    if anderson_m < 0:
        raise ValueError("anderson_m must be >= 0")
    if on_failure not in ("degrade", "raise"):
        raise ValueError('on_failure must be "degrade" or "raise"')

    x = np.array(np.atleast_1d(x0), dtype=float, copy=True)
    d = damping
    trace: List[float] = []
    outputs: List[np.ndarray] = []  # last few g_k, for oscillation detection
    best_r = np.inf
    best_k = 0
    best_x = x.copy()
    oscillating = False
    diverged = False
    reason = ""
    growth_run = 0
    # Anderson history: columns of successive input/residual differences.
    prev_x_in: Optional[np.ndarray] = None
    prev_f: Optional[np.ndarray] = None
    dx_cols: List[np.ndarray] = []
    df_cols: List[np.ndarray] = []

    for k in range(1, max_iterations + 1):
        try:
            g = np.array(np.atleast_1d(step(x)), dtype=float, copy=True)
        except FixedPointDivergence as signal:
            diverged = True
            reason = str(signal)
            break
        r = float(residual_fn(g, x))
        trace.append(r)
        if np.isfinite(r) and r < best_r:
            best_r, best_k, best_x = r, k, g
        if k >= min_iterations and r < tolerance:
            return FixedPointResult(
                x=g,
                converged=True,
                degraded=False,
                iterations=k,
                residual=r,
                residual_trace=trace,
                best_iteration=k,
                oscillating=oscillating,
                damping=d,
            )
        # Period-2 oscillation: output matches two steps back but not the
        # previous step, while the residual is still above tolerance.
        # Damping only engages when the residual shows no improvement
        # over the cycle — convergent ringing (residual still shrinking)
        # is left on the plain Picard trajectory.
        if len(outputs) >= 2:
            g_back2, g_back1 = outputs[-2], outputs[-1]
            if (
                g.shape == g_back2.shape
                and np.allclose(g, g_back2, rtol=tolerance, atol=0.0)
                and not np.allclose(g, g_back1, rtol=tolerance, atol=0.0)
            ):
                oscillating = True
                stuck = (
                    len(trace) >= 3
                    and np.isfinite(trace[-1])
                    and np.isfinite(trace[-3])
                    and trace[-1] >= trace[-3]
                )
                if adaptive_damping and stuck:
                    d = max(min_damping, 0.5 * d)
        outputs.append(g)
        if len(outputs) > 3:
            outputs.pop(0)
        # Residual growth: damp after `growth_patience` consecutive rises.
        if (
            len(trace) >= 2
            and np.isfinite(trace[-1])
            and np.isfinite(trace[-2])
            and trace[-1] > trace[-2]
        ):
            growth_run += 1
            if adaptive_damping and growth_run >= growth_patience:
                d = max(min_damping, 0.5 * d)
                growth_run = 0
        else:
            growth_run = 0
        # Divergence: monotone residual growth across the window AND the
        # residual has blown far past the best value seen.
        finite = [t for t in trace if np.isfinite(t)]
        if (
            len(trace) > divergence_window
            and all(trace[-i] > trace[-i - 1] for i in range(1, divergence_window + 1))
            and finite
            and trace[-1] > divergence_factor * min(finite)
        ):
            diverged = True
            reason = (
                f"residual grew over {divergence_window} consecutive iterations "
                f"(last {trace[-1]:.3g} vs best {min(finite):.3g})"
            )
            break
        # Next iterate: damped Picard, optionally Anderson-mixed.
        f = g - x
        if anderson_m > 0:
            if prev_x_in is not None and prev_f is not None:
                dx_cols.append(x - prev_x_in)
                df_cols.append(f - prev_f)
                if len(dx_cols) > anderson_m:
                    dx_cols.pop(0)
                    df_cols.pop(0)
            prev_x_in = x
            prev_f = f
            if df_cols:
                df_mat = np.column_stack(df_cols)
                dx_mat = np.column_stack(dx_cols)
                gamma, *_ = np.linalg.lstsq(df_mat, f, rcond=None)
                x = x + d * f - (dx_mat + d * df_mat) @ gamma
            else:
                x = g if d == 1.0 else x + d * f
        else:
            # d == 1 takes g directly: bit-exact plain Picard (x + 1.0 *
            # (g - x) rounds differently).
            x = g if d == 1.0 else x + d * f

    iterations = len(trace)
    if best_k == 0:  # no finite residual was ever recorded
        best_x = x
    if not reason:
        reason = f"no convergence within {max_iterations} iterations"
    result = FixedPointResult(
        x=best_x,
        converged=False,
        degraded=True,
        iterations=iterations,
        residual=best_r,
        residual_trace=trace,
        best_iteration=best_k,
        oscillating=oscillating,
        diverged=diverged,
        reason=reason,
        damping=d,
    )
    if on_failure == "raise":
        raise ConvergenceError(f"fixed-point iteration failed: {reason}", diagnostics=result)
    return result
