"""Geometric primitives for floorplanning."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (metres); ``(x, y)`` is the lower-left."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    @property
    def center(self) -> tuple:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """max(w, h) / min(w, h); 1.0 is square."""
        return max(self.width, self.height) / min(self.width, self.height)

    def overlap_area(self, other: "Rect") -> float:
        """Area of intersection with ``other`` (0 if disjoint)."""
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0 or dy <= 0:
            return 0.0
        return dx * dy

    def contains_point(self, px: float, py: float) -> bool:
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.width, self.height)


@dataclass(frozen=True)
class Block:
    """A named floorplan block with a target area (m^2)."""

    name: str
    area: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("block name must be non-empty")
        check_positive("area", self.area)
