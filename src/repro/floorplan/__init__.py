"""ArchFP-lite: rapid pre-RTL floorplanning.

The paper generates its processor floorplan with ArchFP (Faust et al.,
VLSI-SoC 2012), a constructive slicing-tree floorplanner.  This package
reimplements the part the PDN study needs: turn a list of blocks with
target areas into non-overlapping rectangles tiling a fixed die outline,
and replicate a core floorplan across a regular grid of core tiles.
"""

from repro.floorplan.blocks import Block, Rect
from repro.floorplan.slicing import floorplan_blocks, grid_of_cores

__all__ = ["Block", "Rect", "floorplan_blocks", "grid_of_cores"]
