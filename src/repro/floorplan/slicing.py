"""Slicing-tree floorplanning (the ArchFP approach, simplified).

:func:`floorplan_blocks` recursively bisects the outline: the block list
is split into two groups of roughly equal area, the outline is cut along
its longer dimension proportionally to the group areas, and each half is
floorplanned recursively.  Every block receives exactly its area share of
the outline, so the result always tiles the outline with no overlap and
no dead space (areas are scaled to fill the outline; ArchFP similarly
swells whitespace into blocks at this abstraction level).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.floorplan.blocks import Block, Rect
from repro.utils.validation import check_positive_int


def floorplan_blocks(blocks: Sequence[Block], outline: Rect) -> Dict[str, Rect]:
    """Place ``blocks`` inside ``outline``; returns name -> rectangle.

    Block areas are treated as *relative* weights: the outline is fully
    tiled and each block gets ``outline.area * area_i / sum(areas)``.
    Names must be unique.
    """
    if not blocks:
        raise ValueError("blocks must be non-empty")
    names = [b.name for b in blocks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate block names in {names}")
    placements: Dict[str, Rect] = {}
    _place(list(blocks), outline, placements)
    return placements


def _place(blocks: List[Block], outline: Rect, out: Dict[str, Rect]) -> None:
    if len(blocks) == 1:
        out[blocks[0].name] = outline
        return
    left, right = _balanced_split(blocks)
    total = sum(b.area for b in blocks)
    fraction = sum(b.area for b in left) / total
    if outline.width >= outline.height:
        cut = outline.width * fraction
        rect_left = Rect(outline.x, outline.y, cut, outline.height)
        rect_right = Rect(outline.x + cut, outline.y, outline.width - cut, outline.height)
    else:
        cut = outline.height * fraction
        rect_left = Rect(outline.x, outline.y, outline.width, cut)
        rect_right = Rect(outline.x, outline.y + cut, outline.width, outline.height - cut)
    _place(left, rect_left, out)
    _place(right, rect_right, out)


def _balanced_split(blocks: List[Block]) -> Tuple[List[Block], List[Block]]:
    """Greedy partition of blocks into two near-equal-area halves.

    Blocks are considered in decreasing area order and assigned to the
    lighter side; both sides are guaranteed non-empty.
    """
    ordered = sorted(blocks, key=lambda b: b.area, reverse=True)
    left: List[Block] = []
    right: List[Block] = []
    area_left = 0.0
    area_right = 0.0
    for block in ordered:
        if area_left <= area_right:
            left.append(block)
            area_left += block.area
        else:
            right.append(block)
            area_right += block.area
    if not right:  # can only happen for a single block, handled upstream
        right.append(left.pop())
    return left, right


def grid_of_cores(
    die: Rect, rows: int, cols: int, core_blocks: Sequence[Block]
) -> Dict[str, Rect]:
    """Tile the die with ``rows x cols`` identical core tiles.

    Each tile is floorplanned with ``core_blocks``; block names are
    prefixed ``core{r}_{c}.`` so the result maps every block instance on
    the die to its rectangle.
    """
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    tile_w = die.width / cols
    tile_h = die.height / rows
    result: Dict[str, Rect] = {}
    for r in range(rows):
        for c in range(cols):
            tile = Rect(die.x + c * tile_w, die.y + r * tile_h, tile_w, tile_h)
            placed = floorplan_blocks(core_blocks, tile)
            for name, rect in placed.items():
                result[f"core{r}_{c}.{name}"] = rect
    return result
