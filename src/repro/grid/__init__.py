"""Sparse resistive-network (modified nodal analysis) engine.

This package is the reproduction of the electrical core of VoltSpot that
the paper builds on: a node/element netlist builder (:mod:`netlist`), the
sparse MNA assembly and LU solve (:mod:`solver`), and the solution object
exposing node voltages, per-branch currents and power bookkeeping
(:mod:`solution`).

The one non-standard element is the 2:1 switched-capacitor converter
stamp: an ideal 2:1 transformer (output voltage = the mean of its two
input rails) in series with the converter's output resistance, following
the compact model of paper Fig. 2.
"""

from repro.grid.ac import ACAnalysis, ImpedanceProfile, pdn_impedance_profile
from repro.grid.backends import (
    Factorization,
    SolverBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.grid.dynamic import Capacitor, Inductor, TransientEngine, TransientTrace
from repro.grid.netlist import Circuit, ElementRef
from repro.grid.solution import Solution
from repro.grid.solver import (
    AssembledCircuit,
    SolveDiagnostics,
    SolveOptions,
    SolveRequest,
)

__all__ = [
    "Circuit",
    "ElementRef",
    "AssembledCircuit",
    "SolveDiagnostics",
    "SolveOptions",
    "SolveRequest",
    "Solution",
    "SolverBackend",
    "Factorization",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "Capacitor",
    "Inductor",
    "TransientEngine",
    "TransientTrace",
    "ACAnalysis",
    "ImpedanceProfile",
    "pdn_impedance_profile",
]
