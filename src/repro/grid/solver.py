"""MNA assembly and sparse LU solve.

:class:`AssembledCircuit` freezes a :class:`repro.grid.netlist.Circuit`
topology into a sparse MNA matrix, LU-factorises it once (SuperLU via
``scipy.sparse.linalg.splu``) and then solves for any set of source
values.  Because independent sources only enter the right-hand side,
parameter sweeps over load currents — the inner loop of every experiment
in the paper — reuse the factorisation and cost only a triangular solve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import splu

from repro.grid.netlist import CONVERTER, ISOURCE, RESISTOR, VSOURCE, Circuit
from repro.grid.solution import Solution


class SingularCircuitError(RuntimeError):
    """The MNA system is singular (typically a floating subnetwork)."""


class AssembledCircuit:
    """A factorised MNA system ready for repeated right-hand-side solves.

    The unknown vector is laid out as ``[node voltages (ground dropped),
    voltage-source branch currents, converter output currents]``.
    """

    #: Relative residual above which a solve is reported as singular.
    RESIDUAL_TOLERANCE = 1e-6

    def __init__(self, circuit: Circuit):
        if circuit.ground is None:
            raise ValueError("circuit has no ground: call Circuit.set_ground() first")
        if circuit.count(RESISTOR) == 0 and circuit.count(VSOURCE) == 0:
            raise ValueError("circuit has no conducting elements")
        self.circuit = circuit
        self._ground = circuit.ground
        self._n_nodes = circuit.node_count
        self._nv = circuit.count(VSOURCE)
        self._nc = circuit.count(CONVERTER)
        self.dimension = (self._n_nodes - 1) + self._nv + self._nc
        self._matrix = self._build_matrix()
        self._lu = None

    # ------------------------------------------------------------------
    def _row_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Map node ids to matrix rows; the ground node maps to -1."""
        rows = np.where(node_ids < self._ground, node_ids, node_ids - 1)
        rows = np.where(node_ids == self._ground, -1, rows)
        return rows

    def _build_matrix(self):
        circuit = self.circuit
        rows_parts = []
        cols_parts = []
        vals_parts = []

        def stamp(rows, cols, vals):
            rows = np.asarray(rows)
            cols = np.asarray(cols)
            vals = np.asarray(vals, dtype=float)
            keep = (rows >= 0) & (cols >= 0)
            rows_parts.append(rows[keep])
            cols_parts.append(cols[keep])
            vals_parts.append(vals[keep])

        # --- resistors -------------------------------------------------
        res = circuit.store(RESISTOR)
        if len(res):
            n1 = self._row_of(res.column("n1"))
            n2 = self._row_of(res.column("n2"))
            g = 1.0 / res.column("resistance")
            stamp(n1, n1, g)
            stamp(n2, n2, g)
            stamp(n1, n2, -g)
            stamp(n2, n1, -g)

        nv_offset = self._n_nodes - 1
        nc_offset = nv_offset + self._nv

        # --- voltage sources --------------------------------------------
        vsrc = circuit.store(VSOURCE)
        if len(vsrc):
            pos = self._row_of(vsrc.column("pos"))
            neg = self._row_of(vsrc.column("neg"))
            k = nv_offset + np.arange(self._nv)
            ones = np.ones(self._nv)
            stamp(pos, k, ones)   # branch current leaves the + node
            stamp(neg, k, -ones)
            stamp(k, pos, ones)   # constraint: v+ - v- = V
            stamp(k, neg, -ones)

        # --- SC converters ------------------------------------------------
        conv = circuit.store(CONVERTER)
        if len(conv):
            top = self._row_of(conv.column("top"))
            bottom = self._row_of(conv.column("bottom"))
            mid = self._row_of(conv.column("mid"))
            rser = conv.column("r_series")
            k = nc_offset + np.arange(self._nc)
            half = np.full(self._nc, 0.5)
            ones = np.ones(self._nc)
            # KCL: output current j enters mid; j/2 is drawn from each rail.
            stamp(top, k, half)
            stamp(bottom, k, half)
            stamp(mid, k, -ones)
            # Constraint: v_mid - (v_top + v_bottom)/2 + j * r_series = 0.
            stamp(k, mid, ones)
            stamp(k, top, -half)
            stamp(k, bottom, -half)
            stamp(k, k, rser)

        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=int)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=int)
        vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
        matrix = coo_matrix(
            (vals, (rows, cols)), shape=(self.dimension, self.dimension)
        ).tocsc()
        return matrix

    # ------------------------------------------------------------------
    def _rhs(
        self,
        isource_current: Optional[np.ndarray],
        vsource_voltage: Optional[np.ndarray],
    ) -> np.ndarray:
        circuit = self.circuit
        z = np.zeros(self.dimension)

        isrc = circuit.store(ISOURCE)
        if len(isrc):
            current = (
                isrc.column("current")
                if isource_current is None
                else np.asarray(isource_current, dtype=float)
            )
            if len(current) != len(isrc):
                raise ValueError(
                    f"isource_current must have length {len(isrc)}, got {len(current)}"
                )
            src = self._row_of(isrc.column("src"))
            dst = self._row_of(isrc.column("dst"))
            np.add.at(z, src[src >= 0], -current[src >= 0])
            np.add.at(z, dst[dst >= 0], current[dst >= 0])

        vsrc = circuit.store(VSOURCE)
        if len(vsrc):
            voltage = (
                vsrc.column("voltage")
                if vsource_voltage is None
                else np.asarray(vsource_voltage, dtype=float)
            )
            if len(voltage) != len(vsrc):
                raise ValueError(
                    f"vsource_voltage must have length {len(vsrc)}, got {len(voltage)}"
                )
            z[self._n_nodes - 1 : self._n_nodes - 1 + self._nv] = voltage
        return z

    # ------------------------------------------------------------------
    def solve(
        self,
        isource_current: Optional[np.ndarray] = None,
        vsource_voltage: Optional[np.ndarray] = None,
    ) -> Solution:
        """Solve the DC operating point.

        Parameters
        ----------
        isource_current, vsource_voltage:
            Optional full-length override arrays for the independent
            source values; ``None`` uses the values given at netlist
            construction.  The system matrix is untouched either way, so
            sweeps amortise the factorisation.
        """
        if self._lu is None:
            try:
                self._lu = splu(self._matrix)
            except RuntimeError as exc:  # SuperLU signals exact singularity
                raise SingularCircuitError(
                    f"MNA matrix is singular ({exc}); check for floating nodes"
                ) from exc
        z = self._rhs(isource_current, vsource_voltage)
        x = self._lu.solve(z)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError("solve produced non-finite voltages")
        residual = np.linalg.norm(self._matrix @ x - z)
        scale = max(1.0, float(np.linalg.norm(z)))
        if residual / scale > self.RESIDUAL_TOLERANCE:
            raise SingularCircuitError(
                f"solve residual {residual / scale:.2e} exceeds tolerance; "
                "the circuit is ill-conditioned or disconnected"
            )
        return Solution(
            assembled=self,
            x=x,
            isource_current=(
                self.circuit.store(ISOURCE).column("current")
                if isource_current is None
                else np.asarray(isource_current, dtype=float)
            ),
            vsource_voltage=(
                self.circuit.store(VSOURCE).column("voltage")
                if vsource_voltage is None
                else np.asarray(vsource_voltage, dtype=float)
            ),
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    @property
    def ground_node(self) -> int:
        return self._ground

    @property
    def vsource_offset(self) -> int:
        return self._n_nodes - 1

    @property
    def converter_offset(self) -> int:
        return self._n_nodes - 1 + self._nv
