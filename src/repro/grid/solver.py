"""MNA assembly, sparse LU solve, and the resilient solve path.

:class:`AssembledCircuit` freezes a :class:`repro.grid.netlist.Circuit`
topology into a sparse MNA matrix, LU-factorises it once (SuperLU via
``scipy.sparse.linalg.splu``) and then solves for any set of source
values.  Because independent sources only enter the right-hand side,
parameter sweeps over load currents — the inner loop of every experiment
in the paper — reuse the factorisation and cost only a triangular solve.

Fault-injected netlists (see :mod:`repro.faults`) can leave the system
singular: an opened TSV tier floats a whole layer, a dead converter bank
floats an intermediate rail.  ``solve(resilient=True)`` refuses to die on
such inputs.  Before declaring defeat it

1. detects floating subnetworks with
   ``scipy.sparse.csgraph.connected_components`` over the conduction
   graph, prunes them (their nodes are grounded, their loads shed) and
   records what was dropped in a :class:`SolveDiagnostics`;
2. pins any remaining structurally-empty MNA rows with identity
   stamps (dead source/converter branches);
3. climbs a solver **escalation ladder** on each (full or pruned)
   system: SuperLU direct solve, then iterative refinement against the
   existing factorisation (gated on the 1-norm condition estimate from
   ``scipy.sparse.linalg.onenormest``), then a Jacobi-preconditioned
   LGMRES iteration, and finally a dense least-squares solve for small
   systems.  Every rung climbed is recorded in
   :attr:`SolveDiagnostics.escalations`.

Only when the whole ladder fails does it raise — always a typed
:class:`repro.errors.ReproError` subclass carrying the diagnostics,
never a bare SciPy exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components
from scipy.sparse.linalg import LinearOperator, lgmres, onenormest, splu

from repro.errors import (
    ConvergenceError,
    FaultInjectionError,
    SingularCircuitError,
)
from repro.grid.netlist import CONVERTER, ISOURCE, RESISTOR, VSOURCE, Circuit
from repro.obs.trace import get_tracer
from repro.grid.solution import Solution
from repro.utils.validation import check_finite_array

__all__ = [
    "AssembledCircuit",
    "SolveDiagnostics",
    "SingularCircuitError",
    "ConvergenceError",
]


@dataclass
class SolveDiagnostics:
    """Structured record of what the resilient solve path had to do.

    A clean direct solve leaves every count at zero and ``fallback`` at
    ``"none"``; anything else means the circuit was degraded and the
    returned operating point describes the *pruned* network.
    """

    #: Floating subnetworks detected (connected components without ground).
    n_islands: int = 0
    #: Node ids grounded away with their islands.
    dropped_nodes: List[int] = field(default_factory=list)
    #: Current sources disconnected because they fed a floating island.
    shed_loads: int = 0
    #: Structurally-empty MNA rows pinned with an identity stamp.
    stabilized_rows: int = 0
    #: Solver that produced the answer: "none" (direct solves, pruned or
    #: not), "refined" (iterative refinement), "iterative" (the
    #: Jacobi-LGMRES fallback) or "lstsq" (dense least squares).
    fallback: str = "none"
    #: Escalation-ladder rungs visited, in order ("lu", "refine",
    #: "pruned-lu", "lgmres", "lstsq").  A clean solve is just ["lu"].
    escalations: List[str] = field(default_factory=list)
    #: Wall time spent on each rung, parallel to ``escalations``, so
    #: ladder cost is attributable per rung (batched clean columns get
    #: an equal share of their batch's direct-solve time).
    escalation_times_s: List[float] = field(default_factory=list)
    #: Iteration count of the fallback solver (0 for direct solves).
    iterations: int = 0
    #: Relative residual of the accepted solution.
    residual: float = 0.0
    #: One-norm condition estimate of the (possibly pruned) MNA matrix,
    #: when a factorisation was available to compute it.
    condition_estimate: Optional[float] = None
    #: ``repro.contracts.ContractReport`` of the physics-contract checks
    #: run against the result built from this solve, when checking is
    #: enabled (attached by the PDN layer, not the raw solver).
    contracts: Optional[object] = None

    @property
    def n_dropped_nodes(self) -> int:
        return len(self.dropped_nodes)

    @property
    def degraded(self) -> bool:
        """True when the solution describes a pruned or fallback solve."""
        return bool(
            self.n_islands
            or self.stabilized_rows
            or self.shed_loads
            or self.fallback != "none"
        )

    def summary(self) -> str:
        if not self.degraded:
            return f"clean solve (residual {self.residual:.1e})"
        return (
            f"degraded solve: {self.n_islands} island(s), "
            f"{self.n_dropped_nodes} node(s) grounded, "
            f"{self.shed_loads} load(s) shed, "
            f"{self.stabilized_rows} row(s) pinned, "
            f"fallback={self.fallback}, residual {self.residual:.1e}"
        )


class _RungTimer:
    """Tracks the escalation ladder: rung names plus per-rung wall time.

    The impl calls :meth:`start` at each rung transition; the public
    wrapper calls :meth:`finish` exactly once (on return *or* on raise)
    to close the last rung, stamp the diagnostics, and emit one trace
    span per rung so ladder cost shows up in ``repro trace``.
    """

    __slots__ = ("names", "times", "_t")

    def __init__(self):
        self.names: List[str] = []
        self.times: List[float] = []
        self._t: Optional[float] = None

    def start(self, name: str) -> None:
        self._close()
        self.names.append(name)
        self._t = time.perf_counter()

    def _close(self) -> None:
        if self._t is not None:
            self.times.append(time.perf_counter() - self._t)
            self._t = None

    def finish(self, diag: Optional[SolveDiagnostics]) -> None:
        self._close()
        if diag is not None:
            diag.escalation_times_s = list(self.times)
        tracer = get_tracer()
        if tracer.enabled:
            for name, elapsed in zip(self.names, self.times):
                tracer.record("rung", elapsed, rung=name)


class AssembledCircuit:
    """A factorised MNA system ready for repeated right-hand-side solves.

    The unknown vector is laid out as ``[node voltages (ground dropped),
    voltage-source branch currents, converter output currents]``.
    """

    #: Relative residual above which a solve is reported as singular.
    RESIDUAL_TOLERANCE = 1e-6
    #: Iteration budget for the Jacobi-LGMRES fallback.
    MAX_FALLBACK_ITERATIONS = 2000
    #: Iterative-refinement passes against an existing factorisation.
    MAX_REFINEMENT_PASSES = 3
    #: Refinement is skipped when the 1-norm condition estimate exceeds
    #: this (refinement cannot recover digits that no longer exist).
    REFINE_CONDITION_LIMIT = 1e14
    #: Dense least-squares last resort is only attempted below this
    #: dimension (it materialises the full matrix).
    LSTSQ_MAX_DIMENSION = 3000

    def __init__(self, circuit: Circuit):
        if circuit.ground is None:
            raise ValueError("circuit has no ground: call Circuit.set_ground() first")
        if circuit.count(RESISTOR) == 0 and circuit.count(VSOURCE) == 0:
            raise ValueError("circuit has no conducting elements")
        self.circuit = circuit
        self._revision = circuit.revision
        self._ground = circuit.ground
        self._n_nodes = circuit.node_count
        self._nv = circuit.count(VSOURCE)
        self._nc = circuit.count(CONVERTER)
        self.dimension = (self._n_nodes - 1) + self._nv + self._nc
        with get_tracer().span("assemble") as span:
            self._stamps = self._collect_stamps()
            self._matrix = coo_matrix(
                (self._stamps[2], (self._stamps[0], self._stamps[1])),
                shape=(self.dimension, self.dimension),
            ).tocsc()
            span.set(dimension=self.dimension, nnz=int(self._matrix.nnz))
        self._lu = None
        #: Matrix rows zeroed by pruning/pinning; their RHS entries are
        #: forced to zero.  Empty until the resilient path prunes.
        self._forced_zero_rows: np.ndarray = np.empty(0, dtype=int)
        self._pruned_matrix = None
        self._pruned_lu = None
        self._diagnostics_template: Optional[SolveDiagnostics] = None
        self._island_node_mask: Optional[np.ndarray] = None
        self._shed_isource_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _row_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Map node ids to matrix rows; the ground node maps to -1."""
        rows = np.where(node_ids < self._ground, node_ids, node_ids - 1)
        rows = np.where(node_ids == self._ground, -1, rows)
        return rows

    def _collect_stamps(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw COO stamps of the MNA matrix, honouring element activity."""
        circuit = self.circuit
        rows_parts = []
        cols_parts = []
        vals_parts = []

        def stamp(rows, cols, vals):
            rows = np.asarray(rows)
            cols = np.asarray(cols)
            vals = np.asarray(vals, dtype=float)
            keep = (rows >= 0) & (cols >= 0)
            rows_parts.append(rows[keep])
            cols_parts.append(cols[keep])
            vals_parts.append(vals[keep])

        # --- resistors -------------------------------------------------
        res = circuit.store(RESISTOR)
        if len(res):
            act = res.active
            n1 = self._row_of(res.column("n1")[act])
            n2 = self._row_of(res.column("n2")[act])
            g = 1.0 / res.column("resistance")[act]
            stamp(n1, n1, g)
            stamp(n2, n2, g)
            stamp(n1, n2, -g)
            stamp(n2, n1, -g)

        nv_offset = self._n_nodes - 1
        nc_offset = nv_offset + self._nv

        # --- voltage sources --------------------------------------------
        vsrc = circuit.store(VSOURCE)
        if len(vsrc):
            act = vsrc.active
            pos = self._row_of(vsrc.column("pos"))
            neg = self._row_of(vsrc.column("neg"))
            k = nv_offset + np.arange(self._nv)
            ones = np.ones(self._nv)
            # Live sources get the usual coupling + constraint stamps;
            # failed-open sources keep only an identity row pinning their
            # branch current to the (zeroed) RHS entry.
            stamp(pos[act], k[act], ones[act])
            stamp(neg[act], k[act], -ones[act])
            stamp(k[act], pos[act], ones[act])
            stamp(k[act], neg[act], -ones[act])
            dead = ~act
            if dead.any():
                stamp(k[dead], k[dead], ones[dead])

        # --- SC converters ------------------------------------------------
        conv = circuit.store(CONVERTER)
        if len(conv):
            act = conv.active
            top = self._row_of(conv.column("top"))
            bottom = self._row_of(conv.column("bottom"))
            mid = self._row_of(conv.column("mid"))
            rser = conv.column("r_series")
            k = nc_offset + np.arange(self._nc)
            half = np.full(self._nc, 0.5)
            ones = np.ones(self._nc)
            # KCL: output current j enters mid; j/2 is drawn from each rail.
            stamp(top[act], k[act], half[act])
            stamp(bottom[act], k[act], half[act])
            stamp(mid[act], k[act], -ones[act])
            # Constraint: v_mid - (v_top + v_bottom)/2 + j * r_series = 0.
            stamp(k[act], mid[act], ones[act])
            stamp(k[act], top[act], -half[act])
            stamp(k[act], bottom[act], -half[act])
            stamp(k[act], k[act], rser[act])
            dead = ~act
            if dead.any():  # pin the dead converters' output current to 0
                stamp(k[dead], k[dead], ones[dead])

        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=int)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=int)
        vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
        return rows, cols, vals

    # ------------------------------------------------------------------
    def _resolve_sources(
        self,
        isource_current: Optional[np.ndarray],
        vsource_voltage: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate the source value vectors (overrides or stored).

        Failed-open sources are zeroed; non-finite overrides are rejected
        with a ``ValueError`` naming the offending element index.
        """
        circuit = self.circuit
        isrc = circuit.store(ISOURCE)
        if isource_current is None:
            current = isrc.column("current")
        else:
            current = check_finite_array("isource_current", isource_current)
        if len(current) != len(isrc):
            raise ValueError(
                f"isource_current must have length {len(isrc)}, got {len(current)}"
            )
        if len(isrc):
            current = np.where(isrc.active, current, 0.0)

        vsrc = circuit.store(VSOURCE)
        if vsource_voltage is None:
            voltage = vsrc.column("voltage")
        else:
            voltage = check_finite_array("vsource_voltage", vsource_voltage)
        if len(voltage) != len(vsrc):
            raise ValueError(
                f"vsource_voltage must have length {len(vsrc)}, got {len(voltage)}"
            )
        if len(vsrc):
            voltage = np.where(vsrc.active, voltage, 0.0)
        return current, voltage

    def _rhs(self, current: np.ndarray, voltage: np.ndarray) -> np.ndarray:
        """Assemble the RHS from resolved source value vectors."""
        circuit = self.circuit
        z = np.zeros(self.dimension)
        isrc = circuit.store(ISOURCE)
        if len(isrc):
            src = self._row_of(isrc.column("src"))
            dst = self._row_of(isrc.column("dst"))
            np.add.at(z, src[src >= 0], -current[src >= 0])
            np.add.at(z, dst[dst >= 0], current[dst >= 0])
        if len(circuit.store(VSOURCE)):
            z[self._n_nodes - 1 : self._n_nodes - 1 + self._nv] = voltage
        return z

    # ------------------------------------------------------------------
    # island analysis and pruning
    # ------------------------------------------------------------------
    def _conduction_graph(self):
        """Sparse node-adjacency graph of every *active* conducting path."""
        circuit = self.circuit
        edges_u = []
        edges_v = []

        res = circuit.store(RESISTOR)
        if len(res):
            act = res.active
            edges_u.append(res.column("n1")[act])
            edges_v.append(res.column("n2")[act])

        vsrc = circuit.store(VSOURCE)
        if len(vsrc):
            act = vsrc.active
            edges_u.append(vsrc.column("pos")[act])
            edges_v.append(vsrc.column("neg")[act])

        conv = circuit.store(CONVERTER)
        if len(conv):
            act = conv.active
            for a, b in (("top", "mid"), ("bottom", "mid"), ("top", "bottom")):
                edges_u.append(conv.column(a)[act])
                edges_v.append(conv.column(b)[act])

        n = self._n_nodes
        if not edges_u:
            return coo_matrix((n, n))
        u = np.concatenate(edges_u)
        v = np.concatenate(edges_v)
        return coo_matrix((np.ones(len(u)), (u, v)), shape=(n, n))

    def find_islands(self) -> Tuple[int, np.ndarray]:
        """Detect floating subnetworks.

        Returns ``(n_islands, island_node_mask)`` where the mask is a
        boolean per-node array, True for every node not connected to
        ground through any conducting element.
        """
        graph = self._conduction_graph()
        n_components, labels = connected_components(graph, directed=False)
        ground_label = labels[self._ground]
        island_mask = labels != ground_label
        island_labels = np.unique(labels[island_mask])
        return len(island_labels), island_mask

    def _build_pruned_system(self) -> SolveDiagnostics:
        """Ground floating islands and pin empty rows; cache the result."""
        diag = SolveDiagnostics()
        n_islands, island_mask = self.find_islands()
        diag.n_islands = n_islands
        diag.dropped_nodes = [int(i) for i in np.flatnonzero(island_mask)]

        # A load with either terminal in an island is fully disconnected:
        # zeroing only the island side would leave it pumping current into
        # the live network with no return path.
        isrc = self.circuit.store(ISOURCE)
        self._shed_isource_mask = np.zeros(len(isrc), dtype=bool)
        if len(isrc) and island_mask.any():
            act = isrc.active
            src_in = island_mask[isrc.column("src")]
            dst_in = island_mask[isrc.column("dst")]
            self._shed_isource_mask = act & (src_in | dst_in)
            diag.shed_loads = int(np.sum(self._shed_isource_mask))

        rows, cols, vals = self._stamps
        pruned_row_ids = self._row_of(np.flatnonzero(island_mask))
        pruned_row_ids = pruned_row_ids[pruned_row_ids >= 0]
        pruned_set = np.zeros(self.dimension, dtype=bool)
        pruned_set[pruned_row_ids] = True

        keep = ~(pruned_set[rows] | pruned_set[cols])
        rows2 = rows[keep]
        cols2 = cols[keep]
        vals2 = vals[keep]

        # Identity stamps ground the pruned node rows.
        if pruned_row_ids.size:
            rows2 = np.concatenate([rows2, pruned_row_ids])
            cols2 = np.concatenate([cols2, pruned_row_ids])
            vals2 = np.concatenate([vals2, np.ones(pruned_row_ids.size)])

        # Any row left with no stamps at all (dead source branches whose
        # terminals were pruned, degenerate topologies) is pinned too.
        occupancy = np.bincount(rows2, minlength=self.dimension)
        empty_rows = np.flatnonzero(occupancy == 0)
        diag.stabilized_rows = int(empty_rows.size)
        if empty_rows.size:
            rows2 = np.concatenate([rows2, empty_rows])
            cols2 = np.concatenate([cols2, empty_rows])
            vals2 = np.concatenate([vals2, np.ones(empty_rows.size)])

        self._forced_zero_rows = np.union1d(pruned_row_ids, empty_rows)
        self._pruned_matrix = coo_matrix(
            (vals2, (rows2, cols2)), shape=(self.dimension, self.dimension)
        ).tocsc()
        self._pruned_lu = None
        self._island_node_mask = island_mask
        return diag

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _check_revision(self) -> None:
        if self.circuit.revision != self._revision:
            raise FaultInjectionError(
                "circuit was modified after assembly (fault injection?); "
                "call Circuit.assemble() again to pick up the changes"
            )

    def _condition_estimate(self, matrix, lu) -> Optional[float]:
        if self.dimension < 2:
            return None
        try:
            # onenormest needs the adjoint too; SuperLU solves A^T x = b.
            inv = LinearOperator(
                matrix.shape,
                matvec=lu.solve,
                rmatvec=lambda v: lu.solve(v, trans="T"),
            )
            return float(onenormest(matrix) * onenormest(inv))
        except Exception:  # estimation is best-effort only
            return None

    def _relative_residual(self, matrix, x, z) -> float:
        residual = np.linalg.norm(matrix @ x - z)
        scale = max(1.0, float(np.linalg.norm(z)))
        return residual / scale

    def _direct_attempt(self, matrix, lu_attr: str, z):
        """Try SuperLU; return (x, relative_residual) or None on failure."""
        lu = getattr(self, lu_attr)
        if lu is None:
            try:
                lu = splu(matrix)
            except (RuntimeError, ValueError):
                return None
            setattr(self, lu_attr, lu)
        x = lu.solve(z)
        if not np.all(np.isfinite(x)):
            return None
        return x, self._relative_residual(matrix, x, z)

    def _refine_attempt(self, matrix, lu, x, z):
        """Iterative refinement against an existing LU factorisation.

        Classical residual correction: ``x += lu.solve(z - A x)`` until
        the relative residual meets the tolerance or the pass budget is
        spent.  Returns ``(x, relative_residual)`` of the best iterate.
        """
        rel = self._relative_residual(matrix, x, z)
        for _ in range(self.MAX_REFINEMENT_PASSES):
            if rel <= self.RESIDUAL_TOLERANCE:
                break
            dx = lu.solve(z - matrix @ x)
            if not np.all(np.isfinite(dx)):
                break
            refined = x + dx
            refined_rel = self._relative_residual(matrix, refined, z)
            if refined_rel >= rel:  # refinement stalled or diverged
                break
            x, rel = refined, refined_rel
        return x, rel

    def _should_refine(self, condition_estimate: Optional[float]) -> bool:
        """Refinement rung gate: conditioning must leave digits to win back."""
        return (
            condition_estimate is None
            or condition_estimate < self.REFINE_CONDITION_LIMIT
        )

    def _lstsq_attempt(self, matrix, z):
        """Dense least-squares last resort for small systems.

        Returns ``(x, relative_residual)`` or None when the system is
        too large to densify or lstsq itself failed.
        """
        if self.dimension > self.LSTSQ_MAX_DIMENSION:
            return None
        try:
            x, *_ = np.linalg.lstsq(matrix.toarray(), z, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(x)):
            return None
        return x, self._relative_residual(matrix, x, z)

    def _iterative_attempt(self, matrix, z, diag: SolveDiagnostics):
        """Jacobi-preconditioned LGMRES fallback for near-singular systems."""
        diagonal = matrix.diagonal()
        inv_diag = np.where(np.abs(diagonal) > 1e-300, 1.0 / diagonal, 1.0)
        preconditioner = LinearOperator(
            matrix.shape, matvec=lambda v: inv_diag * v
        )
        iterations = 0

        def count(_):
            nonlocal iterations
            iterations += 1

        x, info = lgmres(
            matrix,
            z,
            M=preconditioner,
            rtol=self.RESIDUAL_TOLERANCE * 1e-2,
            atol=0.0,
            maxiter=self.MAX_FALLBACK_ITERATIONS,
            callback=count,
        )
        diag.fallback = "iterative"
        diag.iterations = iterations
        if info != 0 or not np.all(np.isfinite(x)):
            return None
        return x, self._relative_residual(matrix, x, z)

    def solve(
        self,
        isource_current: Optional[np.ndarray] = None,
        vsource_voltage: Optional[np.ndarray] = None,
        resilient: bool = False,
    ) -> Solution:
        """Solve the DC operating point.

        Parameters
        ----------
        isource_current, vsource_voltage:
            Optional full-length override arrays for the independent
            source values; ``None`` uses the values given at netlist
            construction.  The system matrix is untouched either way, so
            sweeps amortise the factorisation.  Non-finite entries are
            rejected with a ``ValueError`` naming the offending index.
        resilient:
            When True, a singular or near-singular system is not fatal:
            floating subnetworks are pruned (grounded, their loads shed)
            and an iterative fallback is tried before raising.  The
            returned :class:`repro.grid.solution.Solution` carries a
            :class:`SolveDiagnostics` describing every measure taken.

        Raises
        ------
        repro.errors.SingularCircuitError
            The system has no unique solution (and, in resilient mode,
            pruning did not make it solvable).
        repro.errors.ConvergenceError
            Resilient mode only: the iterative fallback ran out of
            iterations on a near-singular system.
        repro.errors.FaultInjectionError
            The circuit was mutated after assembly.
        """
        self._check_revision()
        current, voltage = self._resolve_sources(isource_current, vsource_voltage)
        if resilient:
            x, diag, current = self._solve_resilient(current, voltage)
        else:
            x = self._solve_strict(self._rhs(current, voltage))
            diag = None
        return Solution(
            assembled=self,
            x=x,
            isource_current=current,
            vsource_voltage=voltage,
            diagnostics=diag,
        )

    def factorize(self) -> bool:
        """Eagerly LU-factorise the full MNA matrix.

        Normally the factorisation happens lazily inside the first
        :meth:`solve`; the sweep engine calls this explicitly so build,
        factorise and solve time can be attributed to separate stages.
        Returns False (instead of raising) when the matrix is singular,
        leaving the resilient path to deal with it later.
        """
        if self._lu is None:
            try:
                self._lu = splu(self._matrix)
            except (RuntimeError, ValueError):
                return False
        return True

    def solve_batch(
        self,
        isource_currents: Optional[Sequence[Optional[np.ndarray]]] = None,
        vsource_voltage: Optional[np.ndarray] = None,
        resilient: bool = False,
    ) -> List[Solution]:
        """Solve many operating points against one factorisation.

        ``isource_currents`` is a sequence of per-point load-current
        overrides (each entry as in :meth:`solve`; ``None`` entries use
        the stored values).  All points share the system matrix, so the
        right-hand sides are stacked into one dense matrix and solved in
        a single multi-RHS triangular solve — the amortisation this
        module's docstring promises, now paid once per *sweep* instead
        of once per point.

        Returns one :class:`Solution` per entry, in input order, and is
        numerically identical to calling :meth:`solve` point by point
        (the same factorisation caches are used for both paths).
        """
        self._check_revision()
        if isource_currents is None:
            raise ValueError("solve_batch needs a sequence of operating points")
        resolved = [
            self._resolve_sources(currents, vsource_voltage)
            for currents in isource_currents
        ]
        if not resolved:
            return []
        if resilient:
            return self._solve_resilient_batch(resolved)
        z = np.column_stack([self._rhs(c, v) for c, v in resolved])
        x = self._solve_strict(z)
        return [
            Solution(
                assembled=self,
                x=x[:, i],
                isource_current=resolved[i][0],
                vsource_voltage=resolved[i][1],
            )
            for i in range(len(resolved))
        ]

    def _batch_residuals(self, matrix, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Per-column relative residuals of a multi-RHS solve."""
        residual = np.linalg.norm(matrix @ x - z, axis=0)
        scale = np.maximum(1.0, np.linalg.norm(z, axis=0))
        return residual / scale

    def _solve_resilient_batch(self, resolved) -> List[Solution]:
        """Batched mirror of :meth:`_solve_resilient`.

        Columns whose full-system direct solve meets the residual
        tolerance keep the un-pruned multi-RHS answer (clean
        diagnostics); every failing column then climbs the full
        per-point escalation ladder — refinement, pruning, LGMRES,
        lstsq — exactly as :meth:`solve` would, so results match the
        point-by-point path bit for bit.
        """
        k = len(resolved)
        z = np.column_stack([self._rhs(c, v) for c, v in resolved])
        solutions: List[Optional[Solution]] = [None] * k
        pending = list(range(k))

        # 1. Plain direct multi-RHS solve on the full system.
        if self.factorize():
            t0 = time.perf_counter()
            x = self._lu.solve(z)
            finite = np.all(np.isfinite(x), axis=0)
            rel = self._batch_residuals(self._matrix, x, z)
            batch_elapsed = time.perf_counter() - t0
            clean = [
                i
                for i in pending
                if finite[i] and rel[i] <= self.RESIDUAL_TOLERANCE
            ]
            # Clean columns share the batch's direct-solve wall equally;
            # exact per-column cost of one multi-RHS triangular solve is
            # not separable, and the shares sum to the measured total.
            lu_share = batch_elapsed / len(clean) if clean else 0.0
            cond = None
            for i in clean:
                if cond is None:
                    cond = self._condition_estimate(self._matrix, self._lu)
                diag = SolveDiagnostics(
                    residual=float(rel[i]),
                    escalations=["lu"],
                    escalation_times_s=[lu_share],
                )
                diag.condition_estimate = cond
                solutions[i] = Solution(
                    assembled=self,
                    x=x[:, i],
                    isource_current=resolved[i][0],
                    vsource_voltage=resolved[i][1],
                    diagnostics=diag,
                )
                pending.remove(i)
            if clean:
                get_tracer().record(
                    "rung", batch_elapsed, rung="lu", count=len(clean)
                )

        # 2. Failing columns climb the per-point escalation ladder
        # (sharing this assembly's cached pruned system and LUs).
        for i in pending:
            current, voltage = resolved[i]
            x_i, diag, effective = self._solve_resilient(current, voltage)
            solutions[i] = Solution(
                assembled=self,
                x=x_i,
                isource_current=effective,
                vsource_voltage=voltage,
                diagnostics=diag,
            )
        return solutions

    def _solve_strict(self, z: np.ndarray) -> np.ndarray:
        """The historical fail-fast path: SuperLU or a typed error."""
        tracer = get_tracer()
        t0 = time.perf_counter() if tracer.enabled else 0.0
        if self._lu is None:
            try:
                self._lu = splu(self._matrix)
            except RuntimeError as exc:  # SuperLU signals exact singularity
                raise SingularCircuitError(
                    f"MNA matrix is singular ({exc}); check for floating nodes"
                ) from exc
        x = self._lu.solve(z)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError("solve produced non-finite voltages")
        if z.ndim == 2:  # multi-RHS: every column must meet the tolerance
            rel = float(self._batch_residuals(self._matrix, x, z).max())
        else:
            rel = self._relative_residual(self._matrix, x, z)
        if rel > self.RESIDUAL_TOLERANCE:
            raise SingularCircuitError(
                f"solve residual {rel:.2e} exceeds tolerance; "
                "the circuit is ill-conditioned or disconnected"
            )
        if tracer.enabled:
            # Strict solves count as a clean "lu" rung in the engine's
            # escalation tally; record the matching span so trace and
            # BENCH attribute the ladder identically.
            tracer.record(
                "rung",
                time.perf_counter() - t0,
                rung="lu",
                count=int(z.shape[1]) if z.ndim == 2 else 1,
            )
        return x

    def _solve_resilient(self, current: np.ndarray, voltage: np.ndarray):
        """Climb the escalation ladder until a solve meets tolerance.

        Thin timing wrapper around :meth:`_solve_resilient_impl`: it
        owns the per-rung :class:`_RungTimer`, stamps
        ``escalation_times_s`` on the diagnostics (also on the
        diagnostics carried by a raised error), and emits one "rung"
        trace span per ladder rung climbed.
        """
        timer = _RungTimer()
        try:
            x, diag, effective = self._solve_resilient_impl(
                current, voltage, timer
            )
        except (ConvergenceError, SingularCircuitError) as exc:
            timer.finish(getattr(exc, "diagnostics", None))
            raise
        timer.finish(diag)
        return x, diag, effective

    def _solve_resilient_impl(
        self, current: np.ndarray, voltage: np.ndarray, timer: _RungTimer
    ):
        """The ladder itself (see :meth:`_solve_resilient`).

        LU -> iterative refinement -> island pruning (LU + refinement)
        -> Jacobi-LGMRES -> dense lstsq.  Refinement rungs are gated on
        the 1-norm condition estimate: a numerically singular system
        has no digits left for refinement to win back, so the ladder
        skips straight to pruning.

        Returns ``(x, diagnostics, effective_isource_current)`` — the
        current vector has shed loads zeroed so downstream power
        bookkeeping matches the pruned network.
        """
        timer.start("lu")
        z = self._rhs(current, voltage)
        ladder = timer.names
        # 1. Plain direct solve on the full system.
        attempt = self._direct_attempt(self._matrix, "_lu", z)
        if attempt is not None:
            x, rel = attempt
            if rel <= self.RESIDUAL_TOLERANCE:
                diag = SolveDiagnostics(residual=rel, escalations=ladder)
                diag.condition_estimate = self._condition_estimate(
                    self._matrix, self._lu
                )
                return x, diag, current
            # 2. Iterative refinement against the existing factorisation.
            cond = self._condition_estimate(self._matrix, self._lu)
            if self._should_refine(cond):
                timer.start("refine")
                x, rel = self._refine_attempt(self._matrix, self._lu, x, z)
                if rel <= self.RESIDUAL_TOLERANCE:
                    diag = SolveDiagnostics(
                        residual=rel, fallback="refined", escalations=ladder
                    )
                    diag.condition_estimate = cond
                    return x, diag, current

        # 3. Ground floating islands, shed their loads, retry direct.
        timer.start("pruned-lu")
        if self._pruned_matrix is None:
            self._diagnostics_template = self._build_pruned_system()
        base = self._diagnostics_template
        diag = SolveDiagnostics(
            n_islands=base.n_islands,
            dropped_nodes=list(base.dropped_nodes),
            shed_loads=base.shed_loads,
            stabilized_rows=base.stabilized_rows,
            escalations=ladder,
        )
        if len(current) and self._shed_isource_mask is not None:
            current = np.where(self._shed_isource_mask, 0.0, current)
        z_pruned = self._rhs(current, voltage)
        z_pruned[self._forced_zero_rows] = 0.0
        attempt = self._direct_attempt(self._pruned_matrix, "_pruned_lu", z_pruned)
        if attempt is not None:
            x, rel = attempt
            if rel <= self.RESIDUAL_TOLERANCE:
                diag.residual = rel
                diag.condition_estimate = self._condition_estimate(
                    self._pruned_matrix, self._pruned_lu
                )
                return x, diag, current
            # 4. Refinement on the pruned system, same conditioning gate.
            cond = self._condition_estimate(self._pruned_matrix, self._pruned_lu)
            diag.condition_estimate = cond
            if self._should_refine(cond):
                timer.start("refine")
                x, rel = self._refine_attempt(
                    self._pruned_matrix, self._pruned_lu, x, z_pruned
                )
                if rel <= self.RESIDUAL_TOLERANCE:
                    diag.residual = rel
                    diag.fallback = "refined"
                    return x, diag, current

        # 5. Jacobi-preconditioned LGMRES on the pruned system.
        timer.start("lgmres")
        iterative_rel = None
        attempt = self._iterative_attempt(self._pruned_matrix, z_pruned, diag)
        if attempt is not None:
            x, rel = attempt
            diag.residual = rel
            if rel <= self.RESIDUAL_TOLERANCE:
                return x, diag, current
            iterative_rel = rel

        # 6. Dense least squares, the ladder's last rung.
        timer.start("lstsq")
        attempt = self._lstsq_attempt(self._pruned_matrix, z_pruned)
        if attempt is not None:
            x, rel = attempt
            if rel <= self.RESIDUAL_TOLERANCE:
                diag.residual = rel
                diag.fallback = "lstsq"
                return x, diag, current

        if iterative_rel is not None:
            raise ConvergenceError(
                f"iterative fallback converged only to residual "
                f"{iterative_rel:.2e} (tolerance "
                f"{self.RESIDUAL_TOLERANCE:.0e}); {diag.summary()}",
                diagnostics=diag,
            )
        raise SingularCircuitError(
            "MNA system is singular even after pruning "
            f"{diag.n_dropped_nodes} floating node(s); {diag.summary()}",
            diagnostics=diag,
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    @property
    def ground_node(self) -> int:
        return self._ground

    @property
    def vsource_offset(self) -> int:
        return self._n_nodes - 1

    @property
    def converter_offset(self) -> int:
        return self._n_nodes - 1 + self._nv
