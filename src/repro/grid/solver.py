"""MNA assembly, pluggable sparse factorisation, and the resilient solve path.

:class:`AssembledCircuit` freezes a :class:`repro.grid.netlist.Circuit`
topology into a sparse MNA matrix, factorises it once through a
:class:`repro.grid.backends.SolverBackend` (``lu`` — SuperLU via
``scipy.sparse.linalg.splu`` — by default) and then solves for any set
of source values.  Because independent sources only enter the
right-hand side, parameter sweeps over load currents — the inner loop
of every experiment in the paper — reuse the factorisation and cost
only a triangular solve.

The canonical entry point is ``solve(request)`` with a
:class:`SolveRequest` (one operating point or a batch) carrying typed
:class:`SolveOptions` (resilient, refine, backend override).  The
pre-registry keyword forms ``solve(isource_current=...)`` and
``solve_batch(...)`` still work but are deprecated: each warns once per
process through the structured logger.

Fault-injected netlists (see :mod:`repro.faults`) can leave the system
singular: an opened TSV tier floats a whole layer, a dead converter bank
floats an intermediate rail.  ``SolveOptions(resilient=True)`` refuses
to die on such inputs.  Before declaring defeat it

1. detects floating subnetworks with
   ``scipy.sparse.csgraph.connected_components`` over the conduction
   graph, prunes them (their nodes are grounded, their loads shed) and
   records what was dropped in a :class:`SolveDiagnostics`;
2. pins any remaining structurally-empty MNA rows with identity
   stamps (dead source/converter branches);
3. climbs a solver **escalation ladder** on each (full or pruned)
   system: the selected backend's direct solve (a non-``lu`` backend
   that cannot factorise falls back to ``lu`` as its own rung, with a
   one-line structured-log notice), then iterative refinement against
   the existing factorisation (gated on the cached 1-norm condition
   estimate), then a Jacobi-preconditioned LGMRES iteration, and
   finally a dense least-squares solve for small systems.  Every rung
   climbed is recorded in :attr:`SolveDiagnostics.escalations`.

Only when the whole ladder fails does it raise — always a typed
:class:`repro.errors.ReproError` subclass carrying the diagnostics,
never a bare SciPy exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components
from scipy.sparse.linalg import LinearOperator, lgmres

from repro.errors import (
    ConvergenceError,
    FaultInjectionError,
    SingularCircuitError,
)
from repro.grid.backends import (
    Factorization,
    SolverBackend,
    get_backend,
    notice_once,
    resolve_backend,
)
from repro.grid.netlist import CONVERTER, ISOURCE, RESISTOR, VSOURCE, Circuit
from repro.obs.trace import get_tracer
from repro.grid.solution import Solution
from repro.utils.validation import check_finite_array

__all__ = [
    "AssembledCircuit",
    "SolveDiagnostics",
    "SolveOptions",
    "SolveRequest",
    "SingularCircuitError",
    "ConvergenceError",
]


@dataclass(frozen=True)
class SolveOptions:
    """Typed knobs of a solve, independent of the operating point.

    ``resilient``
        Climb the escalation ladder instead of failing fast on a
        singular or ill-conditioned system.
    ``refine``
        Allow the iterative-refinement rungs (meaningless for backends
        whose factorisations set ``supports_refine = False``).
    ``backend``
        Per-request override of the assembly's solver backend, by
        registry name (see :mod:`repro.grid.backends`).  ``None`` uses
        the backend the circuit was assembled with.
    """

    resilient: bool = False
    refine: bool = True
    backend: Optional[str] = None


@dataclass(eq=False)
class SolveRequest:
    """One solve: a single operating point or a batch of them.

    Exactly one of the single-point form (``isource_current`` /
    ``vsource_voltage`` overrides, both optional) or the batched form
    (``isource_currents``: a sequence of per-point load-current
    overrides, ``None`` entries meaning stored values) may be used.
    ``AssembledCircuit.solve`` returns a single
    :class:`~repro.grid.solution.Solution` for the former and a list
    for the latter.
    """

    isource_current: Optional[np.ndarray] = None
    vsource_voltage: Optional[np.ndarray] = None
    isource_currents: Optional[Sequence[Optional[np.ndarray]]] = None
    options: SolveOptions = field(default_factory=SolveOptions)

    def __post_init__(self):
        if self.isource_current is not None and self.isource_currents is not None:
            raise ValueError(
                "SolveRequest takes isource_current (single point) or "
                "isource_currents (batch), not both"
            )

    @property
    def batched(self) -> bool:
        return self.isource_currents is not None


#: Deprecated entry points that already warned this process.
_DEPRECATION_WARNED: set = set()


def _warn_deprecated(entry: str) -> None:
    """One structured-log deprecation warning per entry point per process."""
    if entry in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(entry)
    from repro.obs.logs import get_logger

    get_logger(__name__).warning(
        f"{entry} is deprecated; pass a SolveRequest to "
        "AssembledCircuit.solve() instead",
        extra={"deprecated": entry},
    )


@dataclass
class SolveDiagnostics:
    """Structured record of what the resilient solve path had to do.

    A clean direct solve leaves every count at zero and ``fallback`` at
    ``"none"``; anything else means the circuit was degraded and the
    returned operating point describes the *pruned* network.
    """

    #: Floating subnetworks detected (connected components without ground).
    n_islands: int = 0
    #: Node ids grounded away with their islands.
    dropped_nodes: List[int] = field(default_factory=list)
    #: Current sources disconnected because they fed a floating island.
    shed_loads: int = 0
    #: Structurally-empty MNA rows pinned with an identity stamp.
    stabilized_rows: int = 0
    #: Solver that produced the answer: "none" (direct solves, pruned or
    #: not), "refined" (iterative refinement), "iterative" (the
    #: Jacobi-LGMRES fallback) or "lstsq" (dense least squares).
    fallback: str = "none"
    #: Escalation-ladder rungs visited, in order.  The first rung is the
    #: selected backend's direct solve (named after the backend, so
    #: plain "lu" by default); a non-``lu`` backend that cannot
    #: factorise inserts an in-rung "lu" fallback; then "refine",
    #: "pruned-<backend>", "lgmres", "lstsq".  A clean default solve is
    #: just ["lu"].
    escalations: List[str] = field(default_factory=list)
    #: Wall time spent on each rung, parallel to ``escalations``, so
    #: ladder cost is attributable per rung (batched clean columns get
    #: an equal share of their batch's direct-solve time).
    escalation_times_s: List[float] = field(default_factory=list)
    #: Iteration count of the fallback solver (0 for direct solves).
    iterations: int = 0
    #: Relative residual of the accepted solution.
    residual: float = 0.0
    #: One-norm condition estimate of the (possibly pruned) MNA matrix,
    #: when a factorisation was available to compute it.  Cached on the
    #: factorisation object, so repeated solves against one
    #: factorisation estimate it once.
    condition_estimate: Optional[float] = None
    #: Registry name of the solver backend this solve ran under.
    backend: str = "lu"
    #: ``repro.contracts.ContractReport`` of the physics-contract checks
    #: run against the result built from this solve, when checking is
    #: enabled (attached by the PDN layer, not the raw solver).
    contracts: Optional[object] = None

    @property
    def n_dropped_nodes(self) -> int:
        return len(self.dropped_nodes)

    @property
    def degraded(self) -> bool:
        """True when the solution describes a pruned or fallback solve."""
        return bool(
            self.n_islands
            or self.stabilized_rows
            or self.shed_loads
            or self.fallback != "none"
        )

    def summary(self) -> str:
        if not self.degraded:
            return f"clean solve (residual {self.residual:.1e})"
        return (
            f"degraded solve: {self.n_islands} island(s), "
            f"{self.n_dropped_nodes} node(s) grounded, "
            f"{self.shed_loads} load(s) shed, "
            f"{self.stabilized_rows} row(s) pinned, "
            f"fallback={self.fallback}, residual {self.residual:.1e}"
        )


class _RungTimer:
    """Tracks the escalation ladder: rung names plus per-rung wall time.

    The impl calls :meth:`start` at each rung transition; the public
    wrapper calls :meth:`finish` exactly once (on return *or* on raise)
    to close the last rung, stamp the diagnostics, and emit one trace
    span per rung so ladder cost shows up in ``repro trace``.
    """

    __slots__ = ("names", "times", "_t")

    def __init__(self):
        self.names: List[str] = []
        self.times: List[float] = []
        self._t: Optional[float] = None

    def start(self, name: str) -> None:
        self._close()
        self.names.append(name)
        self._t = time.perf_counter()

    def _close(self) -> None:
        if self._t is not None:
            self.times.append(time.perf_counter() - self._t)
            self._t = None

    def finish(self, diag: Optional[SolveDiagnostics]) -> None:
        self._close()
        if diag is not None:
            diag.escalation_times_s = list(self.times)
        tracer = get_tracer()
        if tracer.enabled:
            for name, elapsed in zip(self.names, self.times):
                tracer.record("rung", elapsed, rung=name)


#: Cache sentinel: this backend already failed to factorise this matrix.
_FACT_FAILED = object()


class AssembledCircuit:
    """A factorised MNA system ready for repeated right-hand-side solves.

    The unknown vector is laid out as ``[node voltages (ground dropped),
    voltage-source branch currents, converter output currents]``.

    ``backend`` selects the :class:`repro.grid.backends.SolverBackend`
    used for direct factorisations (name, backend object, or ``None``
    for the process default — ``--solver`` / ``REPRO_SOLVER`` / "lu").
    Factorisations are cached per (backend, full-or-pruned matrix), so
    a per-request backend override pays its factorisation once.
    """

    #: Relative residual above which a solve is reported as singular.
    RESIDUAL_TOLERANCE = 1e-6
    #: Iteration budget for the Jacobi-LGMRES fallback.
    MAX_FALLBACK_ITERATIONS = 2000
    #: Iterative-refinement passes against an existing factorisation.
    MAX_REFINEMENT_PASSES = 3
    #: Refinement is skipped when the 1-norm condition estimate exceeds
    #: this (refinement cannot recover digits that no longer exist).
    REFINE_CONDITION_LIMIT = 1e14
    #: Dense least-squares last resort is only attempted below this
    #: dimension (it materialises the full matrix).
    LSTSQ_MAX_DIMENSION = 3000

    def __init__(
        self,
        circuit: Circuit,
        backend: Union[None, str, SolverBackend] = None,
    ):
        if circuit.ground is None:
            raise ValueError("circuit has no ground: call Circuit.set_ground() first")
        if circuit.count(RESISTOR) == 0 and circuit.count(VSOURCE) == 0:
            raise ValueError("circuit has no conducting elements")
        self.circuit = circuit
        self.backend = resolve_backend(backend)
        self._revision = circuit.revision
        self._ground = circuit.ground
        self._n_nodes = circuit.node_count
        self._nv = circuit.count(VSOURCE)
        self._nc = circuit.count(CONVERTER)
        self.dimension = (self._n_nodes - 1) + self._nv + self._nc
        with get_tracer().span("assemble") as span:
            self._stamps = self._collect_stamps()
            self._matrix = coo_matrix(
                (self._stamps[2], (self._stamps[0], self._stamps[1])),
                shape=(self.dimension, self.dimension),
            ).tocsc()
            span.set(dimension=self.dimension, nnz=int(self._matrix.nnz))
        #: Factorisation cache: (backend name, "full"|"pruned") ->
        #: Factorization | _FACT_FAILED.  Pruned entries are dropped
        #: whenever the pruned system is rebuilt.
        self._facts: dict = {}
        self._fact_errors: dict = {}
        #: Matrix rows zeroed by pruning/pinning; their RHS entries are
        #: forced to zero.  Empty until the resilient path prunes.
        self._forced_zero_rows: np.ndarray = np.empty(0, dtype=int)
        self._pruned_matrix = None
        self._diagnostics_template: Optional[SolveDiagnostics] = None
        self._island_node_mask: Optional[np.ndarray] = None
        self._shed_isource_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _row_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Map node ids to matrix rows; the ground node maps to -1."""
        rows = np.where(node_ids < self._ground, node_ids, node_ids - 1)
        rows = np.where(node_ids == self._ground, -1, rows)
        return rows

    def _collect_stamps(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw COO stamps of the MNA matrix, honouring element activity."""
        circuit = self.circuit
        rows_parts = []
        cols_parts = []
        vals_parts = []

        def stamp(rows, cols, vals):
            rows = np.asarray(rows)
            cols = np.asarray(cols)
            vals = np.asarray(vals, dtype=float)
            keep = (rows >= 0) & (cols >= 0)
            rows_parts.append(rows[keep])
            cols_parts.append(cols[keep])
            vals_parts.append(vals[keep])

        # --- resistors -------------------------------------------------
        res = circuit.store(RESISTOR)
        if len(res):
            act = res.active
            n1 = self._row_of(res.column("n1")[act])
            n2 = self._row_of(res.column("n2")[act])
            g = 1.0 / res.column("resistance")[act]
            stamp(n1, n1, g)
            stamp(n2, n2, g)
            stamp(n1, n2, -g)
            stamp(n2, n1, -g)

        nv_offset = self._n_nodes - 1
        nc_offset = nv_offset + self._nv

        # --- voltage sources --------------------------------------------
        vsrc = circuit.store(VSOURCE)
        if len(vsrc):
            act = vsrc.active
            pos = self._row_of(vsrc.column("pos"))
            neg = self._row_of(vsrc.column("neg"))
            k = nv_offset + np.arange(self._nv)
            ones = np.ones(self._nv)
            # Live sources get the usual coupling + constraint stamps;
            # failed-open sources keep only an identity row pinning their
            # branch current to the (zeroed) RHS entry.
            stamp(pos[act], k[act], ones[act])
            stamp(neg[act], k[act], -ones[act])
            stamp(k[act], pos[act], ones[act])
            stamp(k[act], neg[act], -ones[act])
            dead = ~act
            if dead.any():
                stamp(k[dead], k[dead], ones[dead])

        # --- SC converters ------------------------------------------------
        conv = circuit.store(CONVERTER)
        if len(conv):
            act = conv.active
            top = self._row_of(conv.column("top"))
            bottom = self._row_of(conv.column("bottom"))
            mid = self._row_of(conv.column("mid"))
            rser = conv.column("r_series")
            k = nc_offset + np.arange(self._nc)
            half = np.full(self._nc, 0.5)
            ones = np.ones(self._nc)
            # KCL: output current j enters mid; j/2 is drawn from each rail.
            stamp(top[act], k[act], half[act])
            stamp(bottom[act], k[act], half[act])
            stamp(mid[act], k[act], -ones[act])
            # Constraint: v_mid - (v_top + v_bottom)/2 + j * r_series = 0.
            stamp(k[act], mid[act], ones[act])
            stamp(k[act], top[act], -half[act])
            stamp(k[act], bottom[act], -half[act])
            stamp(k[act], k[act], rser[act])
            dead = ~act
            if dead.any():  # pin the dead converters' output current to 0
                stamp(k[dead], k[dead], ones[dead])

        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=int)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=int)
        vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
        return rows, cols, vals

    # ------------------------------------------------------------------
    def _resolve_sources(
        self,
        isource_current: Optional[np.ndarray],
        vsource_voltage: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate the source value vectors (overrides or stored).

        Failed-open sources are zeroed; non-finite overrides are rejected
        with a ``ValueError`` naming the offending element index.
        """
        circuit = self.circuit
        isrc = circuit.store(ISOURCE)
        if isource_current is None:
            current = isrc.column("current")
        else:
            current = check_finite_array("isource_current", isource_current)
        if len(current) != len(isrc):
            raise ValueError(
                f"isource_current must have length {len(isrc)}, got {len(current)}"
            )
        if len(isrc):
            current = np.where(isrc.active, current, 0.0)

        vsrc = circuit.store(VSOURCE)
        if vsource_voltage is None:
            voltage = vsrc.column("voltage")
        else:
            voltage = check_finite_array("vsource_voltage", vsource_voltage)
        if len(voltage) != len(vsrc):
            raise ValueError(
                f"vsource_voltage must have length {len(vsrc)}, got {len(voltage)}"
            )
        if len(vsrc):
            voltage = np.where(vsrc.active, voltage, 0.0)
        return current, voltage

    def _rhs(self, current: np.ndarray, voltage: np.ndarray) -> np.ndarray:
        """Assemble the RHS from resolved source value vectors."""
        circuit = self.circuit
        z = np.zeros(self.dimension)
        isrc = circuit.store(ISOURCE)
        if len(isrc):
            src = self._row_of(isrc.column("src"))
            dst = self._row_of(isrc.column("dst"))
            np.add.at(z, src[src >= 0], -current[src >= 0])
            np.add.at(z, dst[dst >= 0], current[dst >= 0])
        if len(circuit.store(VSOURCE)):
            z[self._n_nodes - 1 : self._n_nodes - 1 + self._nv] = voltage
        return z

    # ------------------------------------------------------------------
    # island analysis and pruning
    # ------------------------------------------------------------------
    def _conduction_graph(self):
        """Sparse node-adjacency graph of every *active* conducting path."""
        circuit = self.circuit
        edges_u = []
        edges_v = []

        res = circuit.store(RESISTOR)
        if len(res):
            act = res.active
            edges_u.append(res.column("n1")[act])
            edges_v.append(res.column("n2")[act])

        vsrc = circuit.store(VSOURCE)
        if len(vsrc):
            act = vsrc.active
            edges_u.append(vsrc.column("pos")[act])
            edges_v.append(vsrc.column("neg")[act])

        conv = circuit.store(CONVERTER)
        if len(conv):
            act = conv.active
            for a, b in (("top", "mid"), ("bottom", "mid"), ("top", "bottom")):
                edges_u.append(conv.column(a)[act])
                edges_v.append(conv.column(b)[act])

        n = self._n_nodes
        if not edges_u:
            return coo_matrix((n, n))
        u = np.concatenate(edges_u)
        v = np.concatenate(edges_v)
        return coo_matrix((np.ones(len(u)), (u, v)), shape=(n, n))

    def find_islands(self) -> Tuple[int, np.ndarray]:
        """Detect floating subnetworks.

        Returns ``(n_islands, island_node_mask)`` where the mask is a
        boolean per-node array, True for every node not connected to
        ground through any conducting element.
        """
        graph = self._conduction_graph()
        n_components, labels = connected_components(graph, directed=False)
        ground_label = labels[self._ground]
        island_mask = labels != ground_label
        island_labels = np.unique(labels[island_mask])
        return len(island_labels), island_mask

    def _build_pruned_system(self) -> SolveDiagnostics:
        """Ground floating islands and pin empty rows; cache the result."""
        diag = SolveDiagnostics()
        n_islands, island_mask = self.find_islands()
        diag.n_islands = n_islands
        diag.dropped_nodes = [int(i) for i in np.flatnonzero(island_mask)]

        # A load with either terminal in an island is fully disconnected:
        # zeroing only the island side would leave it pumping current into
        # the live network with no return path.
        isrc = self.circuit.store(ISOURCE)
        self._shed_isource_mask = np.zeros(len(isrc), dtype=bool)
        if len(isrc) and island_mask.any():
            act = isrc.active
            src_in = island_mask[isrc.column("src")]
            dst_in = island_mask[isrc.column("dst")]
            self._shed_isource_mask = act & (src_in | dst_in)
            diag.shed_loads = int(np.sum(self._shed_isource_mask))

        rows, cols, vals = self._stamps
        pruned_row_ids = self._row_of(np.flatnonzero(island_mask))
        pruned_row_ids = pruned_row_ids[pruned_row_ids >= 0]
        pruned_set = np.zeros(self.dimension, dtype=bool)
        pruned_set[pruned_row_ids] = True

        keep = ~(pruned_set[rows] | pruned_set[cols])
        rows2 = rows[keep]
        cols2 = cols[keep]
        vals2 = vals[keep]

        # Identity stamps ground the pruned node rows.
        if pruned_row_ids.size:
            rows2 = np.concatenate([rows2, pruned_row_ids])
            cols2 = np.concatenate([cols2, pruned_row_ids])
            vals2 = np.concatenate([vals2, np.ones(pruned_row_ids.size)])

        # Any row left with no stamps at all (dead source branches whose
        # terminals were pruned, degenerate topologies) is pinned too.
        occupancy = np.bincount(rows2, minlength=self.dimension)
        empty_rows = np.flatnonzero(occupancy == 0)
        diag.stabilized_rows = int(empty_rows.size)
        if empty_rows.size:
            rows2 = np.concatenate([rows2, empty_rows])
            cols2 = np.concatenate([cols2, empty_rows])
            vals2 = np.concatenate([vals2, np.ones(empty_rows.size)])

        self._forced_zero_rows = np.union1d(pruned_row_ids, empty_rows)
        self._pruned_matrix = coo_matrix(
            (vals2, (rows2, cols2)), shape=(self.dimension, self.dimension)
        ).tocsc()
        # The pruned matrix changed: every cached pruned factorisation
        # (and its cached condition estimate) is stale.
        self._facts = {k: v for k, v in self._facts.items() if k[1] != "pruned"}
        self._fact_errors = {
            k: v for k, v in self._fact_errors.items() if k[1] != "pruned"
        }
        self._island_node_mask = island_mask
        return diag

    # ------------------------------------------------------------------
    # factorisation cache
    # ------------------------------------------------------------------
    def _factorization(
        self, backend: SolverBackend, pruned: bool = False
    ) -> Optional[Factorization]:
        """Cached factorisation of the full or pruned matrix by ``backend``.

        Returns None when the backend cannot factorise that matrix (the
        failure is cached too, so each backend attempts each matrix at
        most once; the triggering exception lands in ``_fact_errors``).
        """
        key = (backend.name, "pruned" if pruned else "full")
        fact = self._facts.get(key)
        if fact is None:
            matrix = self._pruned_matrix if pruned else self._matrix
            try:
                fact = backend.factorize(matrix)
            except (RuntimeError, ValueError) as exc:
                self._fact_errors[key] = exc
                fact = _FACT_FAILED
            self._facts[key] = fact
        return None if fact is _FACT_FAILED else fact

    def _fallback_factorization(
        self,
        backend: SolverBackend,
        pruned: bool = False,
        timer: Optional[_RungTimer] = None,
    ) -> Tuple[Optional[Factorization], str]:
        """The backend's factorisation, or the ``lu`` fallback.

        A non-``lu`` backend that cannot factorise (non-SPD input, say)
        degrades to ``lu`` with a one-line structured-log notice; under
        a resilient timer the fallback is timed as its own ladder rung,
        so a failed cholesky rung escalates exactly like a failed LU
        rung.  Returns ``(factorisation or None, rung name)``.
        """
        prefix = "pruned-" if pruned else ""
        fact = self._factorization(backend, pruned)
        if fact is not None or backend.name == "lu":
            return fact, prefix + backend.name
        exc = self._fact_errors.get((backend.name, "pruned" if pruned else "full"))
        notice_once(
            f"{backend.name}-lu-fallback",
            f"solver backend '{backend.name}' could not factorize this "
            f"system ({exc}); falling back to lu",
            backend=backend.name,
        )
        if timer is not None:
            timer.start(prefix + "lu")
        return self._factorization(get_backend("lu"), pruned), prefix + "lu"

    @property
    def _lu(self) -> Optional[Factorization]:
        """The assembly backend's cached full-matrix factorisation."""
        fact = self._facts.get((self.backend.name, "full"))
        return None if fact in (None, _FACT_FAILED) else fact

    @property
    def _pruned_lu(self) -> Optional[Factorization]:
        fact = self._facts.get((self.backend.name, "pruned"))
        return None if fact in (None, _FACT_FAILED) else fact

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _check_revision(self) -> None:
        if self.circuit.revision != self._revision:
            raise FaultInjectionError(
                "circuit was modified after assembly (fault injection?); "
                "call Circuit.assemble() again to pick up the changes"
            )

    def _relative_residual(self, matrix, x, z) -> float:
        residual = np.linalg.norm(matrix @ x - z)
        scale = max(1.0, float(np.linalg.norm(z)))
        return residual / scale

    def _direct_attempt(
        self,
        backend: SolverBackend,
        z: np.ndarray,
        pruned: bool = False,
        timer: Optional[_RungTimer] = None,
    ):
        """One direct ladder rung: backend solve (with in-rung lu fallback).

        Returns ``(x, relative_residual, factorisation, rung_name)`` or
        None when no direct factorisation produced a finite answer.
        The rung name records which factorisation actually answered
        (e.g. ``"pruned-lu"`` after an in-rung fallback), so the ladder
        can tell whether an explicit lu rung would be redundant.
        """
        matrix = self._pruned_matrix if pruned else self._matrix
        fact, rung = self._fallback_factorization(backend, pruned, timer)
        if fact is None:
            return None
        try:
            x = fact.solve_batch(z) if z.ndim == 2 else fact.solve(z)
        except (RuntimeError, ValueError):
            return None
        if not np.all(np.isfinite(x)):
            return None
        return x, self._relative_residual(matrix, x, z), fact, rung

    def _refine_attempt(self, matrix, fact: Factorization, x, z):
        """Iterative refinement against an existing factorisation.

        Classical residual correction: ``x += fact.solve(z - A x)``
        until the relative residual meets the tolerance or the pass
        budget is spent.  Returns ``(x, relative_residual)`` of the
        best iterate.
        """
        rel = self._relative_residual(matrix, x, z)
        for _ in range(self.MAX_REFINEMENT_PASSES):
            if rel <= self.RESIDUAL_TOLERANCE:
                break
            dx = fact.solve(z - matrix @ x)
            if not np.all(np.isfinite(dx)):
                break
            refined = x + dx
            refined_rel = self._relative_residual(matrix, refined, z)
            if refined_rel >= rel:  # refinement stalled or diverged
                break
            x, rel = refined, refined_rel
        return x, rel

    def _should_refine(self, condition_estimate: Optional[float]) -> bool:
        """Refinement rung gate: conditioning must leave digits to win back."""
        return (
            condition_estimate is None
            or condition_estimate < self.REFINE_CONDITION_LIMIT
        )

    def _lstsq_attempt(self, matrix, z):
        """Dense least-squares last resort for small systems.

        Returns ``(x, relative_residual)`` or None when the system is
        too large to densify or lstsq itself failed.
        """
        if self.dimension > self.LSTSQ_MAX_DIMENSION:
            return None
        try:
            x, *_ = np.linalg.lstsq(matrix.toarray(), z, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(x)):
            return None
        return x, self._relative_residual(matrix, x, z)

    def _iterative_attempt(self, matrix, z, diag: SolveDiagnostics):
        """Jacobi-preconditioned LGMRES fallback for near-singular systems."""
        diagonal = matrix.diagonal()
        inv_diag = np.where(np.abs(diagonal) > 1e-300, 1.0 / diagonal, 1.0)
        preconditioner = LinearOperator(
            matrix.shape, matvec=lambda v: inv_diag * v
        )
        iterations = 0

        def count(_):
            nonlocal iterations
            iterations += 1

        x, info = lgmres(
            matrix,
            z,
            M=preconditioner,
            rtol=self.RESIDUAL_TOLERANCE * 1e-2,
            atol=0.0,
            maxiter=self.MAX_FALLBACK_ITERATIONS,
            callback=count,
        )
        diag.fallback = "iterative"
        diag.iterations = iterations
        if info != 0 or not np.all(np.isfinite(x)):
            return None
        return x, self._relative_residual(matrix, x, z)

    def solve(
        self,
        request: Optional[SolveRequest] = None,
        *,
        isource_current: Optional[np.ndarray] = None,
        vsource_voltage: Optional[np.ndarray] = None,
        resilient: Optional[bool] = None,
    ) -> Union[Solution, List[Solution]]:
        """Solve one operating point or a batch of them.

        The canonical form takes a :class:`SolveRequest`::

            assembled.solve(SolveRequest(
                isource_current=currents,
                options=SolveOptions(resilient=True),
            ))

        and returns one :class:`~repro.grid.solution.Solution` (or a
        list of them for a batched request, in input order).  With
        ``SolveOptions(resilient=True)`` a singular or near-singular
        system is not fatal: floating subnetworks are pruned (grounded,
        their loads shed) and the escalation ladder is climbed before
        raising; the returned Solution then carries a
        :class:`SolveDiagnostics` describing every measure taken.

        The keyword form ``solve(isource_current=..., vsource_voltage=
        ..., resilient=...)`` is **deprecated** (it warns once per
        process via the structured logger) and delegates here; calling
        ``solve()`` with no arguments solves the stored operating point
        and is not deprecated.

        Raises
        ------
        repro.errors.SingularCircuitError
            The system has no unique solution (and, in resilient mode,
            pruning did not make it solvable).
        repro.errors.ConvergenceError
            An iterative solve ran out of iterations.
        repro.errors.FaultInjectionError
            The circuit was mutated after assembly.
        """
        legacy = (
            isource_current is not None
            or vsource_voltage is not None
            or resilient is not None
        )
        if request is not None and not isinstance(request, SolveRequest):
            # Positional legacy form: solve(current_array).
            isource_current, request, legacy = request, None, True
        if legacy:
            if request is not None:
                raise ValueError(
                    "pass either a SolveRequest or the legacy keyword "
                    "arguments, not both"
                )
            _warn_deprecated("AssembledCircuit.solve(isource_current=...)")
            request = SolveRequest(
                isource_current=isource_current,
                vsource_voltage=vsource_voltage,
                options=SolveOptions(resilient=bool(resilient)),
            )
        return self._solve_request(request if request is not None else SolveRequest())

    def solve_batch(
        self,
        isource_currents: Optional[Sequence[Optional[np.ndarray]]] = None,
        vsource_voltage: Optional[np.ndarray] = None,
        resilient: bool = False,
    ) -> List[Solution]:
        """Deprecated wrapper: batched solve against one factorisation.

        Use ``solve(SolveRequest(isource_currents=...))`` instead; this
        form warns once per process via the structured logger and then
        behaves identically (all points share the system matrix, so the
        right-hand sides are stacked into one dense matrix and solved
        in a single multi-RHS triangular solve).
        """
        _warn_deprecated("AssembledCircuit.solve_batch(...)")
        self._check_revision()
        if isource_currents is None:
            raise ValueError("solve_batch needs a sequence of operating points")
        return self._solve_request(
            SolveRequest(
                isource_currents=isource_currents,
                vsource_voltage=vsource_voltage,
                options=SolveOptions(resilient=resilient),
            )
        )

    def _solve_request(self, request: SolveRequest):
        """Canonical solve: every public entry point lands here."""
        self._check_revision()
        options = request.options
        backend = (
            resolve_backend(options.backend)
            if options.backend is not None
            else self.backend
        )
        if request.batched:
            resolved = [
                self._resolve_sources(currents, request.vsource_voltage)
                for currents in request.isource_currents
            ]
            if not resolved:
                return []
            if options.resilient:
                return self._solve_resilient_batch(resolved, backend, options)
            z = np.column_stack([self._rhs(c, v) for c, v in resolved])
            x = self._solve_strict(z, backend)
            return [
                Solution(
                    assembled=self,
                    x=x[:, i],
                    isource_current=resolved[i][0],
                    vsource_voltage=resolved[i][1],
                )
                for i in range(len(resolved))
            ]
        current, voltage = self._resolve_sources(
            request.isource_current, request.vsource_voltage
        )
        if options.resilient:
            x, diag, current = self._solve_resilient(
                current, voltage, backend, options
            )
        else:
            x = self._solve_strict(self._rhs(current, voltage), backend)
            diag = None
        return Solution(
            assembled=self,
            x=x,
            isource_current=current,
            vsource_voltage=voltage,
            diagnostics=diag,
        )

    def factorize(self, backend: Union[None, str, SolverBackend] = None) -> bool:
        """Eagerly factorise the full MNA matrix.

        Normally the factorisation happens lazily inside the first
        :meth:`solve`; the sweep engine calls this explicitly so build,
        factorise and solve time can be attributed to separate stages.
        A non-``lu`` backend that cannot factorise warms its ``lu``
        fallback here too, so the degraded path is also paid in the
        factorise stage.  Returns False (instead of raising) when no
        direct factorisation is obtainable, leaving the resilient path
        to deal with it later.
        """
        chosen = self.backend if backend is None else resolve_backend(backend)
        fact, _ = self._fallback_factorization(chosen)
        return fact is not None

    def _batch_residuals(self, matrix, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Per-column relative residuals of a multi-RHS solve."""
        residual = np.linalg.norm(matrix @ x - z, axis=0)
        scale = np.maximum(1.0, np.linalg.norm(z, axis=0))
        return residual / scale

    def _solve_resilient_batch(
        self, resolved, backend: SolverBackend, options: SolveOptions
    ) -> List[Solution]:
        """Batched mirror of :meth:`_solve_resilient`.

        Columns whose full-system direct solve meets the residual
        tolerance keep the un-pruned multi-RHS answer (clean
        diagnostics); every failing column then climbs the full
        per-point escalation ladder — refinement, pruning, LGMRES,
        lstsq — exactly as :meth:`solve` would, so results match the
        point-by-point path bit for bit.
        """
        k = len(resolved)
        z = np.column_stack([self._rhs(c, v) for c, v in resolved])
        solutions: List[Optional[Solution]] = [None] * k
        pending = list(range(k))

        # 1. Plain direct multi-RHS solve on the full system.
        fact, rung = self._fallback_factorization(backend)
        if fact is not None:
            t0 = time.perf_counter()
            try:
                x = fact.solve_batch(z)
            except (RuntimeError, ValueError):
                x = None
            if x is not None:
                finite = np.all(np.isfinite(x), axis=0)
                rel = self._batch_residuals(self._matrix, x, z)
                batch_elapsed = time.perf_counter() - t0
                clean = [
                    i
                    for i in pending
                    if finite[i] and rel[i] <= self.RESIDUAL_TOLERANCE
                ]
                # Clean columns share the batch's direct-solve wall
                # equally; exact per-column cost of one multi-RHS
                # triangular solve is not separable, and the shares sum
                # to the measured total.
                lu_share = batch_elapsed / len(clean) if clean else 0.0
                for i in clean:
                    diag = SolveDiagnostics(
                        residual=float(rel[i]),
                        escalations=[rung],
                        escalation_times_s=[lu_share],
                        backend=backend.name,
                    )
                    diag.condition_estimate = fact.condition_estimate()
                    solutions[i] = Solution(
                        assembled=self,
                        x=x[:, i],
                        isource_current=resolved[i][0],
                        vsource_voltage=resolved[i][1],
                        diagnostics=diag,
                    )
                    pending.remove(i)
                if clean:
                    get_tracer().record(
                        "rung", batch_elapsed, rung=rung, count=len(clean)
                    )

        # 2. Failing columns climb the per-point escalation ladder
        # (sharing this assembly's cached pruned system and
        # factorisations).
        for i in pending:
            current, voltage = resolved[i]
            x_i, diag, effective = self._solve_resilient(
                current, voltage, backend, options
            )
            solutions[i] = Solution(
                assembled=self,
                x=x_i,
                isource_current=effective,
                vsource_voltage=voltage,
                diagnostics=diag,
            )
        return solutions

    def _solve_strict(
        self, z: np.ndarray, backend: Optional[SolverBackend] = None
    ) -> np.ndarray:
        """The historical fail-fast path: one direct solve or a typed error."""
        backend = self.backend if backend is None else backend
        tracer = get_tracer()
        t0 = time.perf_counter() if tracer.enabled else 0.0
        fact, rung = self._fallback_factorization(backend)
        if fact is None:
            exc = self._fact_errors.get(("lu", "full")) or self._fact_errors.get(
                (backend.name, "full")
            )
            raise SingularCircuitError(
                f"MNA matrix is singular ({exc}); check for floating nodes"
            ) from exc
        x = fact.solve_batch(z) if z.ndim == 2 else fact.solve(z)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError("solve produced non-finite voltages")
        if z.ndim == 2:  # multi-RHS: every column must meet the tolerance
            rel = float(self._batch_residuals(self._matrix, x, z).max())
        else:
            rel = self._relative_residual(self._matrix, x, z)
        if rel > self.RESIDUAL_TOLERANCE:
            raise SingularCircuitError(
                f"solve residual {rel:.2e} exceeds tolerance; "
                "the circuit is ill-conditioned or disconnected"
            )
        if tracer.enabled:
            # Strict solves count as a clean direct rung in the engine's
            # escalation tally; record the matching span so trace and
            # BENCH attribute the ladder identically.
            tracer.record(
                "rung",
                time.perf_counter() - t0,
                rung=rung,
                count=int(z.shape[1]) if z.ndim == 2 else 1,
            )
        return x

    def _solve_resilient(
        self,
        current: np.ndarray,
        voltage: np.ndarray,
        backend: Optional[SolverBackend] = None,
        options: Optional[SolveOptions] = None,
    ):
        """Climb the escalation ladder until a solve meets tolerance.

        Thin timing wrapper around :meth:`_solve_resilient_impl`: it
        owns the per-rung :class:`_RungTimer`, stamps
        ``escalation_times_s`` on the diagnostics (also on the
        diagnostics carried by a raised error), and emits one "rung"
        trace span per ladder rung climbed.
        """
        backend = self.backend if backend is None else backend
        options = SolveOptions(resilient=True) if options is None else options
        timer = _RungTimer()
        try:
            x, diag, effective = self._solve_resilient_impl(
                current, voltage, timer, backend, options
            )
        except (ConvergenceError, SingularCircuitError) as exc:
            timer.finish(getattr(exc, "diagnostics", None))
            raise
        timer.finish(diag)
        return x, diag, effective

    def _solve_resilient_impl(
        self,
        current: np.ndarray,
        voltage: np.ndarray,
        timer: _RungTimer,
        backend: SolverBackend,
        options: SolveOptions,
    ):
        """The ladder itself (see :meth:`_solve_resilient`).

        Backend direct solve (with in-rung lu fallback) -> iterative
        refinement -> plain lu (non-default backends whose own solve
        failed or missed tolerance) -> island pruning (direct +
        refinement, with the same lu escalation) -> Jacobi-LGMRES ->
        dense lstsq.  Refinement rungs are gated on the factorisation's
        cached 1-norm condition estimate: a numerically singular system
        has no digits left for refinement to win back, so the ladder
        skips straight to pruning.  The explicit lu rungs guarantee a
        non-default backend is never *worse* than lu under resilience:
        a solve-time failure (e.g. LGMRES stalling on a large
        saddle-point system) escalates to the direct factorisation
        before any structural surgery; they are skipped when the rung
        above already answered from lu's factorisation (in-rung
        factorize-time fallback).

        Returns ``(x, diagnostics, effective_isource_current)`` — the
        current vector has shed loads zeroed so downstream power
        bookkeeping matches the pruned network.
        """
        timer.start(backend.name)
        z = self._rhs(current, voltage)
        ladder = timer.names
        # 1. Plain direct solve on the full system.
        attempt = self._direct_attempt(backend, z, pruned=False, timer=timer)
        if attempt is not None:
            x, rel, fact, _ = attempt
            if rel <= self.RESIDUAL_TOLERANCE:
                diag = SolveDiagnostics(
                    residual=rel, escalations=ladder, backend=backend.name
                )
                diag.condition_estimate = fact.condition_estimate()
                return x, diag, current
            # 2. Iterative refinement against the existing factorisation.
            cond = fact.condition_estimate()
            if (
                options.refine
                and fact.supports_refine
                and self._should_refine(cond)
            ):
                timer.start("refine")
                x, rel = self._refine_attempt(self._matrix, fact, x, z)
                if rel <= self.RESIDUAL_TOLERANCE:
                    diag = SolveDiagnostics(
                        residual=rel,
                        fallback="refined",
                        escalations=ladder,
                        backend=backend.name,
                    )
                    diag.condition_estimate = cond
                    return x, diag, current

        # 2b. A non-default backend that failed at *solve* time (its
        # factorize-time failures already degraded to lu in-rung above)
        # escalates to the plain lu factorisation of the same full
        # system before any structural surgery.
        if backend.name != "lu" and (attempt is None or attempt[3] != "lu"):
            timer.start("lu")
            attempt = self._direct_attempt(get_backend("lu"), z, pruned=False)
            if attempt is not None:
                x, rel, fact, _ = attempt
                if rel <= self.RESIDUAL_TOLERANCE:
                    diag = SolveDiagnostics(
                        residual=rel, escalations=ladder, backend=backend.name
                    )
                    diag.condition_estimate = fact.condition_estimate()
                    return x, diag, current
                cond = fact.condition_estimate()
                if (
                    options.refine
                    and fact.supports_refine
                    and self._should_refine(cond)
                ):
                    timer.start("refine")
                    x, rel = self._refine_attempt(self._matrix, fact, x, z)
                    if rel <= self.RESIDUAL_TOLERANCE:
                        diag = SolveDiagnostics(
                            residual=rel,
                            fallback="refined",
                            escalations=ladder,
                            backend=backend.name,
                        )
                        diag.condition_estimate = cond
                        return x, diag, current

        # 3. Ground floating islands, shed their loads, retry direct.
        timer.start(f"pruned-{backend.name}")
        if self._pruned_matrix is None:
            self._diagnostics_template = self._build_pruned_system()
        base = self._diagnostics_template
        diag = SolveDiagnostics(
            n_islands=base.n_islands,
            dropped_nodes=list(base.dropped_nodes),
            shed_loads=base.shed_loads,
            stabilized_rows=base.stabilized_rows,
            escalations=ladder,
            backend=backend.name,
        )
        if len(current) and self._shed_isource_mask is not None:
            current = np.where(self._shed_isource_mask, 0.0, current)
        z_pruned = self._rhs(current, voltage)
        z_pruned[self._forced_zero_rows] = 0.0
        attempt = self._direct_attempt(backend, z_pruned, pruned=True, timer=timer)
        if attempt is not None:
            x, rel, fact, _ = attempt
            if rel <= self.RESIDUAL_TOLERANCE:
                diag.residual = rel
                diag.condition_estimate = fact.condition_estimate()
                return x, diag, current
            # 4. Refinement on the pruned system, same conditioning gate.
            cond = fact.condition_estimate()
            diag.condition_estimate = cond
            if (
                options.refine
                and fact.supports_refine
                and self._should_refine(cond)
            ):
                timer.start("refine")
                x, rel = self._refine_attempt(
                    self._pruned_matrix, fact, x, z_pruned
                )
                if rel <= self.RESIDUAL_TOLERANCE:
                    diag.residual = rel
                    diag.fallback = "refined"
                    return x, diag, current

        # 4b. Same lu escalation on the pruned system (see 2b).
        if backend.name != "lu" and (
            attempt is None or attempt[3] != "pruned-lu"
        ):
            timer.start("pruned-lu")
            attempt = self._direct_attempt(
                get_backend("lu"), z_pruned, pruned=True
            )
            if attempt is not None:
                x, rel, fact, _ = attempt
                if rel <= self.RESIDUAL_TOLERANCE:
                    diag.residual = rel
                    diag.condition_estimate = fact.condition_estimate()
                    return x, diag, current
                cond = fact.condition_estimate()
                diag.condition_estimate = cond
                if (
                    options.refine
                    and fact.supports_refine
                    and self._should_refine(cond)
                ):
                    timer.start("refine")
                    x, rel = self._refine_attempt(
                        self._pruned_matrix, fact, x, z_pruned
                    )
                    if rel <= self.RESIDUAL_TOLERANCE:
                        diag.residual = rel
                        diag.fallback = "refined"
                        return x, diag, current

        # 5. Jacobi-preconditioned LGMRES on the pruned system.
        timer.start("lgmres")
        iterative_rel = None
        attempt = self._iterative_attempt(self._pruned_matrix, z_pruned, diag)
        if attempt is not None:
            x, rel = attempt
            diag.residual = rel
            if rel <= self.RESIDUAL_TOLERANCE:
                return x, diag, current
            iterative_rel = rel

        # 6. Dense least squares, the ladder's last rung.
        timer.start("lstsq")
        attempt = self._lstsq_attempt(self._pruned_matrix, z_pruned)
        if attempt is not None:
            x, rel = attempt
            if rel <= self.RESIDUAL_TOLERANCE:
                diag.residual = rel
                diag.fallback = "lstsq"
                return x, diag, current

        if iterative_rel is not None:
            raise ConvergenceError(
                f"iterative fallback converged only to residual "
                f"{iterative_rel:.2e} (tolerance "
                f"{self.RESIDUAL_TOLERANCE:.0e}); {diag.summary()}",
                diagnostics=diag,
            )
        raise SingularCircuitError(
            "MNA system is singular even after pruning "
            f"{diag.n_dropped_nodes} floating node(s); {diag.summary()}",
            diagnostics=diag,
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    @property
    def ground_node(self) -> int:
        return self._ground

    @property
    def vsource_offset(self) -> int:
        return self._n_nodes - 1

    @property
    def converter_offset(self) -> int:
        return self._n_nodes - 1 + self._nv
