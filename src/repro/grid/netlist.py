"""Netlist construction for the MNA engine.

A :class:`Circuit` is a bag of nodes (arbitrary hashable keys) and four
element kinds:

* resistors,
* independent voltage sources (also used as 0-V ammeters/shorts),
* independent current sources (the constant-current load model VoltSpot
  uses for switching logic),
* 2:1 switched-capacitor converters — an ideal transformer whose output
  node is regulated to the mean of its top/bottom rails through a series
  resistance (paper Fig. 2).

Elements can be added one at a time or in vectorised batches; both paths
store into the same columnar arrays, so a million-edge power grid builds
in milliseconds.  Element *tags* group related branches ("c4.vdd",
"tsv.tier3", ...) for per-array current extraction, which is what the EM
lifetime analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.utils.validation import check_finite_array

NodeKey = Hashable

RESISTOR = "resistor"
VSOURCE = "vsource"
ISOURCE = "isource"
CONVERTER = "converter"

_KINDS = (RESISTOR, VSOURCE, ISOURCE, CONVERTER)


@dataclass(frozen=True)
class ElementRef:
    """Handle to a contiguous run of elements of one kind.

    ``indices`` addresses rows of the circuit's columnar storage for
    ``kind``; a single-element add returns a run of length one.
    """

    kind: str
    start: int
    count: int

    @property
    def indices(self) -> np.ndarray:
        return np.arange(self.start, self.start + self.count)


class _Columnar:
    """Columnar storage for one element kind (append-only).

    Columns whose name refers to a node ("n1", "pos", "src", "top", ...)
    hold integer node ids; the rest hold float element values.
    """

    _NODE_COLUMNS = frozenset(
        {"n1", "n2", "pos", "neg", "src", "dst", "top", "bottom", "mid"}
    )

    def __init__(self, columns: Sequence[str]):
        self._columns = tuple(columns)
        self._chunks: Dict[str, List[np.ndarray]] = {c: [] for c in columns}
        self._tags: List[str] = []
        self._tag_runs: List[tuple] = []  # (tag, start, count)
        self._size = 0
        self._inactive: Set[int] = set()
        self._active_cache: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._size

    def _dtype(self, name: str):
        return int if name in self._NODE_COLUMNS else float

    def append(self, tag: str, **values: np.ndarray) -> tuple:
        lengths = {len(np.atleast_1d(v)) for v in values.values()}
        if len(lengths) != 1:
            raise ValueError(f"mismatched column lengths: {lengths}")
        (n,) = lengths
        for column in self._columns:
            chunk = np.atleast_1d(values[column]).astype(self._dtype(column))
            self._chunks[column].append(chunk)
        start = self._size
        self._size += n
        self._tag_runs.append((tag, start, n))
        return start, n

    def column(self, name: str) -> np.ndarray:
        """Full column as one array.  Treat as read-only: the store owns
        it, and in-place edits would corrupt the netlist."""
        chunks = self._chunks[name]
        if not chunks:
            return np.empty(0, dtype=self._dtype(name))
        if len(chunks) == 1 and len(chunks[0]) == self._size:
            return chunks[0]
        return self._consolidated(name)

    def _consolidated(self, name: str) -> np.ndarray:
        """Collapse a column's chunks into one mutable array and return it."""
        chunks = self._chunks[name]
        if len(chunks) != 1 or len(chunks[0]) != self._size:
            self._chunks[name] = [np.concatenate(chunks)]
        return self._chunks[name][0]

    def scale(self, name: str, indices: np.ndarray, factor) -> None:
        """Multiply ``column[name][indices]`` by ``factor`` in place."""
        arr = self._consolidated(name)
        arr[indices] = arr[indices] * factor

    def deactivate(self, indices: np.ndarray) -> None:
        """Mark elements as removed from the circuit (failed open)."""
        self._inactive.update(int(i) for i in np.atleast_1d(indices))
        self._active_cache = None

    @property
    def n_inactive(self) -> int:
        return len(self._inactive)

    @property
    def active(self) -> np.ndarray:
        """Boolean mask over all elements; False = removed/failed-open.

        Cached between ``deactivate`` calls; treat as read-only.
        """
        cached = self._active_cache
        if cached is not None and len(cached) == self._size:
            return cached
        mask = np.ones(self._size, dtype=bool)
        if self._inactive:
            mask[np.fromiter(self._inactive, dtype=int)] = False
        self._active_cache = mask
        return mask

    def tag_indices(self, tag: str) -> np.ndarray:
        parts = [
            np.arange(start, start + count)
            for (t, start, count) in self._tag_runs
            if t == tag
        ]
        if not parts:
            return np.empty(0, dtype=int)
        return np.concatenate(parts)

    @property
    def tags(self) -> List[str]:
        seen: List[str] = []
        for tag, _, _ in self._tag_runs:
            if tag not in seen:
                seen.append(tag)
        return seen


class Circuit:
    """A mutable resistive netlist.

    Nodes are created lazily from hashable keys via :meth:`node`.  One key
    must be designated the ground reference with :meth:`set_ground` before
    assembly.  After construction, call :meth:`assemble` to obtain an
    :class:`repro.grid.solver.AssembledCircuit` whose LU factorisation can
    be reused across right-hand-side (source value) updates.
    """

    def __init__(self) -> None:
        self._node_index: Dict[NodeKey, int] = {}
        self._ground: Optional[int] = None
        self._revision = 0
        self._store: Dict[str, _Columnar] = {
            RESISTOR: _Columnar(("n1", "n2", "resistance")),
            VSOURCE: _Columnar(("pos", "neg", "voltage")),
            ISOURCE: _Columnar(("src", "dst", "current")),
            CONVERTER: _Columnar(("top", "bottom", "mid", "r_series")),
        }

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def node(self, key: NodeKey) -> int:
        """Return the integer id for ``key``, creating the node if new."""
        index = self._node_index.get(key)
        if index is None:
            index = len(self._node_index)
            self._node_index[key] = index
        return index

    def nodes(self, keys: Iterable[NodeKey]) -> np.ndarray:
        """Vectorised :meth:`node` over an iterable of keys."""
        return np.fromiter((self.node(k) for k in keys), dtype=int)

    def has_node(self, key: NodeKey) -> bool:
        return key in self._node_index

    @property
    def node_count(self) -> int:
        return len(self._node_index)

    @property
    def node_keys(self) -> List[NodeKey]:
        return list(self._node_index.keys())

    def set_ground(self, key: NodeKey) -> int:
        """Designate ``key`` as the 0-V reference node."""
        self._ground = self.node(key)
        return self._ground

    @property
    def ground(self) -> Optional[int]:
        return self._ground

    # ------------------------------------------------------------------
    # element construction
    # ------------------------------------------------------------------
    def add_resistor(
        self, n1: NodeKey, n2: NodeKey, resistance: float, tag: str = "r"
    ) -> ElementRef:
        """Add one resistor of ``resistance`` ohms between two nodes."""
        if resistance <= 0:
            raise ValueError(f"resistance must be > 0, got {resistance!r}")
        return self.add_resistors([n1], [n2], [resistance], tag=tag)

    def add_resistors(
        self,
        n1: Iterable[NodeKey],
        n2: Iterable[NodeKey],
        resistance: Iterable[float],
        tag: str = "r",
    ) -> ElementRef:
        """Vectorised resistor batch; all three iterables must align."""
        ids1 = self._as_node_ids(n1)
        ids2 = self._as_node_ids(n2)
        res = check_finite_array(
            "resistance",
            list(resistance) if not isinstance(resistance, np.ndarray) else resistance,
        )
        if np.any(res <= 0):
            raise ValueError("all resistances must be > 0")
        if not (len(ids1) == len(ids2) == len(res)):
            raise ValueError("n1, n2 and resistance must have equal lengths")
        start, count = self._store[RESISTOR].append(tag, n1=ids1, n2=ids2, resistance=res)
        return ElementRef(RESISTOR, start, count)

    def add_voltage_source(
        self, pos: NodeKey, neg: NodeKey, voltage: float, tag: str = "v"
    ) -> ElementRef:
        """Ideal voltage source; its branch current is an MNA unknown."""
        start, count = self._store[VSOURCE].append(
            tag,
            pos=self._as_node_ids([pos]),
            neg=self._as_node_ids([neg]),
            voltage=check_finite_array("voltage", [voltage]),
        )
        return ElementRef(VSOURCE, start, count)

    def add_current_source(
        self, src: NodeKey, dst: NodeKey, current: float, tag: str = "i"
    ) -> ElementRef:
        """Push ``current`` amps from ``src`` through the source into ``dst``.

        A chip load drawing ``I`` from its local Vdd node and returning it
        into its local GND node is ``add_current_source(vdd, gnd, I)``.
        """
        return self.add_current_sources([src], [dst], [current], tag=tag)

    def add_current_sources(
        self,
        src: Iterable[NodeKey],
        dst: Iterable[NodeKey],
        current: Iterable[float],
        tag: str = "i",
    ) -> ElementRef:
        """Vectorised current-source batch."""
        ids1 = self._as_node_ids(src)
        ids2 = self._as_node_ids(dst)
        cur = check_finite_array(
            "current",
            list(current) if not isinstance(current, np.ndarray) else current,
        )
        if not (len(ids1) == len(ids2) == len(cur)):
            raise ValueError("src, dst and current must have equal lengths")
        start, count = self._store[ISOURCE].append(tag, src=ids1, dst=ids2, current=cur)
        return ElementRef(ISOURCE, start, count)

    def add_converter(
        self,
        top: NodeKey,
        bottom: NodeKey,
        mid: NodeKey,
        r_series: float,
        tag: str = "sc",
    ) -> ElementRef:
        """Add a 2:1 push-pull SC converter (compact model, Fig. 2).

        The stamp enforces ``v_mid = (v_top + v_bottom) / 2 - j * r_series``
        where ``j`` is the output current delivered into ``mid``; charge
        conservation draws ``j/2`` from each of ``top`` and ``bottom``.
        ``j`` may be negative — the converter is push-pull and can sink
        excess charge from the intermediate rail.
        """
        if r_series <= 0:
            raise ValueError(f"r_series must be > 0, got {r_series!r}")
        return self.add_converters([top], [bottom], [mid], [r_series], tag=tag)

    def add_converters(
        self,
        top: Iterable[NodeKey],
        bottom: Iterable[NodeKey],
        mid: Iterable[NodeKey],
        r_series: Iterable[float],
        tag: str = "sc",
    ) -> ElementRef:
        """Vectorised converter batch."""
        t = self._as_node_ids(top)
        b = self._as_node_ids(bottom)
        m = self._as_node_ids(mid)
        rs = check_finite_array(
            "r_series",
            list(r_series) if not isinstance(r_series, np.ndarray) else r_series,
        )
        if np.any(rs <= 0):
            raise ValueError("all r_series values must be > 0")
        if not (len(t) == len(b) == len(m) == len(rs)):
            raise ValueError("top, bottom, mid and r_series must have equal lengths")
        start, count = self._store[CONVERTER].append(tag, top=t, bottom=b, mid=m, r_series=rs)
        return ElementRef(CONVERTER, start, count)

    # ------------------------------------------------------------------
    # introspection used by the solver / solution
    # ------------------------------------------------------------------
    def store(self, kind: str) -> _Columnar:
        if kind not in _KINDS:
            raise ValueError(f"unknown element kind {kind!r}")
        return self._store[kind]

    def count(self, kind: str) -> int:
        return len(self._store[kind])

    def tags(self, kind: str) -> List[str]:
        return self._store[kind].tags

    def active_mask(self, kind: str) -> np.ndarray:
        """Boolean activity mask for ``kind``; False = failed-open."""
        return self.store(kind).active

    @property
    def revision(self) -> int:
        """Mutation counter; bumps on every post-construction rewrite.

        :class:`repro.grid.solver.AssembledCircuit` snapshots this at
        assembly time and refuses to solve a stale factorisation.
        """
        return self._revision

    # ------------------------------------------------------------------
    # fault rewriting (used by repro.faults)
    # ------------------------------------------------------------------
    def open_elements(self, kind: str, indices) -> None:
        """Fail elements open: remove them from subsequent assemblies.

        Opened resistors stop conducting, opened converters stop
        transferring charge (their output current is pinned to zero) and
        opened current sources stop drawing load.
        """
        store = self.store(kind)
        idx = np.atleast_1d(np.asarray(indices, dtype=int))
        if idx.size and (idx.min() < 0 or idx.max() >= len(store)):
            raise IndexError(
                f"element index out of range for {kind!r} (size {len(store)})"
            )
        store.deactivate(idx)
        self._revision += 1

    def scale_elements(self, kind: str, column: str, indices, factor) -> None:
        """Multiply a value column in place (resistance degradation).

        ``factor`` may be a scalar or an array aligned with ``indices``;
        every factor must be finite and > 0.
        """
        store = self.store(kind)
        idx = np.atleast_1d(np.asarray(indices, dtype=int))
        if idx.size and (idx.min() < 0 or idx.max() >= len(store)):
            raise IndexError(
                f"element index out of range for {kind!r} (size {len(store)})"
            )
        fac = check_finite_array("factor", np.atleast_1d(factor))
        if np.any(fac <= 0):
            raise ValueError("all scale factors must be > 0")
        store.scale(column, idx, fac if fac.size > 1 else float(fac[0]))
        self._revision += 1

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self, backend=None):
        """Freeze the topology into a factorisable MNA system.

        ``backend`` picks the solver backend (a name from
        :mod:`repro.grid.backends`, a backend object, or ``None`` for
        the process default).
        """
        from repro.grid.solver import AssembledCircuit

        return AssembledCircuit(self, backend=backend)

    def solve(self):
        """Convenience: assemble and solve in one step."""
        return self.assemble().solve()

    # ------------------------------------------------------------------
    def _as_node_ids(self, keys) -> np.ndarray:
        if isinstance(keys, np.ndarray) and np.issubdtype(keys.dtype, np.integer):
            # Already resolved ids (from .nodes()); validate range.
            if keys.size and (keys.min() < 0 or keys.max() >= self.node_count):
                raise ValueError("node id out of range")
            return keys.astype(int)
        return self.nodes(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = ", ".join(f"{k}={len(v)}" for k, v in self._store.items())
        return f"Circuit(nodes={self.node_count}, {counts})"
