"""Small-signal AC (impedance vs frequency) analysis.

Classic PDN methodology alongside the DC IR-drop and time-domain
analyses: solve the complex-valued MNA system at each frequency with
capacitors stamped as ``jwC`` admittances and inductors as ``1/(jwL)``,
then probe the impedance seen by a load — the anti-resonance peaks
between the package inductance and the on-chip/package decap are what
set the worst di/dt noise.

The implementation builds its own complex sparse system from a
:class:`repro.grid.netlist.Circuit` plus explicit storage-element lists
(shared with the transient engine's :class:`Capacitor` /
:class:`Inductor` descriptions).  Voltage sources are shorted (ideal
supplies have zero small-signal impedance), current-source loads are
opened, and a 1 A probe current is injected at the node of interest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix

from repro.grid.backends import get_backend, notice_once, resolve_backend
from repro.grid.dynamic import Capacitor, Inductor
from repro.grid.netlist import RESISTOR, VSOURCE, Circuit, NodeKey
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ImpedanceProfile:
    """|Z| seen at a probe node across frequency."""

    frequencies: np.ndarray
    impedance: np.ndarray  # complex Z per frequency

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.impedance)

    def peak(self) -> Tuple[float, float]:
        """(frequency, |Z|) of the largest impedance peak."""
        idx = int(np.argmax(self.magnitude))
        return float(self.frequencies[idx]), float(self.magnitude[idx])

    def at(self, frequency: float) -> complex:
        """Z interpolated at one frequency (nearest sample)."""
        idx = int(np.argmin(np.abs(self.frequencies - frequency)))
        return complex(self.impedance[idx])


class ACAnalysis:
    """Impedance analysis of a resistive circuit + storage elements.

    The circuit's voltage sources are treated as AC shorts and its
    current sources as AC opens, per standard small-signal practice.
    """

    def __init__(
        self,
        circuit: Circuit,
        capacitors: Sequence[Capacitor] = (),
        inductors: Sequence[Inductor] = (),
        backend=None,
    ):
        if circuit.ground is None:
            raise ValueError("circuit needs a ground reference")
        self.circuit = circuit
        #: Solver backend for the per-frequency complex solves.  The AC
        #: system is complex symmetric (never SPD), so ``cholesky``
        #: degrades to ``lu`` with a one-line notice; ``iterative``
        #: runs LGMRES.
        self.backend = resolve_backend(backend)
        self.capacitors = list(capacitors)
        self.inductors = list(inductors)
        self._ground = circuit.ground
        # Resolve every storage-element node key FIRST: keys not yet in
        # the circuit create new nodes, and the row mapping below must
        # see the final node count.
        cap_ids = [
            (circuit.node(c.n1), circuit.node(c.n2)) for c in self.capacitors
        ]
        ind_ids = [
            (circuit.node(i.n1), circuit.node(i.n2)) for i in self.inductors
        ]
        self._n = circuit.node_count
        # Static (resistive) stamps, reused at every frequency.
        res = circuit.store(RESISTOR)
        self._res_n1 = self._rows(res.column("n1"))
        self._res_n2 = self._rows(res.column("n2"))
        self._res_g = 1.0 / res.column("resistance")
        vsrc = circuit.store(VSOURCE)
        self._vs_pos = self._rows(vsrc.column("pos"))
        self._vs_neg = self._rows(vsrc.column("neg"))
        self._cap_nodes = [(self._row(a), self._row(b)) for a, b in cap_ids]
        self._ind_nodes = [(self._row(a), self._row(b)) for a, b in ind_ids]

    # ------------------------------------------------------------------
    def _row(self, node_id: int) -> int:
        if node_id == self._ground:
            return -1
        return node_id if node_id < self._ground else node_id - 1

    def _rows(self, ids: np.ndarray) -> np.ndarray:
        rows = np.where(ids < self._ground, ids, ids - 1)
        return np.where(ids == self._ground, -1, rows)

    def _system(self, omega: float):
        dim = self._n - 1 + len(self._vs_pos)
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []

        def stamp(r, c, v):
            r = np.atleast_1d(np.asarray(r))
            c = np.atleast_1d(np.asarray(c))
            v = np.atleast_1d(np.asarray(v, dtype=complex))
            keep = (r >= 0) & (c >= 0)
            rows.append(r[keep])
            cols.append(c[keep])
            vals.append(v[keep])

        def stamp_admittance(n1, n2, y):
            stamp(n1, n1, y)
            stamp(n2, n2, y)
            stamp(n1, n2, -y)
            stamp(n2, n1, -y)

        stamp_admittance(self._res_n1, self._res_n2, self._res_g.astype(complex))
        for (a, b), cap in zip(self._cap_nodes, self.capacitors):
            stamp_admittance(a, b, 1j * omega * cap.capacitance)
        for (a, b), ind in zip(self._ind_nodes, self.inductors):
            if omega == 0:
                stamp_admittance(a, b, 1e12)  # DC short
            else:
                stamp_admittance(a, b, 1.0 / (1j * omega * ind.inductance))
        # Voltage sources -> 0 V constraints (AC shorts).
        offset = self._n - 1
        for k, (p, q) in enumerate(zip(self._vs_pos, self._vs_neg)):
            col = offset + k
            stamp(p, col, 1.0)
            stamp(q, col, -1.0)
            stamp(col, p, 1.0)
            stamp(col, q, -1.0)
        matrix = coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(dim, dim),
        ).tocsc()
        return matrix, dim

    def _factorize(self, matrix):
        """Factorise one frequency point's system with the chosen backend.

        A backend that cannot handle the complex system (cholesky is
        ``spd_only``) falls back to ``lu`` with a one-line notice, same
        policy as the DC solver layer.
        """
        try:
            return self.backend.factorize(matrix)
        except (RuntimeError, ValueError):
            if self.backend.name == "lu":
                raise
            notice_once(
                f"ac-{self.backend.name}-lu-fallback",
                f"solver backend '{self.backend.name}' cannot factorize the "
                "complex AC system; falling back to lu",
                backend=self.backend.name,
            )
            return get_backend("lu").factorize(matrix)

    # ------------------------------------------------------------------
    def impedance(
        self,
        probe_pos: NodeKey,
        probe_neg: NodeKey,
        frequencies: Sequence[float],
    ) -> ImpedanceProfile:
        """|Z(f)| between two nodes (1 A injected, voltage read back)."""
        frequencies = np.asarray(list(frequencies), dtype=float)
        if frequencies.size == 0:
            raise ValueError("frequencies must be non-empty")
        if np.any(frequencies < 0):
            raise ValueError("frequencies must be non-negative")
        pos = self._row(self.circuit.node(probe_pos))
        neg = self._row(self.circuit.node(probe_neg))
        z_values = np.empty(frequencies.size, dtype=complex)
        for i, f in enumerate(frequencies):
            omega = 2.0 * np.pi * f
            matrix, dim = self._system(omega)
            rhs = np.zeros(dim, dtype=complex)
            if pos >= 0:
                rhs[pos] += 1.0
            if neg >= 0:
                rhs[neg] -= 1.0
            solution = self._factorize(matrix).solve(rhs)
            v_pos = solution[pos] if pos >= 0 else 0.0
            v_neg = solution[neg] if neg >= 0 else 0.0
            z_values[i] = v_pos - v_neg
        return ImpedanceProfile(frequencies=frequencies, impedance=z_values)


def pdn_impedance_profile(
    pdn,
    frequencies: Optional[Sequence[float]] = None,
    decap_per_layer: float = 100e-9,
    probe_layer: Optional[int] = None,
    backend=None,
) -> ImpedanceProfile:
    """Impedance seen by a load at the centre of ``probe_layer``.

    The PDN must be built with ``package_inductor_nodes=True`` so the
    package inductors participate; per-cell decap is added like the
    transient analysis does.
    """
    check_positive("decap_per_layer", decap_per_layer)
    from repro.pdn.builder import PKG_GND, PKG_GND_IND, PKG_VDD, PKG_VDD_IND

    g = pdn.geometry.grid_nodes
    n_layers = pdn.stack.n_layers
    per_cell = decap_per_layer / (g * g)
    capacitors = [
        Capacitor(("vdd", layer, j, i), ("gnd", layer, j, i), per_cell)
        for layer in range(n_layers)
        for j in range(g)
        for i in range(g)
    ]
    inductors = []
    if pdn.package_inductor_nodes:
        pkg = pdn.package
        inductors = [
            Inductor(PKG_VDD_IND, PKG_VDD, pkg.inductance),
            Inductor(PKG_GND, PKG_GND_IND, pkg.inductance),
        ]
        if pkg.decap > 0:
            capacitors.append(Capacitor(PKG_VDD, PKG_GND, pkg.decap))
    analysis = ACAnalysis(pdn.circuit, capacitors, inductors, backend=backend)
    if frequencies is None:
        frequencies = np.logspace(5, 10, 41)  # 100 kHz .. 10 GHz
    layer = n_layers - 1 if probe_layer is None else probe_layer
    mid = g // 2
    return analysis.impedance(
        ("vdd", layer, mid, mid), ("gnd", layer, mid, mid), frequencies
    )
