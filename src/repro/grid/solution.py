"""Solved operating point of an assembled circuit.

A :class:`Solution` exposes node voltages plus per-element branch
currents, voltage drops and dissipated power, addressable by element tag.
The EM-lifetime analysis reads per-tag branch currents (C4 pads, TSV
tiers); the noise analysis reads node voltages; the efficiency analysis
reads source and load power.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.grid.netlist import CONVERTER, ISOURCE, RESISTOR, VSOURCE, NodeKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.solver import AssembledCircuit, SolveDiagnostics


class Solution:
    """Node voltages and derived branch quantities for one DC solve.

    Elements failed open by fault injection report zero branch current
    and dissipate no power; ``diagnostics`` (resilient solves only)
    records any pruning or fallback the solver needed.
    """

    def __init__(
        self,
        assembled: "AssembledCircuit",
        x: np.ndarray,
        isource_current: np.ndarray,
        vsource_voltage: np.ndarray,
        diagnostics: Optional["SolveDiagnostics"] = None,
    ):
        self._assembled = assembled
        self._circuit = assembled.circuit
        self._x = x
        self._isource_current = isource_current
        self._vsource_voltage = vsource_voltage
        #: ``SolveDiagnostics`` of a resilient solve; None on the strict path.
        self.diagnostics = diagnostics
        # Expand to a full per-node voltage vector including ground = 0.
        n = assembled.n_nodes
        volts = np.empty(n)
        ground = assembled.ground_node
        volts[:ground] = x[:ground]
        volts[ground] = 0.0
        volts[ground + 1 :] = x[ground : n - 1]
        self._node_voltage = volts

    # ------------------------------------------------------------------
    # voltages
    # ------------------------------------------------------------------
    def voltage(self, key: NodeKey) -> float:
        """Voltage of one node (V, relative to ground)."""
        return float(self._node_voltage[self._circuit.node(key)])

    def voltages(self, keys: Iterable[NodeKey]) -> np.ndarray:
        """Voltages of several nodes (V)."""
        ids = self._circuit.nodes(keys)
        return self._node_voltage[ids]

    def voltage_by_id(self, node_ids: np.ndarray) -> np.ndarray:
        """Voltages for pre-resolved integer node ids."""
        return self._node_voltage[np.asarray(node_ids, dtype=int)]

    @property
    def node_voltage(self) -> np.ndarray:
        """Full node-voltage vector indexed by node id."""
        return self._node_voltage

    # ------------------------------------------------------------------
    # resistors
    # ------------------------------------------------------------------
    @staticmethod
    def _store_indices(store, tag: Optional[str]):
        """Selector for one tag, or the whole store as a cheap view."""
        return slice(None) if tag is None else store.tag_indices(tag)

    def _resistor_fields(self, tag: Optional[str]):
        store = self._circuit.store(RESISTOR)
        idx = self._store_indices(store, tag)
        v1 = self._node_voltage[store.column("n1")[idx]]
        v2 = self._node_voltage[store.column("n2")[idx]]
        r = store.column("resistance")[idx]
        active = store.active[idx]
        return idx, v1, v2, r, active

    def resistor_currents(self, tag: Optional[str] = None) -> np.ndarray:
        """Branch currents (A) flowing n1 -> n2, optionally one tag only.

        Resistors failed open carry zero current.
        """
        _, v1, v2, r, active = self._resistor_fields(tag)
        return np.where(active, (v1 - v2) / r, 0.0)

    def resistor_drops(self, tag: Optional[str] = None) -> np.ndarray:
        """Voltage drops v1 - v2 (V)."""
        _, v1, v2, _, _ = self._resistor_fields(tag)
        return v1 - v2

    def resistor_power(self, tag: Optional[str] = None) -> float:
        """Total power dissipated in the selected (active) resistors (W)."""
        _, v1, v2, r, active = self._resistor_fields(tag)
        return float(np.sum(np.where(active, (v1 - v2) ** 2 / r, 0.0)))

    # ------------------------------------------------------------------
    # voltage sources
    # ------------------------------------------------------------------
    def vsource_currents(self, tag: Optional[str] = None) -> np.ndarray:
        """Current delivered out of each source's + terminal (A).

        Positive values mean the source is supplying power.
        """
        store = self._circuit.store(VSOURCE)
        offset = self._assembled.vsource_offset
        if tag is None:
            stamped = self._x[offset : offset + len(store)]
        else:
            stamped = self._x[offset + store.tag_indices(tag)]
        return -stamped  # stamped current flows + -> - inside the source

    def vsource_values(self, tag: Optional[str] = None) -> np.ndarray:
        """The source voltage values used for this solve (V)."""
        store = self._circuit.store(VSOURCE)
        idx = self._store_indices(store, tag)
        return np.asarray(self._vsource_voltage)[idx]

    def vsource_power(self, tag: Optional[str] = None) -> float:
        """Total power delivered by the selected voltage sources (W)."""
        store = self._circuit.store(VSOURCE)
        idx = self._store_indices(store, tag)
        vpos = self._node_voltage[store.column("pos")[idx]]
        vneg = self._node_voltage[store.column("neg")[idx]]
        return float(np.sum((vpos - vneg) * self.vsource_currents(tag)))

    # ------------------------------------------------------------------
    # current sources (loads)
    # ------------------------------------------------------------------
    def isource_power(self, tag: Optional[str] = None) -> float:
        """Power absorbed by the selected current sources (W).

        For loads drawing from Vdd into GND this is the power actually
        delivered to the logic (which shrinks as IR drop grows).
        """
        store = self._circuit.store(ISOURCE)
        idx = self._store_indices(store, tag)
        vsrc = self._node_voltage[store.column("src")[idx]]
        vdst = self._node_voltage[store.column("dst")[idx]]
        current = np.where(store.active[idx], self._isource_current[idx], 0.0)
        return float(np.sum((vsrc - vdst) * current))

    def isource_values(self, tag: Optional[str] = None) -> np.ndarray:
        """The current values used for this solve (A); 0 for shed loads."""
        store = self._circuit.store(ISOURCE)
        idx = self._store_indices(store, tag)
        return np.where(store.active[idx], self._isource_current[idx], 0.0)

    # ------------------------------------------------------------------
    # SC converters
    # ------------------------------------------------------------------
    def converter_output_currents(self, tag: Optional[str] = None) -> np.ndarray:
        """Output current j of each converter (A, positive = sourcing)."""
        store = self._circuit.store(CONVERTER)
        offset = self._assembled.converter_offset
        if tag is None:
            return self._x[offset : offset + len(store)]
        return self._x[offset + store.tag_indices(tag)]

    def converter_series_loss(self, tag: Optional[str] = None) -> float:
        """Total conduction loss j^2 * r_series across converters (W)."""
        store = self._circuit.store(CONVERTER)
        idx = self._store_indices(store, tag)
        j = self.converter_output_currents(tag)
        rser = store.column("r_series")[idx]
        return float(np.sum(j * j * rser))

    def converter_output_voltages(self, tag: Optional[str] = None) -> np.ndarray:
        """Voltage at each converter's output (mid) node (V)."""
        store = self._circuit.store(CONVERTER)
        idx = self._store_indices(store, tag)
        return self._node_voltage[store.column("mid")[idx]]

    # ------------------------------------------------------------------
    # global energy bookkeeping
    # ------------------------------------------------------------------
    def power_balance_error(self) -> float:
        """|source power - (load + resistive + converter) power| (W).

        Should be ~0 for a correct solve; exposed as an invariant for the
        test suite.
        """
        supplied = self.vsource_power()
        absorbed = (
            self.isource_power() + self.resistor_power() + self.converter_series_loss()
        )
        return abs(supplied - absorbed)
