"""Pluggable solver backends for :class:`repro.grid.solver.AssembledCircuit`.

The hot loop of every experiment is "factorize one MNA matrix, solve many
right-hand sides".  This module turns the *how* of that factorisation
into a registry of interchangeable :class:`SolverBackend` objects:

``lu`` (default)
    SuperLU via ``scipy.sparse.linalg.splu`` — the historical behaviour,
    bit-for-bit.  Handles any nonsingular system, real or complex.
``cholesky``
    For symmetric positive-definite systems (pure conductance networks:
    thermal grids, ground-net Laplacians, resistor-mesh PDNs without
    voltage-source or converter constraint rows).  Uses CHOLMOD through
    scikit-sparse when importable; otherwise degrades to SuperLU in
    symmetric mode (``MMD_AT_PLUS_A`` ordering, no partial pivoting)
    with a one-line structured-log notice — still a genuine win over
    plain LU on SPD systems because the symmetric ordering roughly
    halves fill-in.  Refuses non-SPD matrices with a typed
    :class:`repro.errors.NotSPDError`; the solver layer answers that by
    falling back to the ``lu`` backend (again with a one-line notice),
    so a mis-chosen ``--solver cholesky`` degrades instead of dying.
``iterative``
    Matrix-free conjugate gradients (diagonal/Jacobi preconditioner)
    when the SPD screen passes, LGMRES with an incomplete-LU
    preconditioner otherwise — for grids too large to factorise.

Backends sit *under* the escalation ladder of
:meth:`repro.grid.solver.AssembledCircuit.solve`: a failed cholesky
rung escalates exactly like a failed LU rung.  Selection goes through
``--solver`` on every CLI subcommand, the ``REPRO_SOLVER`` environment
variable, or programmatically via :func:`set_default_backend` /
``SolveOptions(backend=...)``.  See docs/SOLVERS.md, including how to
register an out-of-tree (e.g. GPU) backend with zero API change.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np
from scipy.sparse.linalg import LinearOperator, cg, lgmres, onenormest, spilu, splu

from repro.errors import ConvergenceError, NotSPDError, SolverBackendError

__all__ = [
    "SOLVER_ENV",
    "DEFAULT_BACKEND",
    "Factorization",
    "SolverBackend",
    "available_backends",
    "backend_availability",
    "default_backend_name",
    "get_backend",
    "notice_once",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "spd_screen",
]

#: Environment variable naming the default backend (same values as
#: ``--solver``); an explicit :func:`set_default_backend` call wins.
SOLVER_ENV = "REPRO_SOLVER"
#: The backend used when nothing selects one.
DEFAULT_BACKEND = "lu"

#: Numeric symmetry tolerance of the SPD screen, relative to the
#: largest stamp magnitude.
SPD_SYMMETRY_RTOL = 1e-10

_UNSET = object()


# ----------------------------------------------------------------------
# one-shot structured notices
# ----------------------------------------------------------------------
_NOTICED: set = set()


def notice_once(key: str, message: str, **extra) -> None:
    """Emit one structured-log warning per process per ``key``.

    Backend degradations (CHOLMOD missing, non-SPD fallback to LU) are
    worth exactly one line each — not one per sweep point.
    """
    if key in _NOTICED:
        return
    _NOTICED.add(key)
    from repro.obs.logs import get_logger

    get_logger(__name__).warning(message, extra=dict(extra, notice=key))


# ----------------------------------------------------------------------
# SPD screen
# ----------------------------------------------------------------------
def spd_screen(matrix) -> Optional[str]:
    """Cheap necessary-conditions check for symmetric positive definite.

    Returns ``None`` when the matrix may be SPD, else a short reason it
    cannot be.  O(nnz); screens out the saddle-point (voltage-source
    constraint rows have zero diagonal) and charge-recycling (converter
    stamps are anti-symmetric) structures that dominate this codebase,
    so ``spd_only`` backends fail fast with a typed error instead of a
    numerical breakdown deep inside a factorisation.
    """
    if matrix.shape[0] != matrix.shape[1]:
        return "matrix is not square"
    if np.issubdtype(matrix.dtype, np.complexfloating):
        return "complex-valued system"
    if matrix.shape[0] == 0:
        return None
    diagonal = matrix.diagonal()
    if diagonal.size < matrix.shape[0] or np.any(diagonal <= 0):
        return "non-positive diagonal entry (constraint row?)"
    asym = abs(matrix - matrix.T)
    if asym.nnz:
        scale = max(1.0, float(abs(matrix).max()))
        worst = float(asym.max())
        if worst > SPD_SYMMETRY_RTOL * scale:
            return f"asymmetric stamps (|A - A^T| up to {worst:.1e})"
    return None


# ----------------------------------------------------------------------
# factorizations
# ----------------------------------------------------------------------
class Factorization(ABC):
    """A reusable solve operator produced by :meth:`SolverBackend.factorize`.

    Holds the matrix it was computed from plus a **cached** 1-norm
    condition estimate: the estimate is a property of the factorisation,
    so it is computed at most once per :class:`Factorization` no matter
    how many solves reuse it (the revision check in
    :class:`~repro.grid.solver.AssembledCircuit` already guarantees a
    changed matrix means a new factorisation).
    """

    #: Name of the backend that produced this factorisation.
    backend_name: str = "?"
    #: Whether iterative refinement against this operator is meaningful
    #: (direct factorisations: yes; an iterative solve is already its
    #: own refinement loop).
    supports_refine: bool = True

    def __init__(self, matrix):
        self.matrix = matrix
        self._condition = _UNSET

    @abstractmethod
    def solve(self, z: np.ndarray) -> np.ndarray:
        """Solve ``A x = z`` for one RHS vector."""

    def solve_batch(self, z: np.ndarray) -> np.ndarray:
        """Solve ``A X = Z`` for a dense matrix of stacked RHS columns."""
        return self.solve(z)

    def solve_transpose(self, z: np.ndarray) -> np.ndarray:
        """Solve ``A^T x = z`` (needed only by the condition estimator)."""
        raise NotImplementedError

    def condition_estimate(self) -> Optional[float]:
        """Cached 1-norm condition estimate, or None when unavailable."""
        if self._condition is _UNSET:
            self._condition = self._estimate_condition()
        return self._condition

    def _estimate_condition(self) -> Optional[float]:
        if self.matrix.shape[0] < 2:
            return None
        try:
            inverse = LinearOperator(
                self.matrix.shape,
                matvec=self.solve,
                rmatvec=self.solve_transpose,
            )
            return float(onenormest(self.matrix) * onenormest(inverse))
        except Exception:  # estimation is best-effort only
            return None


class _SuperLUFactorization(Factorization):
    """Wraps a SuperLU handle (plain or symmetric-mode)."""

    def __init__(self, matrix, handle, backend_name: str):
        super().__init__(matrix)
        self._handle = handle
        self.backend_name = backend_name

    def solve(self, z):
        return self._handle.solve(z)

    def solve_transpose(self, z):
        return self._handle.solve(z, trans="T")


class _CholmodFactorization(Factorization):
    """Wraps a CHOLMOD factor from scikit-sparse."""

    backend_name = "cholesky"

    def __init__(self, matrix, factor):
        super().__init__(matrix)
        self._factor = factor

    def solve(self, z):
        return self._factor(z)

    def solve_transpose(self, z):  # SPD: A^T == A
        return self._factor(z)


class _IterativeFactorization(Factorization):
    """Matrix-free 'factorisation': CG (SPD) or ILU-LGMRES (general).

    Nothing is factorised up front beyond the preconditioner, so
    ``factorize`` is cheap and memory stays O(nnz) — the point of this
    backend for very large grids.  A solve that fails to converge
    raises :class:`repro.errors.ConvergenceError`, which the escalation
    ladder treats like any other failed rung.
    """

    backend_name = "iterative"
    supports_refine = False

    #: Convergence target — far below the solver layer's 1e-6 residual
    #: tolerance so cross-backend results agree with ``lu`` to <= 1e-9.
    #: The saddle-point PDN systems have a relative-residual floor near
    #: 7e-11 on production (voltage-source dominated) RHS vectors:
    #: tolerances at or below 1e-11 stall the Krylov basis into the
    #: iteration cap (seconds per solve), while 1e-10 converges in ~3
    #: preconditioned iterations and still agrees with ``lu`` to ~1e-11.
    RTOL = 1e-10
    #: A capped solve is still accepted when its measured relative
    #: residual lands at or below this (the cross-backend agreement
    #: criterion) — the Krylov basis can stagnate by scipy's criterion
    #: after the answer is already converged.
    ACCEPT_RTOL = 1e-9
    MAX_ITERATIONS = 5000

    def __init__(self, matrix):
        super().__init__(matrix)
        self._spd = spd_screen(matrix) is None
        self._preconditioner = self._build_preconditioner(matrix)
        #: Iterations consumed by the most recent solve (diagnostics).
        self.last_iterations = 0

    def _build_preconditioner(self, matrix):
        if self._spd:
            # Jacobi: cheap, deterministic, and (unlike an incomplete
            # factorisation) guaranteed SPD, which CG requires of M.
            diagonal = matrix.diagonal()
            inv_diag = np.where(np.abs(diagonal) > 1e-300, 1.0 / diagonal, 1.0)
            return LinearOperator(matrix.shape, matvec=lambda v: inv_diag * v)
        try:
            ilu = spilu(matrix.tocsc(), drop_tol=1e-5, fill_factor=10.0)
            return LinearOperator(matrix.shape, matvec=ilu.solve)
        except (RuntimeError, ValueError, MemoryError):
            diagonal = matrix.diagonal()
            inv_diag = np.where(np.abs(diagonal) > 1e-300, 1.0 / diagonal, 1.0)
            return LinearOperator(matrix.shape, matvec=lambda v: inv_diag * v)

    def _solve_one(self, b):
        iterations = 0

        def count(_):
            nonlocal iterations
            iterations += 1

        method = cg if self._spd else lgmres
        x, info = method(
            self.matrix,
            b,
            M=self._preconditioner,
            rtol=self.RTOL,
            atol=0.0,
            maxiter=self.MAX_ITERATIONS,
            callback=count,
        )
        self.last_iterations += iterations
        if not np.all(np.isfinite(x)):
            raise ConvergenceError(
                f"iterative backend ({'cg' if self._spd else 'lgmres'}) "
                f"produced non-finite values (info={info})"
            )
        if info != 0:
            scale = float(np.linalg.norm(b))
            residual = float(np.linalg.norm(self.matrix @ x - b))
            if scale == 0.0 or residual > self.ACCEPT_RTOL * scale:
                raise ConvergenceError(
                    f"iterative backend ({'cg' if self._spd else 'lgmres'}) "
                    f"did not converge within {self.MAX_ITERATIONS} "
                    f"iterations (info={info}, relative residual "
                    f"{residual / scale if scale else float('inf'):.1e})"
                )
        return x

    def solve(self, z):
        self.last_iterations = 0
        if z.ndim == 2:
            return np.column_stack([self._solve_one(z[:, i]) for i in range(z.shape[1])])
        return self._solve_one(z)

    def _estimate_condition(self):
        # Estimating ||A^-1|| would run full Krylov solves inside
        # onenormest — not worth it for a diagnostics field.
        return None


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class SolverBackend(ABC):
    """One way to turn a sparse system into a :class:`Factorization`.

    Capability flags let the solver layer (and callers) reason about a
    backend without trying it:

    ``spd_only``
        :meth:`factorize` raises :class:`repro.errors.NotSPDError` on
        systems that fail the SPD screen instead of producing garbage.
    ``supports_refine``
        Iterative refinement against the factorisation is meaningful.
    """

    name: str = "?"
    description: str = ""
    spd_only: bool = False
    supports_refine: bool = True

    @abstractmethod
    def factorize(self, matrix) -> Factorization:
        """Factorise ``matrix`` (CSC sparse).

        Raises whatever the underlying library raises on singular input
        (``RuntimeError``/``ValueError``), or
        :class:`repro.errors.NotSPDError` for ``spd_only`` backends on
        non-SPD input — all of which the escalation ladder treats as a
        failed rung.
        """

    def availability(self) -> Dict[str, object]:
        """How this backend would run *right now* on this machine."""
        return {"available": True, "native": True, "note": ""}


class LUBackend(SolverBackend):
    name = "lu"
    description = "SuperLU sparse LU (scipy.sparse.linalg.splu); the default"

    def factorize(self, matrix) -> Factorization:
        return _SuperLUFactorization(matrix, splu(matrix), self.name)


def _cholmod():
    """The scikit-sparse cholmod module, or None when not importable."""
    try:
        from sksparse import cholmod  # type: ignore
    except Exception:
        return None
    return cholmod


class CholeskyBackend(SolverBackend):
    name = "cholesky"
    description = (
        "Cholesky for SPD systems: CHOLMOD (scikit-sparse) when importable, "
        "else SuperLU symmetric mode"
    )
    spd_only = True

    def factorize(self, matrix) -> Factorization:
        reason = spd_screen(matrix)
        if reason is not None:
            raise NotSPDError(
                f"cholesky backend requires a symmetric positive-definite "
                f"system: {reason}",
                reason=reason,
            )
        cholmod = _cholmod()
        if cholmod is not None:
            try:
                factor = cholmod.cholesky(matrix.tocsc())
            except cholmod.CholmodNotPositiveDefiniteError as exc:
                raise NotSPDError(
                    f"CHOLMOD found the matrix not positive definite ({exc})",
                    reason="not positive definite",
                ) from exc
            return _CholmodFactorization(matrix, factor)
        notice_once(
            "cholmod-missing",
            "scikit-sparse (CHOLMOD) is not importable; cholesky backend "
            "using SuperLU symmetric mode instead",
            backend=self.name,
        )
        handle = splu(
            matrix.tocsc(),
            permc_spec="MMD_AT_PLUS_A",
            diag_pivot_thresh=0.0,
            options=dict(SymmetricMode=True),
        )
        return _SuperLUFactorization(matrix, handle, self.name)

    def availability(self) -> Dict[str, object]:
        native = _cholmod() is not None
        return {
            "available": True,
            "native": native,
            "note": "" if native else "CHOLMOD absent; SuperLU symmetric-mode fallback",
        }


class IterativeBackend(SolverBackend):
    name = "iterative"
    description = (
        "matrix-free Krylov solve: Jacobi-CG on SPD systems, ILU-LGMRES "
        "otherwise; O(nnz) memory for very large grids"
    )
    supports_refine = False

    def factorize(self, matrix) -> Factorization:
        return _IterativeFactorization(matrix)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, SolverBackend] = {}
_DEFAULT_OVERRIDE: Optional[str] = None


def register_backend(backend: SolverBackend, *, replace: bool = False) -> None:
    """Add a backend to the registry (e.g. an out-of-tree GPU backend)."""
    if not replace and backend.name in _REGISTRY:
        raise SolverBackendError(
            f"solver backend '{backend.name}' is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name; unknown names get a one-line typed error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SolverBackendError(
            f"unknown solver backend '{name}' "
            f"(choose from: {', '.join(sorted(_REGISTRY))})"
        ) from None


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` reset) the process-wide default backend.

    The CLI's ``--solver`` flag lands here; it outranks ``REPRO_SOLVER``.
    """
    global _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = get_backend(name).name if name is not None else None


def default_backend_name() -> str:
    """The backend used when a call site does not pick one.

    Priority: :func:`set_default_backend` > ``REPRO_SOLVER`` >
    :data:`DEFAULT_BACKEND`.  An invalid environment value raises the
    same one-line :class:`repro.errors.SolverBackendError` as an invalid
    flag — at resolution time, so workers inherit misconfiguration
    loudly instead of silently solving with the wrong backend.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    env = os.environ.get(SOLVER_ENV)
    if env and env.strip():
        return get_backend(env.strip()).name
    return DEFAULT_BACKEND


def resolve_backend(
    choice: Union[None, str, SolverBackend] = None
) -> SolverBackend:
    """Turn a name / backend object / None (= default) into a backend."""
    if isinstance(choice, SolverBackend):
        return choice
    if choice is None:
        return get_backend(default_backend_name())
    return get_backend(str(choice))


def backend_availability() -> Dict[str, Dict[str, object]]:
    """Per-backend availability map (used by the bench/CI skip logic)."""
    return {name: backend.availability() for name, backend in _REGISTRY.items()}


register_backend(LUBackend())
register_backend(CholeskyBackend())
register_backend(IterativeBackend())
