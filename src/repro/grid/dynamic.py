"""Transient (time-domain) analysis via companion models.

Extends the DC engine to RC/RL networks using the standard backward-
Euler companion stamps:

* a capacitor ``C`` becomes a resistor ``dt/C`` in parallel with a
  history current source ``(C/dt) * v_prev`` (injected so that
  ``i = C (v - v_prev) / dt``),
* an inductor ``L`` becomes a resistor ``L/dt`` in parallel with a
  history current source ``i_prev``.

Because the companion conductances depend only on ``dt``, a fixed-step
simulation assembles and LU-factorises the MNA matrix **once** and then
performs one cheap RHS update + triangular solve per timestep — the same
amortisation trick the DC sweeps use.

The paper's own results are all static IR drop; this module implements
the natural transient extension (di/dt droop into on-chip decap), used
by :mod:`repro.pdn.transient`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.netlist import ISOURCE, Circuit, NodeKey
from repro.grid.solver import SolveRequest
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Capacitor:
    """An ideal capacitor between two nodes (F)."""

    n1: NodeKey
    n2: NodeKey
    capacitance: float

    def __post_init__(self) -> None:
        check_positive("capacitance", self.capacitance)


@dataclass(frozen=True)
class Inductor:
    """An ideal inductor between two nodes (H)."""

    n1: NodeKey
    n2: NodeKey
    inductance: float

    def __post_init__(self) -> None:
        check_positive("inductance", self.inductance)


@dataclass
class TransientTrace:
    """Sampled waveforms of a transient run."""

    #: Time points (s), length ``steps + 1`` including t = 0.
    time: np.ndarray
    #: Node voltages per probe, keyed by probe label -> array over time.
    probes: Dict[str, np.ndarray]

    def probe(self, label: str) -> np.ndarray:
        return self.probes[label]

    def worst_droop(self, label: str, reference: float) -> float:
        """Largest dip of a probe below ``reference`` (V, >= 0)."""
        return float(max(0.0, reference - self.probes[label].min()))


class TransientEngine:
    """Fixed-step backward-Euler simulator over a DC circuit.

    The engine *augments* the given circuit with companion elements, so
    construct it before the circuit's first ``assemble()``; the circuit
    should not be reused for DC solves afterwards.
    """

    def __init__(
        self,
        circuit: Circuit,
        capacitors: Sequence[Capacitor],
        inductors: Sequence[Inductor] = (),
        dt: float = 1e-10,
    ):
        check_positive("dt", dt)
        if not capacitors and not inductors:
            raise ValueError("transient analysis needs at least one storage element")
        self.circuit = circuit
        self.dt = dt
        self.capacitors = list(capacitors)
        self.inductors = list(inductors)

        # Stamp companion conductances (topology-constant).
        for cap in self.capacitors:
            circuit.add_resistor(cap.n1, cap.n2, dt / cap.capacitance, tag="_comp.c")
        for ind in self.inductors:
            circuit.add_resistor(ind.n1, ind.n2, ind.inductance / dt, tag="_comp.l")
        # History current sources, updated every step.  Direction: a
        # positive history value injects current into n1 (capacitor) /
        # into n2 (inductor), matching the companion derivations.
        self._cap_refs = [
            circuit.add_current_source(c.n2, c.n1, 0.0, tag="_hist.c")
            for c in self.capacitors
        ]
        self._ind_refs = [
            circuit.add_current_source(i.n1, i.n2, 0.0, tag="_hist.l")
            for i in self.inductors
        ]
        self._assembled = circuit.assemble()
        self._cap_nodes = [
            (circuit.node(c.n1), circuit.node(c.n2)) for c in self.capacitors
        ]
        self._ind_nodes = [
            (circuit.node(i.n1), circuit.node(i.n2)) for i in self.inductors
        ]
        self._n_isources = circuit.count(ISOURCE)

    # ------------------------------------------------------------------
    def run(
        self,
        steps: int,
        load_currents: Optional[Callable[[float], np.ndarray]] = None,
        probes: Optional[Dict[str, NodeKey]] = None,
        initial_cap_voltages: Optional[np.ndarray] = None,
        initial_inductor_currents: Optional[np.ndarray] = None,
    ) -> TransientTrace:
        """Simulate ``steps`` backward-Euler steps.

        Parameters
        ----------
        steps:
            Number of timesteps.
        load_currents:
            ``f(t) -> array`` giving the values of the circuit's
            *original* (non-companion) current sources at time ``t``;
            defaults to their netlist values.  The array length must
            equal the number of original current sources (companions are
            managed internally).
        probes:
            label -> node key to record.
        initial_cap_voltages, initial_inductor_currents:
            Storage-element state at t = 0 (defaults: all zero).  Start
            near the intended DC point — e.g. capacitors pre-charged to
            their nominal rail voltages — and let a short warm-up settle
            the residual; a zero start of a large decap behaves like a
            momentary short across its rails.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        probes = probes or {}
        circuit = self.circuit
        n_hist = len(self._cap_refs) + len(self._ind_refs)
        n_orig = self._n_isources - n_hist
        base_values = circuit.store(ISOURCE).column("current")[:n_orig]

        if initial_cap_voltages is None:
            cap_v = np.zeros(len(self.capacitors))
        else:
            cap_v = np.asarray(initial_cap_voltages, dtype=float).copy()
            if cap_v.shape != (len(self.capacitors),):
                raise ValueError(
                    f"initial_cap_voltages must have shape "
                    f"({len(self.capacitors)},), got {cap_v.shape}"
                )
        if initial_inductor_currents is None:
            ind_i = np.zeros(len(self.inductors))
        else:
            ind_i = np.asarray(initial_inductor_currents, dtype=float).copy()
            if ind_i.shape != (len(self.inductors),):
                raise ValueError(
                    f"initial_inductor_currents must have shape "
                    f"({len(self.inductors)},), got {ind_i.shape}"
                )

        time = np.zeros(steps + 1)
        recorded: Dict[str, List[float]] = {label: [] for label in probes}
        solution = None
        for k in range(steps + 1):
            t = k * self.dt
            time[k] = t
            loads = (
                np.asarray(load_currents(t), dtype=float)
                if load_currents is not None
                else base_values
            )
            if loads.shape != (n_orig,):
                raise ValueError(
                    f"load_currents must return shape ({n_orig},), got {loads.shape}"
                )
            hist_c = cap_v * np.array(
                [c.capacitance / self.dt for c in self.capacitors]
            )
            hist_l = ind_i
            overrides = np.concatenate([loads, hist_c, hist_l])
            solution = self._assembled.solve(SolveRequest(isource_current=overrides))
            volts = solution.node_voltage
            cap_v = np.array([volts[a] - volts[b] for a, b in self._cap_nodes])
            ind_i = hist_l + np.array(
                [
                    (volts[a] - volts[b]) / (ind.inductance / self.dt)
                    for (a, b), ind in zip(self._ind_nodes, self.inductors)
                ]
            )
            for label, key in probes.items():
                recorded[label].append(solution.voltage(key))
        return TransientTrace(
            time=time,
            probes={label: np.array(vals) for label, vals in recorded.items()},
        )
