"""Analytical component-level power model ("McPAT-lite").

McPAT estimates per-component dynamic energy from switched capacitance
and leakage from device geometry.  For a PDN study only the resulting
per-block power densities matter, so this substitute models each core
component with:

* an area fraction of the core tile,
* a switched-capacitance weight (relative share of core C_eff), and
* a leakage density weight.

A global effective capacitance is then calibrated so that the whole core
hits the published peak power split (`ProcessorSpec.dynamic_fraction`
dynamic at full activity plus the leakage floor).  Per-component dynamic
power follows ``P_i = w_i * C_eff * Vdd^2 * f * activity`` — the McPAT
formula with the technology detail folded into the calibrated weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config.stackups import ProcessorSpec
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class ComponentSpec:
    """One architectural component of a core tile."""

    #: Component name (floorplan block name).
    name: str
    #: Fraction of the core tile's area.
    area_fraction: float
    #: Relative share of the core's switched capacitance (dynamic power).
    dynamic_weight: float
    #: Relative share of the core's leakage power.
    leakage_weight: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        check_fraction("area_fraction", self.area_fraction)
        if self.dynamic_weight < 0 or self.leakage_weight < 0:
            raise ValueError("weights must be non-negative")


#: A Cortex-A9-class core tile (dual-issue OoO, VFP/NEON, 32K+32K L1,
#: shared slice of a 1 MB L2).  Area fractions follow the ARM/McPAT
#: breakdown of an A9 hard macro; weights give the familiar result that
#: datapath and L1s dominate dynamic power while L2 dominates leakage.
DEFAULT_CORE_COMPONENTS: Sequence[ComponentSpec] = (
    ComponentSpec("ifu", area_fraction=0.10, dynamic_weight=0.14, leakage_weight=0.08),
    ComponentSpec("decode", area_fraction=0.06, dynamic_weight=0.08, leakage_weight=0.04),
    ComponentSpec("rename_rob", area_fraction=0.07, dynamic_weight=0.10, leakage_weight=0.06),
    ComponentSpec("int_exe", area_fraction=0.12, dynamic_weight=0.20, leakage_weight=0.10),
    ComponentSpec("fpu_neon", area_fraction=0.13, dynamic_weight=0.12, leakage_weight=0.10),
    ComponentSpec("lsu", area_fraction=0.08, dynamic_weight=0.11, leakage_weight=0.07),
    ComponentSpec("l1i", area_fraction=0.09, dynamic_weight=0.07, leakage_weight=0.10),
    ComponentSpec("l1d", area_fraction=0.09, dynamic_weight=0.09, leakage_weight=0.10),
    ComponentSpec("l2_slice", area_fraction=0.20, dynamic_weight=0.05, leakage_weight=0.28),
    ComponentSpec("noc_uncore", area_fraction=0.06, dynamic_weight=0.04, leakage_weight=0.07),
)


class CorePowerModel:
    """Calibrated per-component power for one core tile.

    Parameters
    ----------
    processor:
        The layer-level spec providing Vdd, frequency and the peak-power
        calibration anchors.
    components:
        Component mix; area fractions must sum to ~1.
    """

    def __init__(
        self,
        processor: ProcessorSpec,
        components: Sequence[ComponentSpec] = DEFAULT_CORE_COMPONENTS,
    ):
        total_area_fraction = sum(c.area_fraction for c in components)
        if abs(total_area_fraction - 1.0) > 1e-6:
            raise ValueError(
                f"component area fractions must sum to 1, got {total_area_fraction}"
            )
        if not components:
            raise ValueError("components must be non-empty")
        self.processor = processor
        self.components = tuple(components)
        dyn_total_weight = sum(c.dynamic_weight for c in components)
        leak_total_weight = sum(c.leakage_weight for c in components)
        if dyn_total_weight <= 0 or leak_total_weight <= 0:
            raise ValueError("total dynamic and leakage weights must be positive")
        core_peak = processor.peak_core_power
        self._dynamic_peak = core_peak * processor.dynamic_fraction
        self._leakage = core_peak * (1.0 - processor.dynamic_fraction)
        # Calibrated effective switched capacitance of the whole core:
        # P_dyn = C_eff * Vdd^2 * f at activity 1.
        self.core_effective_capacitance = self._dynamic_peak / (
            processor.vdd**2 * processor.frequency
        )
        self._dyn_share = {
            c.name: c.dynamic_weight / dyn_total_weight for c in components
        }
        self._leak_share = {
            c.name: c.leakage_weight / leak_total_weight for c in components
        }

    # ------------------------------------------------------------------
    def core_power(self, activity: float = 1.0) -> float:
        """Total core power (W) at the given dynamic activity factor."""
        check_fraction("activity", activity)
        return self._leakage + activity * self._dynamic_peak

    def component_powers(self, activity: float = 1.0) -> Dict[str, float]:
        """Per-component power (W) at the given activity factor."""
        check_fraction("activity", activity)
        return {
            c.name: (
                self._leakage * self._leak_share[c.name]
                + activity * self._dynamic_peak * self._dyn_share[c.name]
            )
            for c in self.components
        }

    def component_areas(self, core_area: float) -> Dict[str, float]:
        """Per-component areas (m^2) for a core tile of ``core_area``."""
        check_positive("core_area", core_area)
        return {c.name: c.area_fraction * core_area for c in self.components}

    @property
    def peak_dynamic_power(self) -> float:
        """Core dynamic power at activity 1 (W)."""
        return self._dynamic_peak

    @property
    def leakage_power(self) -> float:
        """Core leakage power — the idle floor (W)."""
        return self._leakage


def build_core_power_model(
    processor: Optional[ProcessorSpec] = None,
    components: Sequence[ComponentSpec] = DEFAULT_CORE_COMPONENTS,
) -> CorePowerModel:
    """Convenience constructor with the paper's default processor."""
    return CorePowerModel(processor or ProcessorSpec(), components)
