"""Power maps: per-grid-cell power for one silicon layer.

The PDN and thermal models consume a ``PowerMap``: a ``g x g`` array of
watts aligned with the model grid over the die.  Maps are built either
uniformly (fast, used in sweeps) or by rasterising a floorplan's block
powers with exact area weighting (used when spatial detail matters).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.config.stackups import StackConfig
from repro.errors import ReproError
from repro.floorplan.blocks import Rect
from repro.power.mcpat_lite import CorePowerModel
from repro.utils.validation import check_fraction, check_positive, check_positive_int


class PowerMap:
    """A ``g x g`` grid of per-cell power (W) covering a square die."""

    def __init__(self, cell_power: np.ndarray, die_side: float):
        cell_power = np.asarray(cell_power, dtype=float)
        if cell_power.ndim != 2 or cell_power.shape[0] != cell_power.shape[1]:
            raise ValueError(f"cell_power must be square 2-D, got {cell_power.shape}")
        if not np.all(np.isfinite(cell_power)):
            raise ValueError("cell powers must be finite (NaN/Inf in power map)")
        if np.any(cell_power < 0):
            raise ValueError("cell powers must be non-negative")
        check_positive("die_side", die_side)
        self.cell_power = cell_power
        self.die_side = die_side

    # ------------------------------------------------------------------
    @property
    def grid_nodes(self) -> int:
        return self.cell_power.shape[0]

    @property
    def cell_size(self) -> float:
        return self.die_side / self.grid_nodes

    @property
    def total_power(self) -> float:
        """Total layer power (W)."""
        return float(self.cell_power.sum())

    def currents(self, vdd: float) -> np.ndarray:
        """Per-cell load current (A) under the constant-current model."""
        check_positive("vdd", vdd)
        return self.cell_power / vdd

    def scaled(self, factor: float) -> "PowerMap":
        """A new map with every cell multiplied by ``factor`` >= 0."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return PowerMap(self.cell_power * factor, self.die_side)

    def power_density(self) -> np.ndarray:
        """Per-cell power density (W/m^2)."""
        return self.cell_power / (self.cell_size**2)

    def __add__(self, other: "PowerMap") -> "PowerMap":
        if (
            other.grid_nodes != self.grid_nodes
            or abs(other.die_side - self.die_side) > 1e-12
        ):
            raise ValueError("power maps must share grid and die size to add")
        return PowerMap(self.cell_power + other.cell_power, self.die_side)


def uniform_power_map(
    total_power: float, die_side: float, grid_nodes: int
) -> PowerMap:
    """Spread ``total_power`` uniformly over the die."""
    check_positive("total_power", total_power) if total_power > 0 else None
    if total_power < 0:
        raise ValueError("total_power must be >= 0")
    check_positive("die_side", die_side)
    check_positive_int("grid_nodes", grid_nodes)
    cells = np.full((grid_nodes, grid_nodes), total_power / grid_nodes**2)
    return PowerMap(cells, die_side)


def rasterize_blocks(
    block_rects: Mapping[str, Rect],
    block_powers: Mapping[str, float],
    die_side: float,
    grid_nodes: int,
) -> PowerMap:
    """Rasterise block powers onto the grid with exact area weighting.

    Each block's power is distributed over grid cells in proportion to
    the block/cell overlap area, so the map total equals the sum of block
    powers regardless of resolution.
    """
    check_positive("die_side", die_side)
    check_positive_int("grid_nodes", grid_nodes)
    cell = die_side / grid_nodes
    grid = np.zeros((grid_nodes, grid_nodes))
    for name, power in block_powers.items():
        if not np.isfinite(power):
            raise ReproError(f"block {name!r} has NaN/Inf power")
        if power < 0:
            raise ValueError(f"block {name!r} has negative power")
        if name not in block_rects:
            raise KeyError(f"no rectangle for block {name!r}")
        rect = block_rects[name]
        if rect.area <= 0:
            continue
        density = power / rect.area
        # Cell index ranges the rectangle can overlap.
        i_lo = max(0, int(np.floor(rect.x / cell)))
        i_hi = min(grid_nodes - 1, int(np.ceil(rect.x2 / cell)) - 1)
        j_lo = max(0, int(np.floor(rect.y / cell)))
        j_hi = min(grid_nodes - 1, int(np.ceil(rect.y2 / cell)) - 1)
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                cell_rect = Rect(i * cell, j * cell, cell, cell)
                overlap = rect.overlap_area(cell_rect)
                if overlap > 0:
                    grid[j, i] += density * overlap
    return PowerMap(grid, die_side)


def layer_power_map(
    stack: StackConfig,
    activity: float = 1.0,
    core_activities: Optional[np.ndarray] = None,
    core_model: Optional[CorePowerModel] = None,
    floorplanned: bool = False,
) -> PowerMap:
    """Power map of one silicon layer of the example processor.

    Parameters
    ----------
    stack:
        The stack configuration (grid resolution, processor spec).
    activity:
        Dynamic activity factor applied to every core (ignored for cores
        covered by ``core_activities``).
    core_activities:
        Optional per-core activity factors, length ``core_count``, laid
        out row-major over the core grid.
    core_model:
        Component power model; defaults to the calibrated A9-class model.
    floorplanned:
        If True, rasterise component-level block powers through the
        ArchFP-lite floorplan (slower, spatially detailed).  If False,
        spread each core's power uniformly over its tile.
    """
    from repro.floorplan.slicing import floorplan_blocks
    from repro.floorplan.blocks import Block

    processor = stack.processor
    model = core_model or CorePowerModel(processor)
    rows = cols = int(round(np.sqrt(processor.core_count)))
    if rows * cols != processor.core_count:
        raise ValueError("core_count must be a perfect square for the tile layout")
    if core_activities is None:
        check_fraction("activity", activity)
        core_activities = np.full(processor.core_count, activity)
    core_activities = np.asarray(core_activities, dtype=float)
    if core_activities.shape != (processor.core_count,):
        raise ValueError(
            f"core_activities must have shape ({processor.core_count},), "
            f"got {core_activities.shape}"
        )
    bad = np.flatnonzero(~np.isfinite(core_activities))
    if bad.size:
        raise ReproError(f"core_activities[{int(bad[0])}] is NaN/Inf (core {int(bad[0])})")
    if np.any((core_activities < 0) | (core_activities > 1)):
        raise ValueError("core activities must lie in [0, 1]")

    die_side = processor.die_side
    g = stack.grid_nodes
    grid = np.zeros((g, g))
    tile = die_side / rows
    if floorplanned:
        core_blocks = [
            Block(c.name, c.area_fraction * processor.core_area)
            for c in model.components
        ]
        rects: Dict[str, Rect] = {}
        powers: Dict[str, float] = {}
        for r in range(rows):
            for c in range(cols):
                outline = Rect(c * tile, r * tile, tile, tile)
                placed = floorplan_blocks(core_blocks, outline)
                comp_power = model.component_powers(core_activities[r * cols + c])
                for name, rect in placed.items():
                    key = f"core{r}_{c}.{name}"
                    rects[key] = rect
                    powers[key] = comp_power[name]
        return rasterize_blocks(rects, powers, die_side, g)

    # Uniform-per-core fast path: accumulate each core tile's power over
    # the cells it covers (grid_nodes need not divide evenly by rows).
    cell = die_side / g
    for r in range(rows):
        for c in range(cols):
            power = model.core_power(core_activities[r * cols + c])
            outline = Rect(c * tile, r * tile, tile, tile)
            density = power / outline.area
            i_lo = max(0, int(np.floor(outline.x / cell)))
            i_hi = min(g - 1, int(np.ceil(outline.x2 / cell)) - 1)
            j_lo = max(0, int(np.floor(outline.y / cell)))
            j_hi = min(g - 1, int(np.ceil(outline.y2 / cell)) - 1)
            for i in range(i_lo, i_hi + 1):
                for j in range(j_lo, j_hi + 1):
                    cell_rect = Rect(i * cell, j * cell, cell, cell)
                    overlap = outline.overlap_area(cell_rect)
                    if overlap > 0:
                        grid[j, i] += density * overlap
    return PowerMap(grid, die_side)
