"""Leakage-temperature feedback — a cross-layer extension.

Leakage power grows roughly exponentially with temperature; temperature
grows with power.  For tall stacks this loop materially raises the
effective power the PDN must deliver (and can diverge — thermal
runaway).  This module iterates McPAT-lite power maps against the
HotSpot-lite solver until the temperature field converges, yielding
self-consistent power maps for the PDN and EM analyses.

The iteration runs on the shared hardened driver
(:func:`repro.contracts.fixedpoint.fixed_point`).  Two failure policies
are offered: ``policy="raise"`` (default, legacy behaviour) raises
:class:`ThermalRunawayError`; ``policy="degrade"`` returns the
best-residual iterate flagged ``degraded=True`` with the residual trace
— for feasibility screens that must survey unstable stackups without
crashing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.config.stackups import StackConfig
from repro.contracts.fixedpoint import FixedPointDivergence, fixed_point
from repro.errors import ConvergenceError
from repro.power.powermap import PowerMap, layer_power_map
from repro.thermal.grid3d import HotSpotLite, ThermalConfig, ThermalResult
from repro.utils.validation import check_positive, check_positive_int


class ThermalRunawayError(ConvergenceError):
    """The leakage-temperature loop failed to converge (divergence).

    A :class:`repro.errors.ConvergenceError` subclass (and therefore a
    ``RuntimeError``, preserving historical except clauses).
    """


@dataclass
class CoupledOperatingPoint:
    """Electro-thermal state of one stack workload.

    ``converged`` / ``degraded`` distinguish a true fixed point from a
    best-effort iterate returned under ``policy="degrade"``; degraded
    points carry the residual trace and must be surfaced by consumers,
    not averaged in.
    """

    #: Self-consistent per-layer power maps (W per cell).
    power_maps: List[PowerMap]
    #: Temperature field at convergence.
    thermal: ThermalResult
    #: Iterations used.
    iterations: int
    #: Total stack power at the characterisation temperature (W).
    nominal_power: float
    #: Whether the loop met its tolerance.
    converged: bool = True
    #: True when this is the best-residual iterate of a failed loop.
    degraded: bool = False
    #: Hotspot-delta residual (K) per iteration.
    residual_trace: List[float] = field(default_factory=list)

    @property
    def total_power(self) -> float:
        return sum(m.total_power for m in self.power_maps)

    @property
    def leakage_uplift(self) -> float:
        """Fractional increase of total power over the nominal value."""
        return self.total_power / self.nominal_power - 1.0


class LeakageThermalLoop:
    """Fixed-point iteration of leakage(T) against the thermal solver.

    Parameters
    ----------
    stack:
        The 3D stack to evaluate.
    thermal_config:
        Cooling/material parameters (defaults to the air-cooled setup).
    leakage_temp_coefficient:
        Exponential leakage sensitivity beta (1/K):
        ``P_leak(T) = P_leak(T_char) * exp(beta * (T - T_char))``.
        ~0.02/K doubles leakage every ~35 K, typical of 40 nm LP.
    characterisation_temperature:
        Temperature (C) at which the McPAT-lite leakage numbers hold.
    """

    def __init__(
        self,
        stack: StackConfig,
        thermal_config: Optional[ThermalConfig] = None,
        leakage_temp_coefficient: float = 0.02,
        characterisation_temperature: float = 85.0,
        floorplanned: bool = False,
    ):
        check_positive("leakage_temp_coefficient", leakage_temp_coefficient)
        self.stack = stack
        self.solver = HotSpotLite(stack, thermal_config)
        self.beta = leakage_temp_coefficient
        self.t_char = characterisation_temperature
        # Decompose the nominal maps once: leakage and dynamic parts.
        # ``floorplanned`` rasterises component-level densities for
        # spatially detailed hotspots (slower to build).
        self._leak_map = layer_power_map(stack, activity=0.0, floorplanned=floorplanned)
        full = layer_power_map(stack, activity=1.0, floorplanned=floorplanned)
        self._dyn_cells = full.cell_power - self._leak_map.cell_power

    # ------------------------------------------------------------------
    def _power_maps_at(
        self, activities: np.ndarray, temperatures: Optional[List[np.ndarray]]
    ) -> List[PowerMap]:
        maps = []
        for layer, activity in enumerate(activities):
            leak = self._leak_map.cell_power.copy()
            if temperatures is not None:
                factor = np.exp(self.beta * (temperatures[layer] - self.t_char))
                leak = leak * factor
            cells = leak + activity * self._dyn_cells
            maps.append(PowerMap(cells, self._leak_map.die_side))
        return maps

    def converge(
        self,
        layer_activities: Optional[np.ndarray] = None,
        max_iterations: int = 25,
        tolerance_kelvin: float = 0.05,
        policy: str = "raise",
    ) -> CoupledOperatingPoint:
        """Iterate to the self-consistent (power, temperature) point.

        ``policy="raise"`` (default) raises :class:`ThermalRunawayError`
        when the loop diverges or fails to settle within
        ``max_iterations``; ``policy="degrade"`` instead returns the
        best-residual iterate flagged ``degraded=True``.
        """
        check_positive_int("max_iterations", max_iterations)
        check_positive("tolerance_kelvin", tolerance_kelvin)
        if policy not in ("raise", "degrade"):
            raise ValueError('policy must be "raise" or "degrade"')
        n = self.stack.n_layers
        if layer_activities is None:
            layer_activities = np.ones(n)
        layer_activities = np.asarray(layer_activities, dtype=float)
        if layer_activities.shape != (n,):
            raise ValueError(f"layer_activities must have shape ({n},)")

        nominal_maps = self._power_maps_at(layer_activities, None)
        nominal_power = sum(m.total_power for m in nominal_maps)
        cells = self._leak_map.cell_power.shape

        payloads: List[Tuple[List[PowerMap], ThermalResult]] = []
        hotspots: List[float] = []

        def step(flat_temperatures: np.ndarray) -> np.ndarray:
            temperatures = [
                layer.reshape(cells)
                for layer in np.split(flat_temperatures, n)
            ]
            maps = self._power_maps_at(layer_activities, temperatures)
            iteration = len(payloads) + 1
            if sum(m.total_power for m in maps) > 10.0 * nominal_power:
                raise FixedPointDivergence(
                    f"leakage exploded to >10x nominal after {iteration} iterations"
                )
            thermal = self.solver.solve(power_maps=maps)
            payloads.append((maps, thermal))
            hotspots.append(thermal.hotspot)
            return np.concatenate([t.ravel() for t in thermal.layer_temperatures])

        def hotspot_residual(x_new: np.ndarray, x_old: np.ndarray) -> float:
            # The legacy convergence metric: |hotspot_k - hotspot_{k-1}|.
            if len(hotspots) < 2:
                return np.inf
            return abs(hotspots[-1] - hotspots[-2])

        # A t_char-filled start field reproduces the legacy
        # ``temperatures=None`` first iteration (leakage factor exp(0)=1).
        x0 = np.full(n * cells[0] * cells[1], self.t_char)
        fp = fixed_point(
            step,
            x0,
            tolerance=tolerance_kelvin,
            max_iterations=max_iterations,
            min_iterations=2,
            residual_fn=hotspot_residual,
            on_failure="degrade",
        )

        if fp.converged:
            maps, thermal = payloads[fp.best_iteration - 1]
            return CoupledOperatingPoint(
                power_maps=maps,
                thermal=thermal,
                iterations=fp.best_iteration,
                nominal_power=nominal_power,
                converged=True,
                residual_trace=list(fp.residual_trace),
            )

        if policy == "raise":
            if fp.diverged and fp.reason.startswith("leakage exploded"):
                raise ThermalRunawayError(fp.reason)
            last_hotspot = hotspots[-1] if hotspots else float("nan")
            raise ThermalRunawayError(
                f"no convergence within {max_iterations} iterations "
                f"(last hotspot {last_hotspot:.1f} C)"
            )

        # Graceful degradation: best-residual iterate, flagged.
        if not payloads:
            # Divergence before any thermal solve completed (cannot
            # happen from the runaway guard, which needs one iteration
            # of feedback, but kept as a safety net): report the
            # nominal-power state.
            thermal = self.solver.solve(power_maps=nominal_maps)
            payloads.append((nominal_maps, thermal))
        best = min(fp.best_iteration - 1, len(payloads) - 1) if fp.best_iteration else -1
        maps, thermal = payloads[best]
        return CoupledOperatingPoint(
            power_maps=maps,
            thermal=thermal,
            iterations=len(payloads),
            nominal_power=nominal_power,
            converged=False,
            degraded=True,
            residual_trace=list(fp.residual_trace),
        )
