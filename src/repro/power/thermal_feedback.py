"""Leakage-temperature feedback — a cross-layer extension.

Leakage power grows roughly exponentially with temperature; temperature
grows with power.  For tall stacks this loop materially raises the
effective power the PDN must deliver (and can diverge — thermal
runaway).  This module iterates McPAT-lite power maps against the
HotSpot-lite solver until the temperature field converges, yielding
self-consistent power maps for the PDN and EM analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config.stackups import StackConfig
from repro.power.powermap import PowerMap, layer_power_map
from repro.thermal.grid3d import HotSpotLite, ThermalConfig, ThermalResult
from repro.utils.validation import check_positive, check_positive_int


class ThermalRunawayError(RuntimeError):
    """The leakage-temperature loop failed to converge (divergence)."""


@dataclass
class CoupledOperatingPoint:
    """Converged electro-thermal state of one stack workload."""

    #: Self-consistent per-layer power maps (W per cell).
    power_maps: List[PowerMap]
    #: Temperature field at convergence.
    thermal: ThermalResult
    #: Iterations used.
    iterations: int
    #: Total stack power at the characterisation temperature (W).
    nominal_power: float

    @property
    def total_power(self) -> float:
        return sum(m.total_power for m in self.power_maps)

    @property
    def leakage_uplift(self) -> float:
        """Fractional increase of total power over the nominal value."""
        return self.total_power / self.nominal_power - 1.0


class LeakageThermalLoop:
    """Fixed-point iteration of leakage(T) against the thermal solver.

    Parameters
    ----------
    stack:
        The 3D stack to evaluate.
    thermal_config:
        Cooling/material parameters (defaults to the air-cooled setup).
    leakage_temp_coefficient:
        Exponential leakage sensitivity beta (1/K):
        ``P_leak(T) = P_leak(T_char) * exp(beta * (T - T_char))``.
        ~0.02/K doubles leakage every ~35 K, typical of 40 nm LP.
    characterisation_temperature:
        Temperature (C) at which the McPAT-lite leakage numbers hold.
    """

    def __init__(
        self,
        stack: StackConfig,
        thermal_config: Optional[ThermalConfig] = None,
        leakage_temp_coefficient: float = 0.02,
        characterisation_temperature: float = 85.0,
        floorplanned: bool = False,
    ):
        check_positive("leakage_temp_coefficient", leakage_temp_coefficient)
        self.stack = stack
        self.solver = HotSpotLite(stack, thermal_config)
        self.beta = leakage_temp_coefficient
        self.t_char = characterisation_temperature
        # Decompose the nominal maps once: leakage and dynamic parts.
        # ``floorplanned`` rasterises component-level densities for
        # spatially detailed hotspots (slower to build).
        self._leak_map = layer_power_map(stack, activity=0.0, floorplanned=floorplanned)
        full = layer_power_map(stack, activity=1.0, floorplanned=floorplanned)
        self._dyn_cells = full.cell_power - self._leak_map.cell_power

    # ------------------------------------------------------------------
    def _power_maps_at(
        self, activities: np.ndarray, temperatures: Optional[List[np.ndarray]]
    ) -> List[PowerMap]:
        maps = []
        for layer, activity in enumerate(activities):
            leak = self._leak_map.cell_power.copy()
            if temperatures is not None:
                factor = np.exp(self.beta * (temperatures[layer] - self.t_char))
                leak = leak * factor
            cells = leak + activity * self._dyn_cells
            maps.append(PowerMap(cells, self._leak_map.die_side))
        return maps

    def converge(
        self,
        layer_activities: Optional[np.ndarray] = None,
        max_iterations: int = 25,
        tolerance_kelvin: float = 0.05,
    ) -> CoupledOperatingPoint:
        """Iterate to the self-consistent (power, temperature) point.

        Raises :class:`ThermalRunawayError` when the loop diverges or
        fails to settle within ``max_iterations``.
        """
        check_positive_int("max_iterations", max_iterations)
        check_positive("tolerance_kelvin", tolerance_kelvin)
        n = self.stack.n_layers
        if layer_activities is None:
            layer_activities = np.ones(n)
        layer_activities = np.asarray(layer_activities, dtype=float)
        if layer_activities.shape != (n,):
            raise ValueError(f"layer_activities must have shape ({n},)")

        nominal_maps = self._power_maps_at(layer_activities, None)
        nominal_power = sum(m.total_power for m in nominal_maps)
        temperatures: Optional[List[np.ndarray]] = None
        previous_hotspot = None
        maps = nominal_maps
        thermal = None
        for iteration in range(1, max_iterations + 1):
            maps = self._power_maps_at(layer_activities, temperatures)
            if sum(m.total_power for m in maps) > 10.0 * nominal_power:
                raise ThermalRunawayError(
                    f"leakage exploded to >10x nominal after {iteration} iterations"
                )
            thermal = self.solver.solve(power_maps=maps)
            hotspot = thermal.hotspot
            if previous_hotspot is not None and abs(hotspot - previous_hotspot) < tolerance_kelvin:
                return CoupledOperatingPoint(
                    power_maps=maps,
                    thermal=thermal,
                    iterations=iteration,
                    nominal_power=nominal_power,
                )
            previous_hotspot = hotspot
            temperatures = thermal.layer_temperatures
        raise ThermalRunawayError(
            f"no convergence within {max_iterations} iterations "
            f"(last hotspot {previous_hotspot:.1f} C)"
        )
