"""McPAT-lite: analytical power/area modeling of the example processor.

The paper derives its 16-core layer's power and area with McPAT (Li et
al., MICRO 2009) for a 40 nm dual-core ARM Cortex-A9 at 1 GHz / 1 V:
7.6 W peak and 44.12 mm^2 for the 16-core layer.  This package provides a
component-level analytical substitute calibrated to those anchors, plus
the rasterisation of floorplanned block powers onto the PDN model grid.
"""

from repro.power.mcpat_lite import (
    ComponentSpec,
    CorePowerModel,
    DEFAULT_CORE_COMPONENTS,
    build_core_power_model,
)
from repro.power.powermap import PowerMap, layer_power_map, uniform_power_map
from repro.power.thermal_feedback import (
    CoupledOperatingPoint,
    LeakageThermalLoop,
    ThermalRunawayError,
)

__all__ = [
    "CoupledOperatingPoint",
    "LeakageThermalLoop",
    "ThermalRunawayError",
    "ComponentSpec",
    "CorePowerModel",
    "DEFAULT_CORE_COMPONENTS",
    "build_core_power_model",
    "PowerMap",
    "layer_power_map",
    "uniform_power_map",
]
