"""Synchronous client for the exploration service wire protocol.

A thin blocking socket client (stdlib only, like the fleet worker's
transport): one JSON object per line out, one per line back.  Used by
``repro query``, the service e2e tests and ``scripts/service_check.py``;
it is also the reference implementation of the protocol documented in
docs/SERVICE.md.

The HA entry point is :func:`robust_query`: it reads every replica the
discovery file names (:func:`discover_addresses`), tries them in order
with the overall deadline sliced across the attempts, retries typed
429/503 sheds honouring the server's ``retry_after_s`` hint, and raises
a one-line :class:`repro.errors.ServiceUnavailableError` naming the
stale ``service.json`` when every address is dead — a SIGKILLed server
never deregisters, so liveness is probed, never assumed.
"""

from __future__ import annotations

import json
import pathlib
import socket
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import (
    ReproError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.obs.logs import get_logger
from repro.runtime.fleet import parse_address
from repro.runtime.spec import PDNSpec
from repro.service.admission import Deadline

__all__ = [
    "ServiceClient",
    "connect_any",
    "discover_address",
    "discover_addresses",
    "robust_query",
]

_log = get_logger(__name__)

#: Statuses worth retrying: the server said "come back later".
_RETRYABLE_CODES = (429, 503)

#: Floor between retries when the server gives no ``retry_after_s``.
_RETRY_FLOOR_S = 0.1


def discover_addresses(
    cache_dir: Union[str, pathlib.Path]
) -> Tuple[pathlib.Path, List[str]]:
    """All replica addresses from ``service.json``, registration order.

    Understands both the HA layout (a ``replicas`` list) and the pre-HA
    single-server one (top-level ``address``).  Raises a typed
    :class:`ServiceUnavailableError` naming the file when it is missing
    or unreadable.  The addresses are *candidates*: a stale file can
    name dead servers, so callers must probe (see :func:`robust_query`).
    """
    from repro.service.replica import load_discovery

    path, record = load_discovery(cache_dir)
    if record is None:
        raise ServiceUnavailableError(
            f"no service discovery file at {path}; "
            "is a server running with this --cache-dir?",
            path=str(path),
        )
    addresses: List[str] = []
    for replica in record.get("replicas") or []:
        if isinstance(replica, dict) and replica.get("address"):
            addresses.append(str(replica["address"]))
    if not addresses and record.get("address"):
        addresses.append(str(record["address"]))
    if not addresses:
        raise ServiceUnavailableError(
            f"service discovery file {path} names no replica addresses",
            path=str(path),
        )
    return path, addresses


def discover_address(cache_dir: Union[str, pathlib.Path]) -> str:
    """The first discovered replica address (pre-HA compatible helper).

    Lets clients find a port-0 server: ``repro serve --bind 127.0.0.1:0
    --cache-dir D`` publishes its ephemeral port into ``D/service.json``.
    """
    _, addresses = discover_addresses(cache_dir)
    return addresses[0]


def connect_any(
    addresses: List[str],
    timeout_s: float = 60.0,
    path: Optional[Union[str, pathlib.Path]] = None,
) -> "ServiceClient":
    """Connect to the first reachable address, in order.

    Raises :class:`ServiceUnavailableError` naming the discovery file
    (when given) and the dead addresses if none accepts a connection.
    """
    errors: List[str] = []
    for address in addresses:
        try:
            return ServiceClient(address, timeout_s=timeout_s)
        except OSError as exc:
            errors.append(f"{address}: {exc}")
    raise ServiceUnavailableError(
        "no live service replica among "
        f"{addresses}"
        + (f" (stale discovery file {path}?)" if path else "")
        + f": {'; '.join(errors)}",
        path=str(path) if path else None,
        addresses=addresses,
    )


class ServiceClient:
    """One connection to a running exploration service.

    Context-manager friendly; requests on one client are sequential
    (the server answers a connection's requests in order).  Open one
    client per concurrent in-flight query.
    """

    def __init__(self, address: str, timeout_s: float = 60.0):
        self.address = address
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, block for its response object."""
        self._file.write((json.dumps(message) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError(
                f"service at {self.address} closed the connection "
                "without answering"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceProtocolError(
                f"unparsable service response: {exc.msg}"
            ) from None
        if not isinstance(response, dict):
            raise ServiceProtocolError(
                f"service response must be an object, got "
                f"{type(response).__name__}"
            )
        return response

    # ------------------------------------------------------------------
    def query(
        self,
        spec: Union[PDNSpec, Dict[str, Any]],
        activities: Optional[List[float]] = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Submit one design-point query; returns the response envelope.

        The response is returned as-is — including typed error
        envelopes (``kind: "error"`` with ``status``/``code``/
        ``error_type``) — so callers can distinguish a shed from a
        deadline from a degraded answer.

        While tracing is enabled the TCP hop runs inside a
        ``service.client`` span and the request carries a ``trace``
        envelope (``{"id", "parent"}``): the replica anchors its own
        spans under this one, so ``repro trace`` reassembles one tree
        spanning client, replica, and any fleet workers.  A client that
        is not already inside a trace mints a fresh trace id here.
        """
        from repro.obs.trace import get_tracer, new_trace_id

        if isinstance(spec, PDNSpec):
            spec = spec.to_dict()
        message: Dict[str, Any] = {"kind": "query", "spec": spec}
        if activities is not None:
            message["activities"] = list(activities)
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if request_id is not None:
            message["id"] = request_id
        tracer = get_tracer()
        if not tracer.enabled:
            return self.request(message)
        trace_id = tracer.current_trace_id() or new_trace_id()
        if tracer.trace_id is None:
            # Name this process's trace after the minted id so the CLI's
            # exit-time flush lands in trace-<id>.jsonl, not trace-cli.
            tracer.set_trace_id(trace_id)
        with tracer.span(
            "service.client", address=self.address, transport="tcp"
        ) as hop:
            hop.trace_id = hop.trace_id or trace_id
            message["trace"] = {"id": trace_id, "parent": hop.span_id}
            response = self.request(message)
            hop.set(
                status=response.get("status"),
                code=response.get("code"),
                cached=response.get("cached", False),
            )
        return response

    def health(self) -> Dict[str, Any]:
        return self.request({"kind": "health"})

    def ready(self) -> Dict[str, Any]:
        return self.request({"kind": "ready"})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"kind": "metrics"})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request({"kind": "shutdown", "drain": drain})


# ----------------------------------------------------------------------
# HA query path: failover across replicas + shed-aware retries
# ----------------------------------------------------------------------

def _attempt_timeout(
    deadline: Deadline, addresses_left: int, client_timeout_s: float
) -> Optional[float]:
    """Slice the remaining deadline across the addresses still untried.

    With no overall deadline the per-attempt cap is the client timeout;
    with one, each attempt gets an equal share of what is left so one
    black-holed replica cannot eat the entire budget.
    """
    remaining = deadline.remaining_s()
    if remaining is None:
        return client_timeout_s
    slice_s = remaining / max(1, addresses_left)
    return max(0.05, min(client_timeout_s, slice_s))


def robust_query(
    spec: Union[PDNSpec, Dict[str, Any]],
    addresses: Optional[List[str]] = None,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    activities: Optional[List[float]] = None,
    deadline_s: Optional[float] = None,
    retries: int = 0,
    client_timeout_s: float = 120.0,
    request_id: Optional[Any] = None,
    discovery_path: Optional[Union[str, pathlib.Path]] = None,
) -> Dict[str, Any]:
    """Query with replica failover and bounded, hint-honouring retries.

    Addresses come from ``addresses`` (explicit, e.g. ``--connect``) or
    the ``cache_dir`` discovery file; callers that already discovered
    pass ``discovery_path`` so exhaustion errors still name the stale
    file.  Each round walks the replicas in
    order; a transport failure moves to the next address, and a typed
    429/503 envelope consumes one of ``retries`` with a backoff of
    ``max(retry_after_s, 0.1s)`` — clamped so the sleep never outlives
    ``deadline_s``.  The final envelope (success *or* typed error) is
    returned for the caller to render; only transport-level exhaustion
    raises, as :class:`ServiceUnavailableError`.
    """
    path: Optional[pathlib.Path] = (
        pathlib.Path(discovery_path) if discovery_path else None
    )
    if addresses is None:
        if cache_dir is None:
            raise ServiceUnavailableError(
                "robust_query needs addresses or a cache_dir to discover"
            )
        path, addresses = discover_addresses(cache_dir)
    if not addresses:
        raise ServiceUnavailableError(
            "no service addresses to query",
            path=str(path) if path else None,
        )
    deadline = Deadline.after(deadline_s)
    retries_left = max(0, int(retries))
    response: Optional[Dict[str, Any]] = None
    while True:
        dead: List[str] = []
        response = None
        for position, address in enumerate(addresses):
            timeout = _attempt_timeout(
                deadline, len(addresses) - position, client_timeout_s
            )
            try:
                with ServiceClient(address, timeout_s=timeout) as client:
                    response = client.query(
                        spec,
                        activities=activities,
                        deadline_s=deadline.remaining_s(),
                        request_id=request_id,
                    )
            except (OSError, ReproError) as exc:
                # Dead or mid-answer-dying replica: fail over.  Typed
                # protocol errors are *not* transport trouble and
                # propagate (retrying a malformed exchange is hopeless).
                if isinstance(exc, ServiceProtocolError):
                    raise
                dead.append(f"{address}: {exc}")
                _log.warning(
                    "service replica unreachable; failing over",
                    extra={"address": address, "error": str(exc)},
                )
                continue
            break
        if response is None:
            raise ServiceUnavailableError(
                f"no live service replica among {addresses}"
                + (f" (stale discovery file {path}?)" if path else "")
                + f": {'; '.join(dead)}",
                path=str(path) if path else None,
                addresses=addresses,
            )
        code = response.get("code")
        if code not in _RETRYABLE_CODES or retries_left <= 0:
            return response
        retries_left -= 1
        hint = response.get("retry_after_s")
        backoff = max(_RETRY_FLOOR_S, float(hint or 0.0))
        remaining = deadline.remaining_s()
        if remaining is not None:
            if remaining <= _RETRY_FLOOR_S:
                return response  # no budget left: surface the shed
            backoff = min(backoff, remaining)
        _log.info(
            "service shed the query; backing off",
            extra={
                "code": code,
                "backoff_s": round(backoff, 3),
                "retries_left": retries_left,
            },
        )
        time.sleep(backoff)
