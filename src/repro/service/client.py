"""Synchronous client for the exploration service wire protocol.

A thin blocking socket client (stdlib only, like the fleet worker's
transport): one JSON object per line out, one per line back.  Used by
``repro query``, the service e2e tests and ``scripts/service_check.py``;
it is also the reference implementation of the protocol documented in
docs/SERVICE.md.
"""

from __future__ import annotations

import json
import pathlib
import socket
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError, ServiceProtocolError
from repro.runtime.fleet import parse_address
from repro.runtime.spec import PDNSpec

__all__ = ["ServiceClient", "discover_address"]


def discover_address(cache_dir: Union[str, pathlib.Path]) -> str:
    """Read the server's bound address from its ``service.json`` file.

    Lets clients find a port-0 server: ``repro serve --bind 127.0.0.1:0
    --cache-dir D`` publishes its ephemeral port into ``D/service.json``.
    """
    from repro.service.server import SERVICE_FILE

    path = pathlib.Path(cache_dir) / SERVICE_FILE
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
        return str(record["address"])
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise ReproError(
            f"no service discovery file at {path} ({exc}); "
            "is the server running with this --cache-dir?"
        ) from None


class ServiceClient:
    """One connection to a running exploration service.

    Context-manager friendly; requests on one client are sequential
    (the server answers a connection's requests in order).  Open one
    client per concurrent in-flight query.
    """

    def __init__(self, address: str, timeout_s: float = 60.0):
        self.address = address
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, block for its response object."""
        self._file.write((json.dumps(message) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError(
                f"service at {self.address} closed the connection "
                "without answering"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceProtocolError(
                f"unparsable service response: {exc.msg}"
            ) from None
        if not isinstance(response, dict):
            raise ServiceProtocolError(
                f"service response must be an object, got "
                f"{type(response).__name__}"
            )
        return response

    # ------------------------------------------------------------------
    def query(
        self,
        spec: Union[PDNSpec, Dict[str, Any]],
        activities: Optional[List[float]] = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Submit one design-point query; returns the response envelope.

        The response is returned as-is — including typed error
        envelopes (``kind: "error"`` with ``status``/``code``/
        ``error_type``) — so callers can distinguish a shed from a
        deadline from a degraded answer.
        """
        if isinstance(spec, PDNSpec):
            spec = spec.to_dict()
        message: Dict[str, Any] = {"kind": "query", "spec": spec}
        if activities is not None:
            message["activities"] = list(activities)
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if request_id is not None:
            message["id"] = request_id
        return self.request(message)

    def health(self) -> Dict[str, Any]:
        return self.request({"kind": "health"})

    def ready(self) -> Dict[str, Any]:
        return self.request({"kind": "ready"})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"kind": "metrics"})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request({"kind": "shutdown", "drain": drain})
