"""Multi-replica coordination over one shared cache directory.

Several ``repro serve`` processes can point at the same ``--cache-dir``
and behave as one highly-available service.  Two mechanisms, both built
on POSIX advisory ``flock`` (and therefore **crash-safe by
construction**: the kernel releases a process's locks the instant it
dies, SIGKILL included — a replica dying mid-solve can never leave a
fingerprint locked):

**Flight claims** (:class:`ReplicaFlights`) extend single-flight
coalescing *across replicas*.  Before solving a miss, a replica tries to
claim ``flights/flight-<fp>.lock``; the winner solves and writes the
cache entry, losers poll the shared cache for the winner's answer under
their own deadlines, re-attempting the claim so a crashed winner's
followers promote themselves instead of waiting forever.  N replicas
seeing the same miss still produce one solve.

**Replica registry** (:func:`register_replica` and friends) generalises
the ``service.json`` discovery file to a list: every replica merges
itself in under an exclusive registry lock (read-modify-write races
between replicas would otherwise lose registrations), prunes entries
whose pid is dead, and removes itself on clean shutdown.  Clients
(:func:`repro.service.client.robust_query`) try the addresses in order
— registration order is start order, so the longest-lived replica is
preferred — and a SIGKILLed replica's leftover entry is skipped by
liveness probing, never trusted.

The top-level ``address``/``pid`` fields are kept pointing at the first
live replica so pre-HA readers of ``service.json`` keep working.

On platforms without ``fcntl`` every claim trivially succeeds — the
degradation is "replicas may duplicate a solve", never a wrong answer
(cache writes are atomic and idempotent by fingerprint).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple, Union

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.obs.logs import get_logger
from repro.runtime.journal import atomic_write_text

__all__ = [
    "SERVICE_FILE",
    "FLIGHTS_DIR",
    "FlightClaim",
    "ReplicaFlights",
    "register_replica",
    "deregister_replica",
    "load_discovery",
    "live_replicas",
]

_log = get_logger(__name__)

#: Discovery file written into the cache directory (like fleet.json):
#: names the bound address(es) so ``repro query`` finds port-0 servers.
SERVICE_FILE = "service.json"

#: Subdirectory of the cache dir holding per-fingerprint flight locks.
FLIGHTS_DIR = "flights"

_REGISTRY_LOCK = "service.lock"


def _pid_alive(pid: Optional[int]) -> bool:
    """Best-effort liveness: signal 0 probes without touching the pid."""
    if not pid:
        return False
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError):
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


# ----------------------------------------------------------------------
# Cross-replica flight claims
# ----------------------------------------------------------------------

class FlightClaim:
    """Exclusive right to solve one fingerprint, held via ``flock``.

    Released explicitly on completion (:meth:`release`) or implicitly —
    and instantly — by the kernel when the holding process dies.
    """

    def __init__(self, fingerprint: str, path: pathlib.Path, fd: int):
        self.fingerprint = fingerprint
        self.path = path
        self._fd = fd
        self._released = False

    def release(self) -> None:
        """Unlink the lock file, then drop the flock (close the fd)."""
        if self._released:
            return
        self._released = True
        try:
            self.path.unlink()
        except OSError:
            pass
        if self._fd >= 0:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "FlightClaim":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ReplicaFlights:
    """Per-fingerprint claim table shared by every replica on a cache.

    Claims live as ``flights/flight-<fp>.lock`` files; holding the
    ``flock`` *is* the claim (the file's existence is not — leftover
    unlocked files from a crashed replica are claimable and swept).
    """

    def __init__(self, directory: Union[str, pathlib.Path]):
        self.directory = pathlib.Path(directory) / FLIGHTS_DIR
        #: Claims granted (this replica led the flight).
        self.claims = 0
        #: Claim attempts refused (a peer replica holds the flight).
        self.busy = 0

    def open(self) -> "ReplicaFlights":
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sweep()
        return self

    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"flight-{fingerprint}.lock"

    def try_claim(self, fingerprint: str) -> Optional[FlightClaim]:
        """Claim one fingerprint; None when a live peer already has it.

        Crash-safety subtlety: a finished holder unlinks its lock file
        before closing the fd, so after winning the flock we re-check
        that the path still names the inode we locked — otherwise we
        hold a lock on a deleted file while a third replica owns the
        fresh one, and we must retry.
        """
        path = self._path(fingerprint)
        if fcntl is None:  # pragma: no cover - non-POSIX degradation
            self.claims += 1
            return FlightClaim(fingerprint, path, -1)
        for _ in range(5):
            try:
                fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
            except OSError:
                return None
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                self.busy += 1
                return None
            try:
                if os.fstat(fd).st_ino == os.stat(path).st_ino:
                    os.ftruncate(fd, 0)
                    os.write(
                        fd,
                        json.dumps(
                            {"pid": os.getpid(), "claimed": time.time()}
                        ).encode("utf-8"),
                    )
                    self.claims += 1
                    return FlightClaim(fingerprint, path, fd)
            except OSError:
                pass  # path vanished between lock and stat: retry
            os.close(fd)
        return None

    def sweep(self) -> int:
        """Remove unheld leftover lock files (crashed replicas' litter).

        A file whose flock is free has no live holder; claiming and
        releasing it unlinks it.  Held files are left alone.
        """
        removed = 0
        for path in sorted(self.directory.glob("flight-*.lock")):
            fingerprint = path.name[len("flight-"):-len(".lock")]
            claim = self.try_claim(fingerprint)
            if claim is not None:
                claim.release()
                removed += 1
        # The sweep's own claims are bookkeeping noise, not flights.
        self.claims = 0
        self.busy = 0
        if removed:
            _log.info(
                "swept stale flight locks",
                extra={"directory": str(self.directory), "removed": removed},
            )
        return removed

    def counters(self) -> Dict[str, int]:
        return {"claims": self.claims, "busy": self.busy}


# ----------------------------------------------------------------------
# Replica registry (service.json)
# ----------------------------------------------------------------------

@contextmanager
def _registry_lock(directory: pathlib.Path):
    """Serialize service.json read-modify-write across replicas."""
    if fcntl is None:  # pragma: no cover - non-POSIX degradation
        yield
        return
    directory.mkdir(parents=True, exist_ok=True)
    fd = os.open(directory / _REGISTRY_LOCK, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)  # drops the flock


def load_discovery(
    directory: Union[str, pathlib.Path]
) -> Tuple[pathlib.Path, Optional[Dict[str, Any]]]:
    """Read ``service.json`` raw; (path, None) when absent/unparsable."""
    path = pathlib.Path(directory) / SERVICE_FILE
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return path, None
    if not isinstance(record, dict):
        return path, None
    return path, record


def _replica_list(record: Optional[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The replicas of a discovery record (legacy single-entry upgraded)."""
    if not record:
        return []
    replicas = record.get("replicas")
    if isinstance(replicas, list):
        return [r for r in replicas if isinstance(r, dict)]
    if record.get("address"):  # pre-HA single-server layout
        return [
            {
                "id": f"legacy-{record.get('pid', 0)}",
                "address": record["address"],
                "pid": record.get("pid"),
            }
        ]
    return []


def _write_registry(
    directory: pathlib.Path,
    replicas: List[Dict[str, Any]],
    protocol: Optional[int],
) -> None:
    head = replicas[0] if replicas else {}
    record: Dict[str, Any] = {
        # Back-compat head fields: the first live replica.
        "address": head.get("address"),
        "pid": head.get("pid"),
        "epoch": head.get("epoch"),
        "replicas": replicas,
    }
    if protocol is not None:
        record["protocol"] = protocol
    path = directory / SERVICE_FILE
    if not replicas:
        try:
            path.unlink()
        except OSError:
            pass
        return
    atomic_write_text(
        path,
        json.dumps(record, sort_keys=True) + "\n",
        durable=False,
        tmp_token=str(os.getpid()),
    )


def register_replica(
    directory: Union[str, pathlib.Path],
    replica_id: str,
    address: str,
    epoch: Optional[str] = None,
    fleet: Optional[str] = None,
    protocol: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Merge this replica into the shared discovery file.

    Dead peers (pid no longer alive) are pruned on the way — a crashed
    replica's entry disappears the next time any replica registers.
    Returns the resulting replica list.
    """
    directory = pathlib.Path(directory)
    entry: Dict[str, Any] = {
        "id": replica_id,
        "address": address,
        "pid": os.getpid(),
        "epoch": epoch,
        "started": time.time(),
    }
    if fleet:
        entry["fleet"] = fleet
    with _registry_lock(directory):
        _, record = load_discovery(directory)
        replicas = [
            r
            for r in _replica_list(record)
            if r.get("id") != replica_id and _pid_alive(r.get("pid"))
        ]
        replicas.append(entry)
        _write_registry(directory, replicas, protocol)
    _log.info(
        "replica registered",
        extra={
            "replica": replica_id,
            "address": address,
            "peers": len(replicas) - 1,
        },
    )
    return replicas


def deregister_replica(
    directory: Union[str, pathlib.Path], replica_id: str
) -> None:
    """Remove this replica on clean shutdown (prunes dead peers too).

    The file itself is removed when the last replica leaves — a clean
    full shutdown leaves no stale discovery behind.
    """
    directory = pathlib.Path(directory)
    with _registry_lock(directory):
        path, record = load_discovery(directory)
        if record is None:
            return
        protocol = record.get("protocol")
        replicas = [
            r
            for r in _replica_list(record)
            if r.get("id") != replica_id and _pid_alive(r.get("pid"))
        ]
        _write_registry(directory, replicas, protocol)


def live_replicas(
    directory: Union[str, pathlib.Path]
) -> List[Dict[str, Any]]:
    """The discovery file's replicas whose pids are alive, in order.

    Read-only (no lock, no rewrite): callers probing for an address must
    still expect a listed replica to be unreachable — pid liveness is a
    cheap local filter, not a health check across hosts.
    """
    _, record = load_discovery(directory)
    return [r for r in _replica_list(record) if _pid_alive(r.get("pid"))]
