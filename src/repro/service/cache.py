"""Persistent content-addressed result cache for the exploration service.

One cache directory holds one JSON file per answered query, named by the
query's content fingerprint (``result-<fp>.json``) — the *same*
:func:`repro.runtime.fingerprint.task_fingerprint` the supervisor
journals and the fleet leases by, so a cached service answer, a journal
record and a trace file of the same design point all share one key.

Robustness properties:

* **Atomic writes.**  Every entry lands through
  :func:`repro.runtime.journal.atomic_write_text` (tmp + rename), so a
  SIGKILL mid-write never leaves a torn entry; readers see the previous
  entry or the new one.
* **Crash hygiene.**  :meth:`ResultCache.open` sweeps stale ``*.tmp``
  files stranded by an interrupted write — the same
  :func:`repro.runtime.journal.clean_stale_tmp` sweep ``--resume`` runs
  on run directories — so a long-lived server never accumulates junk.
* **Bounded size.**  ``max_mb`` caps the directory; inserts evict the
  least-recently-*used* entries (hits bump an entry's mtime) until the
  cap holds, with evictions counted in the service metrics.  A
  long-lived server therefore never fills the disk.
* **Freshness.**  ``ttl_s`` ages entries: an expired entry is not served
  on the fast path, but it is deliberately *kept* — while the circuit
  breaker is open the service serves stale entries as degraded answers
  (``degraded: true, stale: true``) rather than failing closed.

All methods are thread-safe; the service calls them from the event loop
and from solve-completion callbacks.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.obs.logs import get_logger
from repro.runtime.fingerprint import task_fingerprint
from repro.runtime.journal import atomic_write_text, clean_stale_tmp
from repro.runtime.spec import PDNSpec

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntry",
    "ResultCache",
    "query_fingerprint",
]

_log = get_logger(__name__)

#: Schema version of the on-disk entry layout; bump on record changes.
CACHE_SCHEMA = 1

_PREFIX = "result-"
_SUFFIX = ".json"


def query_fingerprint(
    spec: PDNSpec,
    activities: Optional[List[float]] = None,
    solver: str = "lu",
) -> str:
    """Content fingerprint of one service query (16 hex chars).

    Delegates to the runtime's :func:`task_fingerprint` over a
    single-point pristine group, so a service cache key is bit-for-bit
    the fingerprint the supervisor would journal for the same solve —
    default-solver queries match pre-service journals exactly.
    """
    from repro.runtime.engine import SweepPoint

    point = SweepPoint(
        spec=spec,
        layer_activities=tuple(activities) if activities else None,
    )
    key = (spec, None, False, solver)
    return task_fingerprint(key, [(0, point)])


@dataclass
class CacheEntry:
    """One cache lookup's answer: the stored payload plus freshness."""

    fingerprint: str
    payload: Dict[str, Any]
    #: Seconds since the entry was written (0.0 for a fresh write).
    age_s: float = 0.0
    #: True when the entry outlived the cache TTL (served only as a
    #: degraded answer while the breaker is open).
    stale: bool = False


@dataclass
class _Stored:
    """Index record for one on-disk entry."""

    path: pathlib.Path
    size: int
    #: Last-used stamp (monotonic): hits refresh it, eviction sorts by it.
    used_at: float = 0.0
    created_at: float = field(default_factory=time.time)


class ResultCache:
    """A bounded, persistent, fingerprint-keyed result store."""

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        max_mb: Optional[float] = None,
        ttl_s: Optional[float] = None,
    ):
        self.directory = pathlib.Path(directory)
        self.max_bytes = (
            None if max_mb is None else max(0, int(max_mb * 1024 * 1024))
        )
        self.ttl_s = ttl_s
        self._index: Dict[str, _Stored] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.writes = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def open(self) -> "ResultCache":
        """Create the directory, sweep stale tmp files, index entries."""
        self.directory.mkdir(parents=True, exist_ok=True)
        swept = clean_stale_tmp(self.directory)
        with self._lock:
            self._index.clear()
            for path in sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}")):
                fingerprint = path.name[len(_PREFIX):-len(_SUFFIX)]
                try:
                    stat = path.stat()
                except OSError:
                    continue
                self._index[fingerprint] = _Stored(
                    path=path,
                    size=stat.st_size,
                    used_at=stat.st_mtime,
                    created_at=stat.st_mtime,
                )
        if self._index or swept:
            _log.info(
                "service cache opened",
                extra={
                    "directory": str(self.directory),
                    "entries": len(self._index),
                    "swept_tmp": len(swept),
                },
            )
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def size_bytes(self) -> int:
        with self._lock:
            return sum(s.size for s in self._index.values())

    def counters(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "size_bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------
    def get(
        self, fingerprint: str, allow_stale: bool = False
    ) -> Optional[CacheEntry]:
        """Look one fingerprint up; None on miss (or unreadable entry).

        A fresh hit bumps the entry's recency (both in the index and on
        disk, so LRU ordering survives a restart).  An entry older than
        ``ttl_s`` is a miss unless ``allow_stale`` — the breaker-open
        degraded path — in which case it comes back flagged ``stale``.
        """
        with self._lock:
            stored = self._index.get(fingerprint)
            if stored is None:
                self.misses += 1
                return None
            try:
                record = json.loads(stored.path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                # A corrupted entry must never poison answers: drop it
                # and treat the query as a miss.
                _log.warning(
                    "service cache: dropping unreadable entry",
                    extra={"fingerprint": fingerprint, "error": str(exc)},
                )
                self._discard(fingerprint, stored)
                self.misses += 1
                return None
            if record.get("schema") != CACHE_SCHEMA:
                self._discard(fingerprint, stored)
                self.misses += 1
                return None
            age_s = max(0.0, time.time() - stored.created_at)
            stale = self.ttl_s is not None and age_s > self.ttl_s
            if stale and not allow_stale:
                self.misses += 1
                return None
            if stale:
                self.stale_hits += 1
            else:
                self.hits += 1
                stored.used_at = time.time()
                try:
                    os.utime(stored.path)
                except OSError:
                    pass
            return CacheEntry(
                fingerprint=fingerprint,
                payload=record.get("payload", {}),
                age_s=age_s,
                stale=stale,
            )

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> pathlib.Path:
        """Store one answer atomically; evicts LRU entries over the cap."""
        record = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "payload": payload,
            "created": time.time(),
        }
        text = json.dumps(record, sort_keys=True) + "\n"
        path = self.directory / f"{_PREFIX}{fingerprint}{_SUFFIX}"
        atomic_write_text(path, text, durable=False)
        now = time.time()
        with self._lock:
            self._index[fingerprint] = _Stored(
                path=path,
                size=len(text.encode("utf-8")),
                used_at=now,
                created_at=now,
            )
            self.writes += 1
            self._evict_over_cap(protect=fingerprint)
        return path

    # ------------------------------------------------------------------
    def _discard(self, fingerprint: str, stored: _Stored) -> None:
        """Remove one entry (lock held)."""
        self._index.pop(fingerprint, None)
        try:
            stored.path.unlink()
        except OSError:
            pass

    def _evict_over_cap(self, protect: Optional[str] = None) -> None:
        """Drop least-recently-used entries until the size cap holds.

        ``protect`` names the entry just written — even a cap smaller
        than one entry keeps the newest answer (the cap bounds growth,
        it must not turn the cache into a black hole).
        """
        if self.max_bytes is None:
            return
        total = sum(s.size for s in self._index.values())
        if total <= self.max_bytes:
            return
        victims = sorted(
            (fp for fp in self._index if fp != protect),
            key=lambda fp: self._index[fp].used_at,
        )
        for fingerprint in victims:
            if total <= self.max_bytes:
                break
            stored = self._index[fingerprint]
            total -= stored.size
            self._discard(fingerprint, stored)
            self.evictions += 1
            _log.info(
                "service cache: evicted LRU entry",
                extra={
                    "fingerprint": fingerprint,
                    "size_bytes": stored.size,
                },
            )
