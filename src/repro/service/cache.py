"""Persistent content-addressed result cache for the exploration service.

One cache directory holds one JSON file per answered query, named by the
query's content fingerprint (``result-<fp>.json``) — the *same*
:func:`repro.runtime.fingerprint.task_fingerprint` the supervisor
journals and the fleet leases by, so a cached service answer, a journal
record and a trace file of the same design point all share one key.

Robustness properties:

* **Atomic writes.**  Every entry lands through
  :func:`repro.runtime.journal.atomic_write_text` (tmp + rename) with a
  writer-unique tmp token, so a SIGKILL mid-write never leaves a torn
  entry and two *replicas* writing the same fingerprint concurrently
  never interleave on a shared scratch file; readers see one writer's
  complete entry or the other's.
* **Crash hygiene.**  :meth:`ResultCache.open` sweeps stale ``*.tmp``
  files stranded by an interrupted write — the same
  :func:`repro.runtime.journal.clean_stale_tmp` sweep ``--resume`` runs
  on run directories — so a long-lived server never accumulates junk.
* **Integrity.**  Every entry carries a checksum over its payload; a
  truncated or bit-flipped entry is detected on read, evicted, and
  counted (``corrupt``) instead of crashing the server or poisoning an
  answer.  ``repro cache verify`` runs the same check over the whole
  directory offline.
* **Version coherence.**  Every entry is stamped with the code-version
  epoch (:func:`repro.service.epoch.code_epoch`) that produced it.  An
  entry from a *different* epoch is stale-but-keepable: never served as
  fresh (the query re-solves under the new code), but still reachable
  through the breaker-open degraded stale path — old numbers beat no
  numbers when the backend is down.  ``repro cache invalidate --epoch``
  removes a generation explicitly.
* **Bounded size.**  ``max_mb`` caps the directory; inserts evict the
  least-recently-*used* entries (hits bump an entry's mtime) until the
  cap holds, with evictions counted in the service metrics.  A
  long-lived server therefore never fills the disk.
* **Freshness.**  ``ttl_s`` ages entries: an expired entry is not served
  on the fast path, but it is deliberately *kept* — while the circuit
  breaker is open the service serves stale entries as degraded answers
  (``degraded: true, stale: true``) rather than failing closed.

All methods are thread-safe; the service calls them from the event loop
and from solve-completion callbacks.  Several server *processes* may
share one directory (see :mod:`repro.service.replica`): writes are
atomic renames, and the index tolerates entries appearing or vanishing
underneath it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.obs.logs import get_logger
from repro.runtime.fingerprint import task_fingerprint
from repro.runtime.journal import atomic_write_text, clean_stale_tmp
from repro.runtime.spec import PDNSpec
from repro.service.epoch import code_epoch

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntry",
    "ResultCache",
    "payload_checksum",
    "query_fingerprint",
]

_log = get_logger(__name__)

#: Schema version of the on-disk entry layout; bump on record changes.
#: v2 added the code-version ``epoch`` stamp and the payload
#: ``checksum`` (pre-epoch v1 entries are dropped on first read: with
#: no epoch recorded their provenance is unknowable).
CACHE_SCHEMA = 2

_PREFIX = "result-"
_SUFFIX = ".json"


def query_fingerprint(
    spec: PDNSpec,
    activities: Optional[List[float]] = None,
    solver: str = "lu",
) -> str:
    """Content fingerprint of one service query (16 hex chars).

    Delegates to the runtime's :func:`task_fingerprint` over a
    single-point pristine group, so a service cache key is bit-for-bit
    the fingerprint the supervisor would journal for the same solve —
    default-solver queries match pre-service journals exactly.

    Deliberately *not* epoch-aware: folding the code epoch in here
    would break the journal-resume bit-for-bit guarantee and make
    old-epoch entries unreachable for the degraded stale path.  Version
    coherence lives in the cache entry metadata instead.
    """
    from repro.runtime.engine import SweepPoint

    point = SweepPoint(
        spec=spec,
        layer_activities=tuple(activities) if activities else None,
    )
    key = (spec, None, False, solver)
    return task_fingerprint(key, [(0, point)])


def payload_checksum(payload: Dict[str, Any]) -> str:
    """Integrity checksum of one entry's payload (16 hex chars).

    Over the canonical (sorted-keys) JSON text, so the check is stable
    across dict ordering and a JSON round trip through the wire.
    """
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheEntry:
    """One cache lookup's answer: the stored payload plus freshness."""

    fingerprint: str
    payload: Dict[str, Any]
    #: Seconds since the entry was written (0.0 for a fresh write).
    age_s: float = 0.0
    #: True when the entry is not servable as fresh (served only as a
    #: degraded answer while the breaker is open).
    stale: bool = False
    #: Why it is stale: "ttl" (outlived the freshness window) or
    #: "epoch" (written by a different code version); None when fresh.
    stale_reason: Optional[str] = None
    #: The code-version epoch stamped into the entry.
    epoch: Optional[str] = None


@dataclass
class _Stored:
    """Index record for one on-disk entry."""

    path: pathlib.Path
    size: int
    #: Last-used stamp (monotonic): hits refresh it, eviction sorts by it.
    used_at: float = 0.0
    created_at: float = field(default_factory=time.time)


class ResultCache:
    """A bounded, persistent, fingerprint-keyed result store."""

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        max_mb: Optional[float] = None,
        ttl_s: Optional[float] = None,
        epoch: Optional[str] = None,
    ):
        self.directory = pathlib.Path(directory)
        self.max_bytes = (
            None if max_mb is None else max(0, int(max_mb * 1024 * 1024))
        )
        self.ttl_s = ttl_s
        #: The epoch entries are judged fresh against (and stamped with
        #: on write); defaults to this process's code epoch.
        self.epoch = epoch or code_epoch()
        self._index: Dict[str, _Stored] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.writes = 0
        self.evictions = 0
        #: Entries dropped because they failed integrity (unreadable,
        #: truncated, checksum mismatch) — each one is evicted on sight.
        self.corrupt = 0
        #: Fast-path misses caused purely by an epoch mismatch (the
        #: entry was intact and within TTL, but from other code).
        self.epoch_misses = 0

    # ------------------------------------------------------------------
    def open(self) -> "ResultCache":
        """Create the directory, sweep stale tmp files, index entries."""
        self.directory.mkdir(parents=True, exist_ok=True)
        swept = clean_stale_tmp(self.directory)
        with self._lock:
            self._index.clear()
            for path in sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}")):
                fingerprint = path.name[len(_PREFIX):-len(_SUFFIX)]
                try:
                    stat = path.stat()
                except OSError:
                    continue
                self._index[fingerprint] = _Stored(
                    path=path,
                    size=stat.st_size,
                    used_at=stat.st_mtime,
                    created_at=stat.st_mtime,
                )
        if self._index or swept:
            _log.info(
                "service cache opened",
                extra={
                    "directory": str(self.directory),
                    "entries": len(self._index),
                    "swept_tmp": len(swept),
                    "epoch": self.epoch,
                },
            )
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def size_bytes(self) -> int:
        with self._lock:
            return sum(s.size for s in self._index.values())

    def counters(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "size_bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "epoch_misses": self.epoch_misses,
        }

    # ------------------------------------------------------------------
    def _index_from_disk(self, fingerprint: str) -> Optional[_Stored]:
        """Adopt an entry a peer replica wrote after we indexed (lock held)."""
        path = self.directory / f"{_PREFIX}{fingerprint}{_SUFFIX}"
        try:
            stat = path.stat()
        except OSError:
            return None
        stored = _Stored(
            path=path,
            size=stat.st_size,
            used_at=stat.st_mtime,
            created_at=stat.st_mtime,
        )
        self._index[fingerprint] = stored
        return stored

    def _load_record(
        self, fingerprint: str, stored: _Stored
    ) -> Optional[Dict[str, Any]]:
        """Read + integrity-check one entry (lock held); None = dropped.

        Every failure mode — unreadable file, torn JSON, wrong schema,
        checksum mismatch — evicts the entry so it cannot fail again.
        Integrity failures count in ``corrupt``; a wrong-schema entry is
        not corruption (it is a legacy layout) and is dropped silently.
        """
        try:
            record = json.loads(stored.path.read_text(encoding="utf-8"))
            if not isinstance(record, dict):
                raise json.JSONDecodeError("not an object", "", 0)
        except (OSError, json.JSONDecodeError) as exc:
            _log.warning(
                "service cache: dropping unreadable entry",
                extra={"fingerprint": fingerprint, "error": str(exc)},
            )
            self._discard(fingerprint, stored)
            self.corrupt += 1
            return None
        if record.get("schema") != CACHE_SCHEMA:
            self._discard(fingerprint, stored)
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict) or (
            record.get("checksum") != payload_checksum(payload)
        ):
            _log.warning(
                "service cache: dropping corrupt entry (checksum mismatch)",
                extra={"fingerprint": fingerprint},
            )
            self._discard(fingerprint, stored)
            self.corrupt += 1
            return None
        return record

    def get(
        self,
        fingerprint: str,
        allow_stale: bool = False,
        count: bool = True,
    ) -> Optional[CacheEntry]:
        """Look one fingerprint up; None on miss (or unusable entry).

        A fresh hit bumps the entry's recency (both in the index and on
        disk, so LRU ordering survives a restart).  An entry older than
        ``ttl_s`` *or written under a different code epoch* is a miss
        unless ``allow_stale`` — the breaker-open degraded path — in
        which case it comes back flagged ``stale`` with its
        ``stale_reason``.  Corrupt entries are evicted and counted,
        never returned.

        An index miss falls through to disk: a *peer replica* sharing
        this directory may have written the entry after :meth:`open`
        indexed it.  ``count=False`` keeps a lookup out of the hit/miss
        counters — the replica peer-wait poll probes the same
        fingerprint many times per answer and must not skew the stats.
        """
        with self._lock:
            stored = self._index.get(fingerprint)
            if stored is None:
                stored = self._index_from_disk(fingerprint)
            if stored is None:
                if count:
                    self.misses += 1
                return None
            record = self._load_record(fingerprint, stored)
            if record is None:
                if count:
                    self.misses += 1
                return None
            entry_epoch = record.get("epoch")
            created = record.get("created") or stored.created_at
            age_s = max(0.0, time.time() - created)
            ttl_stale = self.ttl_s is not None and age_s > self.ttl_s
            epoch_stale = entry_epoch != self.epoch
            stale = ttl_stale or epoch_stale
            if stale and not allow_stale:
                if count:
                    self.misses += 1
                    if epoch_stale:
                        self.epoch_misses += 1
                return None
            if stale:
                if count:
                    self.stale_hits += 1
            else:
                if count:
                    self.hits += 1
                stored.used_at = time.time()
                try:
                    os.utime(stored.path)
                except OSError:
                    pass
            return CacheEntry(
                fingerprint=fingerprint,
                payload=record.get("payload", {}),
                age_s=age_s,
                stale=stale,
                stale_reason=(
                    "epoch" if epoch_stale else ("ttl" if ttl_stale else None)
                ),
                epoch=entry_epoch,
            )

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> pathlib.Path:
        """Store one answer atomically; evicts LRU entries over the cap.

        The record is stamped with this cache's epoch and a payload
        checksum; the tmp token makes concurrent same-fingerprint
        writes from different replica processes collision-free.
        """
        record = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "payload": payload,
            "created": time.time(),
            "epoch": self.epoch,
            "checksum": payload_checksum(payload),
        }
        text = json.dumps(record, sort_keys=True) + "\n"
        path = self.directory / f"{_PREFIX}{fingerprint}{_SUFFIX}"
        atomic_write_text(
            path,
            text,
            durable=False,
            tmp_token=f"{os.getpid()}-{threading.get_ident()}",
        )
        now = time.time()
        with self._lock:
            self._index[fingerprint] = _Stored(
                path=path,
                size=len(text.encode("utf-8")),
                used_at=now,
                created_at=now,
            )
            self.writes += 1
            self._evict_over_cap(protect=fingerprint)
        return path

    # ------------------------------------------------------------------
    # Offline inspection (the ``repro cache`` CLI)
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, Any]:
        """Integrity-check every entry; evict what fails.

        Returns ``{"checked", "ok", "evicted", "by_epoch"}`` —
        ``evicted`` counts entries dropped for *any* reason (torn JSON,
        checksum mismatch, legacy schema), ``by_epoch`` histograms the
        surviving entries' code epochs.
        """
        with self._lock:
            items = list(self._index.items())
        checked = ok = evicted = 0
        by_epoch: Dict[str, int] = {}
        for fingerprint, stored in items:
            checked += 1
            with self._lock:
                if fingerprint not in self._index:
                    continue  # evicted underneath us
                record = self._load_record(fingerprint, stored)
            if record is None:
                evicted += 1
                continue
            ok += 1
            epoch = str(record.get("epoch"))
            by_epoch[epoch] = by_epoch.get(epoch, 0) + 1
        return {
            "checked": checked,
            "ok": ok,
            "evicted": evicted,
            "by_epoch": by_epoch,
            "epoch": self.epoch,
        }

    def invalidate(self, epoch: Optional[str] = None) -> int:
        """Remove entries by code epoch; returns how many were dropped.

        ``epoch`` names one generation to remove; ``None`` removes every
        entry *not* written under the cache's current epoch (the
        "purge everything stale" operation after a code upgrade).
        Unreadable entries are dropped too (and counted ``corrupt``).
        """
        with self._lock:
            items = list(self._index.items())
        removed = 0
        for fingerprint, stored in items:
            with self._lock:
                if fingerprint not in self._index:
                    continue
                record = self._load_record(fingerprint, stored)
                if record is None:
                    removed += 1
                    continue
                entry_epoch = record.get("epoch")
                drop = (
                    entry_epoch != self.epoch
                    if epoch is None
                    else entry_epoch == epoch
                )
                if drop:
                    self._discard(fingerprint, stored)
                    removed += 1
        if removed:
            _log.info(
                "service cache: invalidated entries",
                extra={"removed": removed, "epoch": epoch or "stale"},
            )
        return removed

    def stats(self) -> Dict[str, Any]:
        """Directory-level summary for ``repro cache stats``."""
        verify_free = self.verify()  # also reports by-epoch, evicts junk
        now = time.time()
        with self._lock:
            ages = [
                max(0.0, now - s.created_at) for s in self._index.values()
            ]
        return {
            "directory": str(self.directory),
            "entries": len(self),
            "size_bytes": self.size_bytes(),
            "epoch": self.epoch,
            "by_epoch": verify_free["by_epoch"],
            "ttl_s": self.ttl_s,
            "max_bytes": self.max_bytes,
            "oldest_age_s": round(max(ages), 3) if ages else None,
            "newest_age_s": round(min(ages), 3) if ages else None,
        }

    # ------------------------------------------------------------------
    def _discard(self, fingerprint: str, stored: _Stored) -> None:
        """Remove one entry (lock held)."""
        self._index.pop(fingerprint, None)
        try:
            stored.path.unlink()
        except OSError:
            pass

    def _evict_over_cap(self, protect: Optional[str] = None) -> None:
        """Drop least-recently-used entries until the size cap holds.

        ``protect`` names the entry just written — even a cap smaller
        than one entry keeps the newest answer (the cap bounds growth,
        it must not turn the cache into a black hole).
        """
        if self.max_bytes is None:
            return
        total = sum(s.size for s in self._index.values())
        if total <= self.max_bytes:
            return
        victims = sorted(
            (fp for fp in self._index if fp != protect),
            key=lambda fp: self._index[fp].used_at,
        )
        for fingerprint in victims:
            if total <= self.max_bytes:
                break
            stored = self._index[fingerprint]
            total -= stored.size
            self._discard(fingerprint, stored)
            self.evictions += 1
            _log.info(
                "service cache: evicted LRU entry",
                extra={
                    "fingerprint": fingerprint,
                    "size_bytes": stored.size,
                },
            )
