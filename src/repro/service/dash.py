"""Fleet-wide telemetry aggregation behind ``repro dash``.

One replica's ``metrics`` response carries three renderings of the same
registry: a nested ``counters`` dict (human/BENCH view), Prometheus text
(scrape view), and a mergeable ``series`` wire form
(:meth:`repro.obs.metrics.MetricsRegistry.to_wire`).  The dashboard
discovers every replica in ``service.json``, scrapes each ``metrics``
endpoint, rebuilds the wire registries and folds them with
:meth:`~repro.obs.metrics.MetricsRegistry.merge` — counters add exactly,
and histogram *buckets* add, so fleet-wide latency quantiles are
estimated from the true combined distribution rather than averaged
per-replica percentiles (which would be statistically meaningless).

Dead replicas in a stale discovery file are reported as unreachable
rows, never an error: a dashboard must render the fleet you have.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient, discover_addresses

__all__ = [
    "ReplicaScrape",
    "scrape_fleet",
    "merge_scrapes",
    "render_dashboard",
]


@dataclass
class ReplicaScrape:
    """One replica's scrape: its counters + rebuilt wire registry."""

    address: str
    ok: bool = False
    error: Optional[str] = None
    replica_id: str = ""
    counters: Dict[str, Any] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None


def scrape_fleet(
    cache_dir: Union[str, pathlib.Path], timeout_s: float = 5.0
) -> List[ReplicaScrape]:
    """Scrape every replica registered in ``cache_dir``'s service.json.

    Raises :class:`repro.errors.ServiceUnavailableError` when no
    discovery file exists at all; individual dead replicas come back as
    ``ok=False`` rows instead of failing the whole scrape.
    """
    _path, addresses = discover_addresses(cache_dir)
    scrapes: List[ReplicaScrape] = []
    for address in addresses:
        scrape = ReplicaScrape(address=address)
        try:
            with ServiceClient(address, timeout_s=timeout_s) as client:
                metrics = client.metrics()
        except Exception as exc:  # noqa: BLE001 - any dead peer is a row
            scrape.error = f"{type(exc).__name__}: {exc}"
            scrapes.append(scrape)
            continue
        counters = metrics.get("counters")
        scrape.counters = counters if isinstance(counters, dict) else {}
        series = metrics.get("series")
        if isinstance(series, dict):
            try:
                scrape.registry = MetricsRegistry.from_wire(series)
            except (TypeError, ValueError, KeyError) as exc:
                scrape.error = f"bad series payload: {exc}"
                scrapes.append(scrape)
                continue
        replica = scrape.counters.get("replica")
        scrape.replica_id = (
            str(replica.get("id")) if isinstance(replica, dict) else address
        )
        scrape.ok = True
        scrapes.append(scrape)
    return scrapes


def merge_scrapes(scrapes: List[ReplicaScrape]) -> MetricsRegistry:
    """Fold every reachable replica's registry into one fleet registry."""
    merged = MetricsRegistry()
    for scrape in scrapes:
        if scrape.ok and scrape.registry is not None:
            merged.merge(scrape.registry)
    return merged


def _counter_value(registry: MetricsRegistry, name: str, **labels) -> int:
    metric = registry.get(name)
    if metric is None:
        return 0
    if labels:
        return int(metric.value(**labels))
    return int(metric.total())


def _quantile(registry: MetricsRegistry, q: float) -> Optional[float]:
    metric = registry.get("service_query_latency")
    if metric is None:
        return None
    return metric.quantile(q)


def fleet_summary(merged: MetricsRegistry) -> Dict[str, Any]:
    """The headline fleet-wide numbers from the merged registry."""
    latency = merged.get("service_query_latency")
    cache = merged.get("service_cache_total")
    summary: Dict[str, Any] = {
        "queries": _counter_value(
            merged, "service_requests_total", kind="query"
        ),
        "responses": _counter_value(merged, "service_responses_total"),
        "shed": _counter_value(merged, "service_shed_total"),
        "coalesced": _counter_value(merged, "service_coalesced_total"),
        "slo_ok": _counter_value(merged, "service_slo_total", result="ok"),
        "slo_breached": _counter_value(
            merged, "service_slo_total", result="breached"
        ),
        "cache": (
            {k: int(v) for k, v in cache.by_label("event").items()}
            if cache is not None
            else {}
        ),
        "outcomes": (
            {k: int(v) for k, v in latency.count_by_label("outcome").items()}
            if latency is not None
            else {}
        ),
        "latency_count": latency.total_count() if latency is not None else 0,
        "latency_sum_s": (
            round(latency.total_sum(), 6) if latency is not None else 0.0
        ),
    }
    for q, name in ((0.5, "p50_s"), (0.95, "p95_s"), (0.99, "p99_s")):
        estimate = _quantile(merged, q)
        summary[name] = None if estimate is None else round(estimate, 6)
    return summary


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_dashboard(
    scrapes: List[ReplicaScrape], merged: MetricsRegistry
) -> str:
    """One fleet-wide table: a row per replica, then merged totals."""
    header = (
        f"{'replica':<20} {'address':<21} {'up_s':>8} {'queries':>8} "
        f"{'hits':>6} {'misses':>7} {'shed':>5} {'inflight':>8} "
        f"{'breaker':<9} {'p95':>8}"
    )
    lines = [header, "-" * len(header)]
    for scrape in scrapes:
        if not scrape.ok:
            lines.append(
                f"{'(unreachable)':<20} {scrape.address:<21} "
                f"{scrape.error or 'no response'}"
            )
            continue
        counters = scrape.counters
        cache = counters.get("cache", {})
        latency = counters.get("latency", {})
        breaker = counters.get("breaker", {})
        lines.append(
            f"{scrape.replica_id:<20.20} {scrape.address:<21} "
            f"{counters.get('uptime_s', 0):>8.1f} "
            f"{counters.get('requests', {}).get('query', 0):>8} "
            f"{cache.get('hits', 0):>6} {cache.get('misses', 0):>7} "
            f"{counters.get('admission', {}).get('shed', 0):>5} "
            f"{counters.get('inflight', 0):>8} "
            f"{str(breaker.get('state', '?')):<9} "
            f"{_fmt_latency(latency.get('p95_s')):>8}"
        )
    summary = fleet_summary(merged)
    reachable = sum(1 for s in scrapes if s.ok)
    outcomes = summary["outcomes"]
    outcome_text = (
        " ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        or "no queries yet"
    )
    slo_total = summary["slo_ok"] + summary["slo_breached"]
    slo_text = (
        f"slo ok={summary['slo_ok']} breached={summary['slo_breached']} "
        f"burn={summary['slo_breached'] / slo_total:.1%}"
        if slo_total
        else "slo: (no objective set)"
    )
    lines += [
        "-" * len(header),
        f"fleet: {reachable}/{len(scrapes)} replicas | "
        f"queries={summary['queries']} "
        f"coalesced={summary['coalesced']} shed={summary['shed']}",
        f"outcomes: {outcome_text}",
        f"latency: n={summary['latency_count']} "
        f"p50={_fmt_latency(summary['p50_s'])} "
        f"p95={_fmt_latency(summary['p95_s'])} "
        f"p99={_fmt_latency(summary['p99_s'])} | {slo_text}",
    ]
    return "\n".join(lines)
