"""Circuit breaker around the exploration service's solve backend.

Classic three-state breaker (see docs/SERVICE.md for tuning guidance)::

    closed --K consecutive failures--> open
    open   --cooldown elapsed-------> half-open (one probe allowed)
    half-open --probe succeeds------> closed
    half-open --probe fails---------> open (cooldown restarts)

While the breaker is **open** the service does not stop answering: it
serves stale cache entries or coarse-grid solves flagged
``degraded: true`` and only returns a typed
:class:`repro.errors.CircuitOpenError` response when neither degraded
path can produce numbers.  The breaker therefore converts a failing
backend from "every query burns a full solve attempt and times out"
into "queries get instant degraded answers while one probe per cooldown
window checks for recovery".

Thread-safe; deadline-free (the clock is injectable for tests).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.logs import get_logger

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

_log = get_logger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric rendering for gauges (Prometheus cannot carry strings).
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Failure-counting breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        #: (to_state, count) transition tally for the metrics endpoint.
        self._transitions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open()
            retry_after = None
            if self._state == OPEN and self._opened_at is not None:
                retry_after = max(
                    0.0,
                    self._opened_at + self.cooldown_s - self._clock(),
                )
            return {
                "state": self._state,
                "state_code": STATE_CODES[self._state],
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "retry_after_s": retry_after,
                "transitions": dict(self._transitions),
            }

    def retry_after_s(self) -> float:
        """Seconds until the next probe window (0 when not open)."""
        snap = self.snapshot()
        return float(snap["retry_after_s"] or 0.0)

    # ------------------------------------------------------------------
    def allow(self) -> Tuple[bool, bool]:
        """May a solve proceed right now?  Returns ``(allowed, probe)``.

        Closed: always ``(True, False)``.  Open: ``(False, False)``
        until the cooldown elapses, then the breaker half-opens and
        exactly one caller gets ``(True, True)`` — the probe — while
        concurrent callers keep getting ``(False, False)`` until the
        probe's verdict is recorded.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True, False
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True, True
            return False, False

    def record_success(self) -> None:
        with self._lock:
            self._probe_inflight = False
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: back to open, cooldown restarts.
                self._probe_inflight = False
                self._consecutive_failures += 1
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        """Open -> half-open once the cooldown elapsed (lock held)."""
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(HALF_OPEN)
            self._probe_inflight = False

    def _transition(self, to_state: str) -> None:
        """Move to ``to_state`` with logging + tally (lock held)."""
        if to_state == OPEN:
            self._opened_at = self._clock()
        elif to_state == CLOSED:
            self._opened_at = None
        from_state, self._state = self._state, to_state
        self._transitions[to_state] = self._transitions.get(to_state, 0) + 1
        level = _log.warning if to_state == OPEN else _log.info
        level(
            "service breaker transition",
            extra={
                "from": from_state,
                "to": to_state,
                "consecutive_failures": self._consecutive_failures,
            },
        )

    def transitions(self) -> List[Tuple[str, int]]:
        with self._lock:
            return sorted(self._transitions.items())
