"""repro.service — the resilient exploration front-end.

A small serving stack that turns the sweep machinery into
design-exploration-as-a-service: an asyncio newline-JSON TCP server
(:mod:`~repro.service.server`) answering PDNSpec queries from a
persistent fingerprint-keyed cache (:mod:`~repro.service.cache`),
with bounded admission + per-request deadlines
(:mod:`~repro.service.admission`) and circuit-breaker degradation
(:mod:`~repro.service.breaker`).  ``repro serve`` / ``repro query``
are the CLI entry points; docs/SERVICE.md documents the protocol.
"""

from repro.service.admission import AdmissionQueue, Deadline
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.cache import (
    CACHE_SCHEMA,
    CacheEntry,
    ResultCache,
    query_fingerprint,
)
from repro.service.client import ServiceClient, discover_address
from repro.service.server import (
    SERVICE_FILE,
    SERVICE_PROTOCOL,
    ExplorationService,
    QueryExecutor,
    ServiceConfig,
    ServiceHandle,
    extract_summary,
    serve_in_background,
    spec_from_payload,
)

__all__ = [
    "AdmissionQueue",
    "Deadline",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "CACHE_SCHEMA",
    "CacheEntry",
    "ResultCache",
    "query_fingerprint",
    "ServiceClient",
    "discover_address",
    "SERVICE_FILE",
    "SERVICE_PROTOCOL",
    "ExplorationService",
    "QueryExecutor",
    "ServiceConfig",
    "ServiceHandle",
    "extract_summary",
    "serve_in_background",
    "spec_from_payload",
]
