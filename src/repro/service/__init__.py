"""repro.service — the resilient exploration front-end.

A small serving stack that turns the sweep machinery into
design-exploration-as-a-service: an asyncio newline-JSON TCP server
(:mod:`~repro.service.server`) answering PDNSpec queries from a
persistent fingerprint-keyed cache (:mod:`~repro.service.cache`),
with bounded admission + per-request deadlines
(:mod:`~repro.service.admission`), circuit-breaker degradation
(:mod:`~repro.service.breaker`), code-version cache coherence
(:mod:`~repro.service.epoch`) and multi-replica operation over one
shared cache directory (:mod:`~repro.service.replica`).
``repro serve`` / ``repro query`` / ``repro cache`` are the CLI entry
points; docs/SERVICE.md documents the protocol and the HA semantics.
"""

from repro.service.admission import AdmissionQueue, Deadline
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.cache import (
    CACHE_SCHEMA,
    CacheEntry,
    ResultCache,
    payload_checksum,
    query_fingerprint,
)
from repro.service.client import (
    ServiceClient,
    connect_any,
    discover_address,
    discover_addresses,
    robust_query,
)
from repro.service.epoch import EPOCH_ENV, code_epoch, compute_epoch
from repro.service.replica import (
    FlightClaim,
    ReplicaFlights,
    deregister_replica,
    live_replicas,
    register_replica,
)
from repro.service.server import (
    SERVICE_FILE,
    SERVICE_PROTOCOL,
    ExplorationService,
    QueryExecutor,
    ServiceConfig,
    ServiceHandle,
    extract_summary,
    serve_in_background,
    spec_from_payload,
)

__all__ = [
    "AdmissionQueue",
    "Deadline",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "CACHE_SCHEMA",
    "CacheEntry",
    "ResultCache",
    "payload_checksum",
    "query_fingerprint",
    "ServiceClient",
    "connect_any",
    "discover_address",
    "discover_addresses",
    "robust_query",
    "EPOCH_ENV",
    "code_epoch",
    "compute_epoch",
    "FlightClaim",
    "ReplicaFlights",
    "register_replica",
    "deregister_replica",
    "live_replicas",
    "SERVICE_FILE",
    "SERVICE_PROTOCOL",
    "ExplorationService",
    "QueryExecutor",
    "ServiceConfig",
    "ServiceHandle",
    "extract_summary",
    "serve_in_background",
    "spec_from_payload",
]
