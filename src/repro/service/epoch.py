"""Code-version epoch: a hash of the physics-relevant source tree.

The service's cache keys (:func:`repro.service.cache.query_fingerprint`)
capture the *query* — spec, activities, solver — but deliberately not
the *code* that solved it, because changing the fingerprint function
would orphan every pre-existing journal a ``--resume`` must replay
bit-for-bit.  That leaves a coherence hole: upgrade the physics code,
restart the server over the same cache directory, and yesterday's
answers would be served as today's.

The epoch closes the hole without touching fingerprints.  It is a short
hex digest over every ``.py`` file of the ``repro`` package that can
influence a solve's numbers — everything except the serving layer
(:mod:`repro.service`), the observability layer (:mod:`repro.obs`) and
the CLI shims, none of which touch the numerics.  Each cache entry is
stamped with the epoch that produced it; on read, an entry from a
different epoch is **stale-but-keepable**: withheld from the fast path
(the query re-solves) but still reachable through the breaker-open
degraded stale-cache path, exactly like a TTL-expired entry.

``REPRO_EPOCH`` overrides the computed value — the documented hook for
simulating a code change in tests and CI (``ha-check`` uses it to prove
the re-solve-after-bump behaviour) and for operators who want explicit
cache generations.

The digest is computed once per process (first use) and cached; a
long-lived server never re-hashes the tree per query.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from typing import Optional

__all__ = ["EPOCH_ENV", "code_epoch", "compute_epoch", "reset_epoch_cache"]

#: Environment override: any non-empty token becomes the epoch verbatim.
EPOCH_ENV = "REPRO_EPOCH"

#: Top-level parts of the ``repro`` package excluded from the digest:
#: they orchestrate, observe or present — they never touch the numbers.
_EXCLUDED = ("service", "obs", "cli.py", "__main__.py")

_cached: Optional[str] = None


def compute_epoch(root: Optional[pathlib.Path] = None) -> str:
    """Digest the physics-relevant ``.py`` tree into 12 hex chars.

    Deterministic across processes and hosts for identical sources:
    files are walked in sorted relative-path order and both the path and
    the bytes feed the hash, so a rename counts as a change.
    """
    if root is None:
        root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts[0] in _EXCLUDED:
            continue
        digest.update(str(rel).encode("utf-8"))
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - racing editor/uninstall
            continue
        digest.update(b"\0")
    return digest.hexdigest()[:12]


def code_epoch() -> str:
    """The process-wide epoch (``REPRO_EPOCH`` override, else computed)."""
    global _cached
    override = os.environ.get(EPOCH_ENV, "").strip()
    if override:
        return override
    if _cached is None:
        _cached = compute_epoch()
    return _cached


def reset_epoch_cache() -> None:
    """Forget the memoized digest (tests that patch the tree or env)."""
    global _cached
    _cached = None
