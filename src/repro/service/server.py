"""The resilient exploration service: an asyncio newline-JSON front-end.

``repro serve`` turns the reproduction into design-exploration-as-a-
service: clients submit :class:`repro.runtime.PDNSpec`-shaped queries
over TCP (one JSON object per line, the same framing as the fleet
protocol in :mod:`repro.runtime.fleet`) and get back solved PDN
summaries.  Design-space exploration traffic is repeated-query shaped,
so the serving stack is built around a persistent content-addressed
cache and a ladder of robustness primitives:

1. **Fingerprint cache** — answers are memoized by the *same* content
   fingerprint the run supervisor journals
   (:func:`repro.service.cache.query_fingerprint`); repeated queries are
   sub-millisecond hits, bit-identical to a direct
   :class:`~repro.runtime.SweepEngine` run.
2. **Single-flight coalescing** — N concurrent identical queries cost
   one solve; the other N-1 await the leader's result.
3. **Bounded admission** — a full queue sheds with a typed 429-style
   response (:class:`repro.errors.ServiceOverloadError`); memory never
   grows with offered load.
4. **Deadlines** — per-request budgets expire queries in the queue and
   propagate into the supervisor's task-timeout machinery mid-solve
   (:meth:`~repro.runtime.RunSupervisor.deadline_scoped`); an overrun
   returns a typed 504-style response while the orphaned solve still
   populates the cache on completion, so the client's retry hits.
5. **Circuit breaker** — K consecutive solve failures open the breaker;
   while open, queries are answered from stale cache entries or a
   coarse-grid solve, flagged ``degraded: true``, and one probe per
   cooldown window tests recovery (:mod:`repro.service.breaker`).

Observability is first-class: the server's tallies live in a typed
:class:`~repro.obs.metrics.MetricsRegistry` (per-query latency
histograms by outcome and by stage, SLO error-budget counters), exposed
through ``metrics`` requests as counters, Prometheus text *and* a
mergeable wire form that ``repro dash`` folds into one fleet-wide view.
A query may carry a ``trace`` envelope (``{"id", "parent"}``): the
replica anchors its spans under the client's span, forwards the context
to fleet workers, and flushes the reassembled spans to
``trace-<replica_id>.jsonl``.  A bounded flight recorder keeps the last
N query events in memory, dumped atomically on any 5xx and at shutdown.

``health`` / ``ready`` / ``metrics`` requests expose liveness,
readiness and the full counter set (Prometheus text included); the
counters also land in ``BENCH_service.json`` (schema v8) at shutdown.
See docs/SERVICE.md for the wire protocol and failure semantics, and
docs/OBSERVABILITY.md for the distributed-tracing story.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FleetTransportError,
    ReproError,
    ServiceOverloadError,
    ServiceProtocolError,
    TaskTimeoutError,
)
from repro.grid.backends import default_backend_name, resolve_backend
from repro.obs.export import flush_spans
from repro.obs.logs import get_logger
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.trace import TRACE_DIR_ENV, get_tracer
from repro.runtime.fleet import ServiceFleet, parse_address
from repro.runtime.metrics import BENCH_SCHEMA, write_bench_json
from repro.runtime.spec import ARRANGEMENTS, PDNSpec
from repro.service.admission import AdmissionQueue, Deadline
from repro.service.breaker import STATE_CODES, CircuitBreaker
from repro.service.cache import ResultCache, query_fingerprint
from repro.service.epoch import code_epoch
from repro.service.replica import (
    SERVICE_FILE,
    ReplicaFlights,
    deregister_replica,
    register_replica,
)

__all__ = [
    "SERVICE_PROTOCOL",
    "SERVICE_FILE",
    "ServiceConfig",
    "QueryExecutor",
    "ExplorationService",
    "ServiceHandle",
    "extract_summary",
    "spec_from_payload",
    "serve_in_background",
]

_log = get_logger(__name__)

#: Bumped on any wire-format change; hello-free protocol, so the
#: version rides in every response envelope instead.
SERVICE_PROTOCOL = 1

# SERVICE_FILE (the service.json discovery basename) now lives in
# repro.service.replica, which owns the multi-replica registry; it is
# re-exported here for pre-HA importers.
assert SERVICE_FILE == "service.json"

#: Fields a query's "spec" object may carry (the PDNSpec surface).
_SPEC_FIELDS = (
    "arrangement",
    "n_layers",
    "topology",
    "power_pad_fraction",
    "vdd_pads_per_core",
    "grid_nodes",
    "converters_per_core",
)


def extract_summary(outcome) -> Dict[str, Any]:
    """The service's sweep extractor: one JSON-serialisable summary.

    Module-level (hence picklable) so supervised process-mode runs can
    ship it to pool workers; values are plain floats, so a JSON round
    trip through the wire is bit-exact — a cached service answer equals
    a direct engine run to the last ulp.
    """
    from repro.core.experiments.base import outcome_degraded

    result = outcome.unwrap()
    return {
        "max_ir_drop_v": float(result.max_ir_drop()),
        "max_ir_drop_fraction": float(result.max_ir_drop_fraction()),
        "efficiency": float(result.efficiency()),
        "load_power_w": float(result.load_power()),
        "source_power_w": float(result.source_power()),
        "degraded_solve": bool(outcome_degraded(outcome)),
    }


def spec_from_payload(payload: Any) -> PDNSpec:
    """Validate a request's "spec" object into a PDNSpec (typed errors)."""
    if not isinstance(payload, dict):
        raise ServiceProtocolError(
            f"query 'spec' must be an object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_SPEC_FIELDS))
    if unknown:
        raise ServiceProtocolError(
            f"unknown spec field(s) {unknown}; allowed: {list(_SPEC_FIELDS)}"
        )
    try:
        return PDNSpec(**payload)
    except (TypeError, ValueError) as exc:
        raise ServiceProtocolError(f"invalid spec: {exc}") from None


def _parse_activities(payload: Any) -> Optional[Tuple[float, ...]]:
    if payload is None:
        return None
    if not isinstance(payload, (list, tuple)):
        raise ServiceProtocolError(
            "query 'activities' must be a list of numbers or null"
        )
    try:
        return tuple(float(a) for a in payload)
    except (TypeError, ValueError) as exc:
        raise ServiceProtocolError(f"invalid activities: {exc}") from None


def _parse_deadline(payload: Any, default_s: Optional[float]) -> Deadline:
    if payload is None:
        return Deadline.after(default_s)
    try:
        budget = float(payload)
    except (TypeError, ValueError):
        raise ServiceProtocolError(
            f"query 'deadline_s' must be a number, got {payload!r}"
        ) from None
    if budget != budget or budget <= 0:
        raise ServiceProtocolError(
            f"query 'deadline_s' must be > 0 and finite, got {payload!r}"
        )
    return Deadline.after(budget)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass
class ServiceConfig:
    """Knobs of the serving stack (all ``repro serve``-settable)."""

    #: Bind address; port 0 picks a free port (see ``service.json``).
    bind: str = "127.0.0.1:0"
    #: Cache directory (created; swept for stale tmp files on open).
    cache_dir: str = "service-cache"
    #: LRU size cap in MiB; None = unbounded.
    cache_max_mb: Optional[float] = None
    #: Entry freshness window; expired entries serve only as degraded
    #: stale answers while the breaker is open.  None = never stale.
    cache_ttl_s: Optional[float] = None
    #: Bounded admission queue length (full = typed 429 shed).
    max_queue: int = 64
    #: Concurrent solver workers draining the queue.
    solve_workers: int = 1
    #: Default per-request deadline when a query does not set one.
    default_deadline_s: Optional[float] = None
    #: Consecutive solve failures that open the breaker.
    breaker_threshold: int = 5
    #: Seconds the breaker stays open before a half-open probe.
    breaker_cooldown_s: float = 10.0
    #: Grid resolution of breaker-open degraded answers (skipped when
    #: the query is already at or below it).
    coarse_grid: int = 6
    #: Optional :class:`repro.runtime.SupervisorConfig`: run each miss
    #: under a RunSupervisor (retry/quarantine; process mode enforces
    #: deadlines by killing hung workers).  None = plain engine.
    supervision: Optional[Any] = None
    #: Basename of the BENCH counters file written at shutdown into
    #: ``cache_dir`` (None disables).
    bench_name: Optional[str] = "service"
    #: ``HOST:PORT`` to bind a :class:`repro.runtime.fleet.ServiceFleet`
    #: on: cache misses fan out to attached ``repro worker`` processes,
    #: degrading to the local executor when none is connected.
    fleet: Optional[str] = None
    #: Per-miss fleet lease deadline (expired leases re-lease).
    lease_timeout_s: float = 60.0
    #: Grace window with zero attached workers before a fleet solve
    #: falls back to the local executor.
    fleet_wait_s: float = 10.0
    #: Stable identity in the replica registry (default: pid-derived).
    replica_id: Optional[str] = None
    #: Code-version epoch override for the cache (tests/CI; normally
    #: computed from the source tree, see :mod:`repro.service.epoch`).
    epoch: Optional[str] = None
    #: Latency objective (seconds) for SLO accounting: a query answered
    #: slower than this — or not answered 200 at all — burns error
    #: budget (``service_slo_total{result="breached"}``).  None disables.
    slo_latency_s: Optional[float] = None
    #: Flight-recorder ring size: the last N query events kept in
    #: memory and dumped atomically on any 5xx response and at shutdown
    #: (``flight-recorder-<replica_id>.json``).  0 disables.
    flight_recorder: int = 256
    #: Seconds between background flushes of finished spans to this
    #: replica's ``trace-<replica_id>.jsonl`` (tracing enabled only).
    trace_flush_s: float = 5.0


# ----------------------------------------------------------------------
# Query execution (sync, runs on worker threads)
# ----------------------------------------------------------------------

class QueryExecutor:
    """Runs cache misses on a shared engine (optionally supervised).

    One lock serializes solves: the engine's structure cache and the
    supervisor are not reentrant, and concurrency for the service comes
    from cache hits and coalescing, not parallel factorisations.  A
    supervised executor threads each query's remaining deadline into
    the supervisor's task-timeout machinery via
    :meth:`~repro.runtime.RunSupervisor.deadline_scoped`.
    """

    def __init__(self, engine: Any = None, supervision: Any = None):
        from repro.runtime import RunSupervisor, SweepEngine

        self.engine = engine or SweepEngine()
        self._supervisor = (
            RunSupervisor(engine=self.engine, config=supervision)
            if supervision is not None
            else None
        )
        self._lock = threading.Lock()

    def solve(
        self,
        spec: PDNSpec,
        activities: Optional[Tuple[float, ...]],
        deadline: Deadline,
    ) -> Dict[str, Any]:
        from repro.runtime import SweepPoint

        deadline.check()
        point = SweepPoint(spec=spec, layer_activities=activities)
        with self._lock:
            deadline.check()
            if self._supervisor is None:
                result = self.engine.run([point], extract=extract_summary)
                return result.values[0]
            remaining = deadline.remaining_s()
            supervisor = (
                self._supervisor
                if remaining is None
                else self._supervisor.deadline_scoped(remaining)
            )
            result = supervisor.run([point], extract=extract_summary)
        value = result.values[0]
        if value is not None:
            return value
        # Quarantined: surface the recorded error as a typed failure.
        record = result.report.tasks[0]
        if record.timeouts:
            raise DeadlineExceededError(
                f"solve exceeded the remaining deadline budget "
                f"({record.error})",
                task=record.fingerprint,
                timeout_s=deadline.budget_s,
            )
        raise ReproError(
            f"solve quarantined after {record.attempts} attempt(s): "
            f"{record.error or 'unknown error'}"
        )


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------

@dataclass
class _WorkItem:
    """One admitted query travelling from admission to a solver worker."""

    fingerprint: str
    spec: PDNSpec
    activities: Optional[Tuple[float, ...]]
    deadline: Deadline
    future: "asyncio.Future"
    solver: str
    #: The admitting request's trace context (a ``worker_context`` dict)
    #: so the solver worker — a different asyncio task — re-anchors its
    #: spans under the request's span chain.  None when tracing is off.
    trace: Optional[Dict[str, Any]] = None


class ExplorationService:
    """The asyncio TCP server tying cache, admission and breaker together.

    ``solve_fn(spec, activities, deadline) -> dict`` defaults to a
    :class:`QueryExecutor` over a shared engine; tests inject stubs.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        engine: Any = None,
        solve_fn: Optional[Callable[..., Dict[str, Any]]] = None,
    ):
        self.config = config or ServiceConfig()
        self.epoch = self.config.epoch or code_epoch()
        self.replica_id = self.config.replica_id or f"replica-{os.getpid()}"
        self.cache = ResultCache(
            self.config.cache_dir,
            max_mb=self.config.cache_max_mb,
            ttl_s=self.config.cache_ttl_s,
            epoch=self.epoch,
        )
        self.flights = ReplicaFlights(self.cache.directory)
        self.fleet: Optional[ServiceFleet] = None
        self.fleet_address: Optional[str] = None
        self.admission = AdmissionQueue(max_queue=self.config.max_queue)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        if solve_fn is None:
            self._executor = QueryExecutor(
                engine=engine, supervision=self.config.supervision
            )
            solve_fn = self._executor.solve
        else:
            self._executor = None
        self.solve_fn = solve_fn
        self._flights: Dict[str, asyncio.Future] = {}
        self._connections: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: List[asyncio.Task] = []
        self._stopped = asyncio.Event()
        self._draining = False
        self._started_at = time.monotonic()
        self.address: Optional[str] = None
        self.inflight = 0
        # Typed telemetry: one live registry mutated on the hot path
        # (event loop *and* to_thread solver threads — the metric types
        # are lock-protected).  The legacy counters() dict is a view.
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "service_requests_total", "requests received, by kind"
        )
        self._m_responses = self.metrics.counter(
            "service_responses_total", "responses sent, by status"
        )
        self._m_solves = self.metrics.counter(
            "service_solves_total", "backend solves, by outcome"
        )
        self._m_degraded = self.metrics.counter(
            "service_degraded_total", "degraded answers, by mode"
        )
        self._m_coalesced = self.metrics.counter(
            "service_coalesced_total", "queries coalesced into a flight"
        )
        self._m_replica = self.metrics.counter(
            "service_replica_total", "cross-replica flight events"
        )
        self._m_fleet = self.metrics.counter(
            "service_fleet_total", "fleet fan-out events"
        )
        self._m_slo = self.metrics.counter(
            "service_slo_total", "queries vs the latency objective"
        )
        self._m_query_latency = self.metrics.histogram(
            "service_query_latency",
            "per-query wall time, by outcome",
            buckets=LATENCY_BUCKETS,
        )
        self._m_stage_latency = self.metrics.histogram(
            "service_stage_latency",
            "per-stage wall time (cache/queue/flight-wait/solve/fleet)",
            buckets=LATENCY_BUCKETS,
        )
        #: Flight recorder: recent query events for post-mortems.
        self._recorder: Optional[deque] = (
            deque(maxlen=int(self.config.flight_recorder))
            if int(self.config.flight_recorder) > 0
            else None
        )

    # Legacy int counters survive as views over the typed registry.
    @property
    def coalesced(self) -> int:
        return int(self._m_coalesced.total())

    @property
    def replica_hits(self) -> int:
        """Queries answered by waiting out a peer replica's flight."""
        return int(self._m_replica.value(event="hits"))

    @property
    def replica_waits(self) -> int:
        """Times this replica deferred a solve to a peer's flight claim."""
        return int(self._m_replica.value(event="waits"))

    @property
    def fleet_fallbacks(self) -> int:
        """Fleet solves that fell back to the local executor."""
        return int(self._m_fleet.value(event="fallbacks"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> str:
        """Open the cache, bind, start workers; returns ``host:port``."""
        host, port = parse_address(self.config.bind)
        self.cache.open()
        self.flights.open()
        if self.config.fleet:
            fleet = ServiceFleet(
                self.config.fleet,
                extract=extract_summary,
                lease_timeout_s=self.config.lease_timeout_s,
                wait_s=self.config.fleet_wait_s,
            )
            try:
                self.fleet_address = fleet.start()
            except FleetTransportError as exc:
                _log.warning(
                    "service fleet unavailable; solving locally",
                    extra={"error": str(exc)},
                )
            else:
                self.fleet = fleet
        self._server = await asyncio.start_server(
            self._serve_connection, host=host, port=port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = f"{sock[0]}:{sock[1]}"
        self._started_at = time.monotonic()
        for i in range(max(1, int(self.config.solve_workers))):
            self._workers.append(
                asyncio.create_task(self._solver_worker(), name=f"solver-{i}")
            )
        if get_tracer().enabled:
            self._workers.append(
                asyncio.create_task(self._trace_flusher(), name="trace-flush")
            )
        self._write_discovery()
        _log.info(
            "exploration service listening",
            extra={
                "address": self.address,
                "replica": self.replica_id,
                "epoch": self.epoch,
                "fleet": self.fleet_address,
                "cache_dir": str(self.cache.directory),
                "max_queue": self.admission.max_queue,
            },
        )
        return self.address

    def _write_discovery(self) -> None:
        register_replica(
            self.cache.directory,
            replica_id=self.replica_id,
            address=self.address,
            epoch=self.epoch,
            fleet=self.fleet_address if self.fleet else None,
            protocol=SERVICE_PROTOCOL,
        )

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight queries, stop.

        With ``drain`` the admission queue is emptied by the workers and
        every outstanding response is written before the loop stops —
        clients never see a connection die mid-answer on a clean stop.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if drain:
            try:
                await asyncio.wait_for(self.admission.drain(), timeout=60.0)
            except asyncio.TimeoutError:  # pragma: no cover - safety net
                _log.warning("shutdown drain timed out; stopping anyway")
            # Give connection handlers one loop turn to write responses.
            await asyncio.sleep(0)
        for worker in self._workers:
            worker.cancel()
        # Close idle connections so their handlers see EOF and exit
        # before the loop tears down (no orphaned readline tasks).
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if self._server is not None:
            await self._server.wait_closed()
        if self.fleet is not None:
            await asyncio.to_thread(self.fleet.close)
        try:
            deregister_replica(self.cache.directory, self.replica_id)
        except OSError:  # pragma: no cover - registry dir gone
            pass
        self._flush_trace()
        self._dump_recorder(reason="shutdown")
        self._write_bench()
        self._stopped.set()
        _log.info("exploration service stopped", extra={"drained": drain})

    def _write_bench(self) -> None:
        if self.config.bench_name is None:
            return
        try:
            write_bench_json(
                self.config.bench_name,
                self.bench_payload(),
                directory=self.cache.directory,
            )
        except OSError:  # pragma: no cover - disk full on shutdown
            _log.warning("could not write service BENCH file")

    # ------------------------------------------------------------------
    # Tracing + flight recorder
    # ------------------------------------------------------------------
    async def _trace_flusher(self) -> None:
        """Periodic span flush: keeps trace files fresh without a
        per-request rewrite (flush_spans rewrites the whole file)."""
        interval = max(0.5, float(self.config.trace_flush_s))
        while True:
            await asyncio.sleep(interval)
            await asyncio.to_thread(self._flush_trace)

    def _flush_trace(self) -> None:
        """Drain finished spans into ``trace-<replica_id>.jsonl``."""
        tracer = get_tracer()
        if not tracer.enabled or len(tracer) == 0:
            return
        trace_dir = (
            os.environ.get(TRACE_DIR_ENV, "").strip()
            or str(self.cache.directory)
        )
        try:
            flush_spans(tracer.drain(), self.replica_id, trace_dir=trace_dir)
        except OSError:  # pragma: no cover - disk trouble mid-run
            _log.warning("could not flush service trace spans")

    def _record_flight(
        self,
        message: Dict[str, Any],
        response: Dict[str, Any],
        outcome: str,
        wall_s: float,
        peer: Any,
    ) -> None:
        if self._recorder is None:
            return
        trace = message.get("trace")
        self._recorder.append(
            {
                "t": round(time.time(), 6),
                "fingerprint": response.get("fingerprint"),
                "status": response.get("status"),
                "code": response.get("code"),
                "outcome": outcome,
                "wall_s": round(wall_s, 6),
                "cached": bool(response.get("cached", False)),
                "degraded": bool(response.get("degraded", False)),
                "coalesced": bool(response.get("coalesced", False)),
                "peer": str(peer) if peer else None,
                "trace": trace.get("id") if isinstance(trace, dict) else None,
            }
        )
        code = int(response.get("code", 0) or 0)
        if code >= 500:
            self._dump_recorder(reason=f"status-{code}")

    def _dump_recorder(self, reason: str) -> None:
        """Atomically dump the ring buffer for post-mortems."""
        if self._recorder is None or not self._recorder:
            return
        path = (
            self.cache.directory / f"flight-recorder-{self.replica_id}.json"
        )
        payload = {
            "kind": "flight-recorder",
            "replica": self.replica_id,
            "reason": reason,
            "dumped_at": round(time.time(), 3),
            "capacity": self._recorder.maxlen,
            "events": list(self._recorder),
        }
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - disk trouble
            _log.warning(
                "could not dump flight recorder", extra={"reason": reason}
            )

    # ------------------------------------------------------------------
    # Counters / metrics
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, Any]:
        def by(counter, label: str) -> Dict[str, int]:
            return {
                key: int(value)
                for key, value in counter.by_label(label).items()
            }

        counters = {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "epoch": self.epoch,
            "requests": by(self._m_requests, "kind"),
            "responses": by(self._m_responses, "status"),
            "cache": self.cache.counters(),
            "admission": self.admission.counters(),
            "breaker": self.breaker.snapshot(),
            "solves": by(self._m_solves, "status"),
            "degraded": by(self._m_degraded, "mode"),
            "coalesced": self.coalesced,
            "inflight": self.inflight,
            "latency": self._latency_summary(),
            "slo": self._slo_summary(),
            "replica": {
                "id": self.replica_id,
                "waits": self.replica_waits,
                "hits": self.replica_hits,
                **self.flights.counters(),
            },
        }
        if self.fleet is not None:
            counters["fleet"] = {
                **self.fleet.counters(),
                "fallbacks": self.fleet_fallbacks,
            }
        return counters

    def _latency_summary(self) -> Dict[str, Any]:
        histogram = self._m_query_latency
        summary: Dict[str, Any] = {
            "count": histogram.total_count(),
            "sum_s": round(histogram.total_sum(), 6),
            "by_outcome": {
                outcome: int(count)
                for outcome, count in histogram.count_by_label(
                    "outcome"
                ).items()
            },
        }
        for q, name in ((0.5, "p50_s"), (0.95, "p95_s"), (0.99, "p99_s")):
            estimate = histogram.quantile(q)
            summary[name] = None if estimate is None else round(estimate, 6)
        return summary

    def _slo_summary(self) -> Dict[str, Any]:
        ok = int(self._m_slo.value(result="ok"))
        breached = int(self._m_slo.value(result="breached"))
        total = ok + breached
        return {
            "objective_s": self.config.slo_latency_s,
            "ok": ok,
            "breached": breached,
            "budget_burn": round(breached / total, 6) if total else 0.0,
        }

    def registry(self) -> MetricsRegistry:
        """One scrape snapshot: the live typed registry merged with the
        component counters (cache/admission/breaker/flights/fleet) and
        point-in-time state gauges (Prometheus- and wire-ready)."""
        registry = MetricsRegistry()
        registry.merge(self.metrics)
        cache = registry.counter(
            "service_cache_total", "cache events (hit/miss/stale/write/evict)"
        )
        cache_counters = self.cache.counters()
        for event in (
            "hits",
            "misses",
            "stale_hits",
            "writes",
            "evictions",
            "corrupt",
            "epoch_misses",
        ):
            cache.inc(cache_counters[event], event=event)
        replica = registry.counter(
            "service_replica_total", "cross-replica flight events"
        )
        for event, count in self.flights.counters().items():
            replica.inc(count, event=event)
        if self.fleet is not None:
            fleet = registry.counter(
                "service_fleet_total", "fleet fan-out events"
            )
            fleet.inc(self.fleet.tasks_done, event="tasks_done")
            fleet.inc(self.fleet.task_failures, event="task_failures")
            fleet.inc(self.fleet.leases_expired, event="leases_expired")
            fleet.inc(self.fleet.worker_deaths, event="worker_deaths")
        shed = registry.counter(
            "service_shed_total", "queries shed by admission control"
        )
        shed.inc(self.admission.shed, reason="queue_full")
        shed.inc(self.admission.expired_in_queue, reason="deadline_in_queue")
        transitions = registry.counter(
            "service_breaker_transitions_total", "breaker transitions, by state"
        )
        for state, count in self.breaker.transitions():
            transitions.inc(count, to=state)
        gauge = registry.gauge("service_state", "service state gauges")
        gauge.set(self.admission.depth(), field="queue_depth")
        gauge.set(self.inflight, field="inflight")
        gauge.set(STATE_CODES[self.breaker.state], field="breaker_state")
        gauge.set(len(self.cache), field="cache_entries")
        gauge.set(self.cache.size_bytes(), field="cache_size_bytes")
        gauge.set(time.monotonic() - self._started_at, field="uptime_s")
        gauge.set(self._slo_summary()["budget_burn"], field="slo_budget_burn")
        if self.fleet is not None:
            gauge.set(self.fleet.workers_connected(), field="fleet_workers")
        return registry

    def bench_payload(self) -> Dict[str, Any]:
        """The BENCH schema-v8 counter block (see runtime.metrics)."""
        return {
            "schema": BENCH_SCHEMA,
            "service": self.counters(),
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ServiceProtocolError(
                            "request must be a JSON object"
                        )
                except json.JSONDecodeError as exc:
                    message = {}
                    response = self._error_response(
                        None,
                        ServiceProtocolError(f"unparsable request: {exc.msg}"),
                    )
                else:
                    response = await self._dispatch(message, peer=peer)
                response.setdefault("protocol", SERVICE_PROTOCOL)
                if "id" in message:
                    response["id"] = message["id"]
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode(
                        "utf-8"
                    )
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:  # pragma: no cover - handler must never leak
            _log.warning(
                "service connection handler error", extra={"peer": str(peer)}
            )
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, message: Dict[str, Any], peer: Any = None
    ) -> Dict[str, Any]:
        kind = message.get("kind")
        self._m_requests.inc(kind=str(kind))
        if kind == "query":
            return await self._handle_query(message, peer=peer)
        if kind == "health":
            return self._handle_health()
        if kind == "ready":
            return self._handle_ready()
        if kind == "metrics":
            registry = self.registry()
            return {
                "kind": "metrics",
                "status": "ok",
                "code": 200,
                "counters": self.counters(),
                "prometheus": registry.to_prometheus(),
                # Mergeable wire form: `repro dash` folds these across
                # replicas without parsing the Prometheus text.
                "series": registry.to_wire(),
            }
        if kind == "shutdown":
            drain = bool(message.get("drain", True))
            asyncio.get_running_loop().create_task(self.shutdown(drain=drain))
            return {
                "kind": "shutdown",
                "status": "draining" if drain else "stopping",
                "code": 200,
            }
        return self._error_response(
            None, ServiceProtocolError(f"unknown request kind {kind!r}")
        )

    def _handle_health(self) -> Dict[str, Any]:
        response = {
            "kind": "health",
            "status": "ok",
            "code": 200,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "breaker": self.breaker.state,
            "queue_depth": self.admission.depth(),
            "inflight": self.inflight,
            "cache_entries": len(self.cache),
            "draining": self._draining,
            "replica": self.replica_id,
            "epoch": self.epoch,
        }
        if self.fleet is not None:
            response["fleet_workers"] = self.fleet.workers_connected()
        return response

    def _handle_ready(self) -> Dict[str, Any]:
        reasons = []
        if self._draining:
            reasons.append("draining")
        if self.admission.depth() >= self.admission.max_queue:
            reasons.append("admission queue full")
        if self.breaker.state == "open":
            reasons.append("breaker open (degraded answers only)")
        ready = "draining" not in reasons and (
            "admission queue full" not in reasons
        )
        return {
            "kind": "ready",
            "status": "ok" if ready else "not-ready",
            "code": 200 if ready else 503,
            "reasons": reasons,
        }

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def _handle_query(
        self, message: Dict[str, Any], peer: Any = None
    ) -> Dict[str, Any]:
        tracer = get_tracer()
        trace = message.get("trace")
        trace = trace if isinstance(trace, dict) else {}
        t0 = time.perf_counter()
        # Anchor this request's spans under the client's span (when the
        # envelope carries trace context) — contextvars keep concurrent
        # requests on separate anchors.
        with tracer.remote_context(trace.get("id"), trace.get("parent")):
            with tracer.span(
                "service.request",
                transport="tcp",
                replica=self.replica_id,
                peer=str(peer) if peer else "",
            ) as request_span:
                response = await self._answer_query(message)
                request_span.set(
                    fingerprint=response.get("fingerprint"),
                    status=response.get("status"),
                    code=response.get("code"),
                    cached=response.get("cached", False),
                    degraded=response.get("degraded", False),
                )
        wall = time.perf_counter() - t0
        response["wall_s"] = round(wall, 6)
        status = str(response.get("status", "unknown"))
        self._m_responses.inc(status=status)
        outcome = self._classify(response)
        self._m_query_latency.observe(wall, outcome=outcome)
        if self.config.slo_latency_s is not None:
            code = int(response.get("code", 0) or 0)
            breached = code != 200 or wall > self.config.slo_latency_s
            self._m_slo.inc(result="breached" if breached else "ok")
        self._record_flight(message, response, outcome, wall, peer)
        return response

    @staticmethod
    def _classify(response: Dict[str, Any]) -> str:
        """The latency-histogram outcome label for one response:
        ``hit|miss|stale|degraded|shed|timeout|error``."""
        status = response.get("status")
        if status == "ok":
            if response.get("degraded"):
                if response.get("degraded_mode") == "stale-cache":
                    return "stale"
                return "degraded"
            return "hit" if response.get("cached") else "miss"
        if status == "overloaded":
            return "shed"
        if status == "deadline":
            return "timeout"
        return "error"

    async def _answer_query(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            spec = spec_from_payload(message.get("spec"))
            activities = _parse_activities(message.get("activities"))
            deadline = _parse_deadline(
                message.get("deadline_s"), self.config.default_deadline_s
            )
            if activities is not None and len(activities) != spec.n_layers:
                raise ServiceProtocolError(
                    f"activities has {len(activities)} value(s) for "
                    f"{spec.n_layers} layer(s)"
                )
        except ServiceProtocolError as exc:
            return self._error_response(None, exc)
        solver = resolve_backend(default_backend_name()).name
        fingerprint = query_fingerprint(spec, activities, solver)
        tracer = get_tracer()

        # 1. Cache fast path: repeated queries never touch admission.
        probe_t0 = time.perf_counter()
        entry = self.cache.get(fingerprint)
        probe_s = time.perf_counter() - probe_t0
        self._m_stage_latency.observe(probe_s, stage="cache")
        tracer.record(
            "service.cache_probe",
            probe_s,
            fingerprint=fingerprint,
            hit=entry is not None,
        )
        if entry is not None:
            return self._ok_response(
                fingerprint, entry.payload, solver, cached=True
            )

        if self._draining:
            return self._error_response(
                fingerprint,
                ServiceOverloadError(
                    "service is draining for shutdown", retry_after_s=1.0
                ),
                status="unavailable",
                code=503,
            )

        # 2. Single-flight: concurrent identical queries share one solve.
        flight = self._flights.get(fingerprint)
        coalesced = flight is not None
        if flight is None:
            flight = asyncio.get_running_loop().create_future()
            self._flights[fingerprint] = flight
            item = _WorkItem(
                fingerprint=fingerprint,
                spec=spec,
                activities=activities,
                deadline=deadline,
                future=flight,
                solver=solver,
                trace=tracer.worker_context(),
            )
            try:
                # 3. Bounded admission: full queue = typed shed.
                self.admission.submit(item, deadline)
            except ServiceOverloadError as exc:
                self._flights.pop(fingerprint, None)
                flight.cancel()
                return self._error_response(
                    fingerprint, exc, status="overloaded", code=429
                )
        else:
            self._m_coalesced.inc()

        # 4. Await the flight under *this* request's own deadline.
        wait_t0 = time.perf_counter()
        try:
            remaining = deadline.remaining_s()
            payload = await asyncio.wait_for(
                asyncio.shield(flight), timeout=remaining
            )
        except asyncio.TimeoutError:
            return self._error_response(
                fingerprint,
                DeadlineExceededError(
                    f"query {fingerprint} exceeded its "
                    f"{deadline.budget_s:g}s deadline while "
                    f"{'coalesced' if coalesced else 'queued/solving'}",
                    task=fingerprint,
                    timeout_s=deadline.budget_s,
                ),
                status="deadline",
                code=504,
            )
        except asyncio.CancelledError:
            return self._error_response(
                fingerprint,
                ServiceOverloadError("query cancelled during shutdown"),
                status="unavailable",
                code=503,
            )
        response = dict(payload)
        if coalesced:
            # Followers spent their wall waiting on the leader's flight.
            wait_s = time.perf_counter() - wait_t0
            self._m_stage_latency.observe(wait_s, stage="flight-wait")
            tracer.record(
                "service.flight_wait", wait_s, fingerprint=fingerprint
            )
            response["coalesced"] = True
        return response

    # ------------------------------------------------------------------
    # Solver workers
    # ------------------------------------------------------------------
    async def _solver_worker(self) -> None:
        tracer = get_tracer()
        while True:
            admitted = await self.admission.next()
            item: _WorkItem = admitted.item
            queued_s = max(0.0, time.monotonic() - admitted.admitted_at)
            self._m_stage_latency.observe(queued_s, stage="queue")
            self.inflight += 1
            trace_ctx = item.trace or {}
            try:
                # Re-anchor under the admitting request's span chain:
                # this worker is a different asyncio task, so the
                # request's contextvars do not reach here on their own.
                with tracer.remote_context(
                    trace_ctx.get("trace_id"), trace_ctx.get("parent_id")
                ):
                    tracer.record(
                        "service.queued",
                        queued_s,
                        fingerprint=item.fingerprint,
                    )
                    payload = await self._execute(item)
            except Exception as exc:  # pragma: no cover - worker armor
                payload = self._error_response(
                    item.fingerprint,
                    ReproError(f"internal service error: {exc}"),
                    status="solve-error",
                    code=500,
                )
            finally:
                self.inflight -= 1
                self._flights.pop(item.fingerprint, None)
                self.admission.task_done()
            if not item.future.done():
                item.future.set_result(payload)

    async def _execute(self, item: _WorkItem) -> Dict[str, Any]:
        # Expired while queued: typed timeout, never a wasted solve.
        if item.deadline.expired():
            self.admission.expired_in_queue += 1
            return self._error_response(
                item.fingerprint,
                DeadlineExceededError(
                    f"query {item.fingerprint} spent its "
                    f"{item.deadline.budget_s:g}s deadline in the "
                    "admission queue",
                    task=item.fingerprint,
                    timeout_s=item.deadline.budget_s,
                ),
                status="deadline",
                code=504,
            )
        allowed, probe = self.breaker.allow()
        if not allowed:
            return await self._degraded_answer(item)
        return await self._solve(item, probe=probe)

    async def _solve(self, item: _WorkItem, probe: bool) -> Dict[str, Any]:
        # Cross-replica single-flight: claim the fingerprint before
        # solving.  A refused claim means a peer replica is already
        # solving the same query — wait for its cache write instead of
        # duplicating the solve.  Claims are flock-held, so a peer dying
        # mid-solve auto-releases and the waiter promotes itself.
        claim = self.flights.try_claim(item.fingerprint)
        if claim is None:
            self._m_replica.inc(event="waits")
            outcome = await self._await_peer_flight(item)
            if isinstance(outcome, dict):
                return outcome
            claim = outcome  # the peer vanished: this replica leads now
        try:
            return await self._solve_as_leader(item, probe)
        finally:
            # Released only after the cache write (inside the leader
            # path), so a waiter that sees the claim free finds either
            # the entry or a dead leader — never a silent gap.
            claim.release()

    async def _await_peer_flight(self, item: _WorkItem):
        """Poll the shared cache while a peer replica solves ``item``.

        Returns a ready response dict (peer finished, or this query's
        deadline ran out) or a :class:`FlightClaim` when the peer
        released without caching (it crashed, or its solve failed) and
        this replica should lead the solve itself.
        """
        while True:
            entry = self.cache.get(item.fingerprint, count=False)
            if entry is not None:
                self._m_replica.inc(event="hits")
                response = self._ok_response(
                    item.fingerprint, entry.payload, item.solver, cached=True
                )
                response["coalesced"] = True
                response["coalesced_with"] = "replica"
                return response
            if item.deadline.expired():
                return self._error_response(
                    item.fingerprint,
                    DeadlineExceededError(
                        f"query {item.fingerprint} spent its "
                        f"{item.deadline.budget_s:g}s deadline waiting on "
                        "a peer replica's solve",
                        task=item.fingerprint,
                        timeout_s=item.deadline.budget_s,
                    ),
                    status="deadline",
                    code=504,
                )
            claim = self.flights.try_claim(item.fingerprint)
            if claim is not None:
                return claim
            await asyncio.sleep(0.05)

    def _run_backend(self, item: _WorkItem) -> Dict[str, Any]:
        """One miss's solve: fleet fan-out when workers are attached,
        the local executor otherwise (and on fleet transport trouble).

        Runs on a ``to_thread`` worker; ``asyncio.to_thread`` copied the
        solver task's contextvars, so spans opened here chain under the
        request's anchor, and ``worker_context()`` hands the fleet the
        per-query trace context to forward over the wire.
        """
        tracer = get_tracer()
        fleet = self.fleet
        if fleet is not None and fleet.workers_connected() > 0:
            stage_t0 = time.perf_counter()
            try:
                with tracer.span(
                    "service.fleet", fingerprint=item.fingerprint
                ):
                    result = fleet.solve(
                        item.spec,
                        item.activities,
                        timeout_s=item.deadline.remaining_s(),
                        solver=item.solver,
                        label=item.fingerprint,
                        trace_ctx=tracer.worker_context(),
                    )
            except FleetTransportError as exc:
                self._m_fleet.inc(event="fallbacks")
                _log.warning(
                    "fleet solve fell back to local executor",
                    extra={
                        "fingerprint": item.fingerprint,
                        "error": str(exc),
                    },
                )
            else:
                self._m_stage_latency.observe(
                    time.perf_counter() - stage_t0, stage="fleet"
                )
                return result
        stage_t0 = time.perf_counter()
        with tracer.span(
            "service.solve", fingerprint=item.fingerprint, backend=item.solver
        ):
            result = self.solve_fn(item.spec, item.activities, item.deadline)
        self._m_stage_latency.observe(
            time.perf_counter() - stage_t0, stage="solve"
        )
        return result

    async def _solve_as_leader(
        self, item: _WorkItem, probe: bool
    ) -> Dict[str, Any]:
        try:
            summary = await asyncio.to_thread(self._run_backend, item)
        except (DeadlineExceededError, TaskTimeoutError) as exc:
            # A timeout says nothing about backend health: the breaker
            # sees neither success nor failure.  A probe stays pending —
            # release it so the next query may probe again.
            if probe:
                self.breaker.record_failure()
            self._m_solves.inc(status="timeout")
            return self._error_response(
                item.fingerprint, exc, status="deadline", code=504
            )
        except ReproError as exc:
            self.breaker.record_failure()
            self._m_solves.inc(status="error")
            _log.warning(
                "service solve failed",
                extra={
                    "fingerprint": item.fingerprint,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            return self._error_response(
                item.fingerprint, exc, status="solve-error", code=500
            )
        except Exception as exc:
            self.breaker.record_failure()
            self._m_solves.inc(status="error")
            return self._error_response(
                item.fingerprint,
                ReproError(f"{type(exc).__name__}: {exc}"),
                status="solve-error",
                code=500,
            )
        self.breaker.record_success()
        self._m_solves.inc(status="ok")
        self.cache.put(item.fingerprint, summary)
        return self._ok_response(
            item.fingerprint, summary, item.solver, cached=False
        )

    async def _degraded_answer(self, item: _WorkItem) -> Dict[str, Any]:
        """Breaker-open path: stale cache, then coarse grid, then 503."""
        stale = self.cache.get(item.fingerprint, allow_stale=True)
        if stale is not None:
            self._m_degraded.inc(mode="stale-cache")
            response = self._ok_response(
                item.fingerprint, stale.payload, item.solver, cached=True
            )
            response.update(
                degraded=True,
                degraded_mode="stale-cache",
                stale=True,
                age_s=round(stale.age_s, 3),
            )
            return response
        coarse = min(self.config.coarse_grid, item.spec.grid_nodes)
        if coarse < item.spec.grid_nodes:
            coarse_spec = item.spec.with_(grid_nodes=coarse)
            try:
                summary = await asyncio.to_thread(
                    self.solve_fn, coarse_spec, item.activities, item.deadline
                )
            except Exception as exc:
                _log.warning(
                    "degraded coarse-grid solve failed",
                    extra={
                        "fingerprint": item.fingerprint,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            else:
                self._m_degraded.inc(mode="coarse-grid")
                response = self._ok_response(
                    item.fingerprint, summary, item.solver, cached=False
                )
                response.update(
                    degraded=True,
                    degraded_mode="coarse-grid",
                    coarse_grid=coarse,
                )
                return response
        self._m_degraded.inc(mode="unavailable")
        snapshot = self.breaker.snapshot()
        return self._error_response(
            item.fingerprint,
            CircuitOpenError(
                "solve backend circuit breaker is open and no degraded "
                "answer is available",
                failures=int(snapshot["consecutive_failures"]),
                retry_after_s=snapshot["retry_after_s"],
            ),
            status="unavailable",
            code=503,
        )

    # ------------------------------------------------------------------
    # Response envelopes
    # ------------------------------------------------------------------
    def _ok_response(
        self,
        fingerprint: str,
        payload: Dict[str, Any],
        solver: str,
        cached: bool,
    ) -> Dict[str, Any]:
        return {
            "kind": "result",
            "status": "ok",
            "code": 200,
            "fingerprint": fingerprint,
            "cached": cached,
            "degraded": False,
            "solver": solver,
            "result": payload,
        }

    def _error_response(
        self,
        fingerprint: Optional[str],
        error: ReproError,
        status: Optional[str] = None,
        code: Optional[int] = None,
    ) -> Dict[str, Any]:
        if status is None or code is None:
            status, code = {
                ServiceProtocolError: ("bad-request", 400),
                ServiceOverloadError: ("overloaded", 429),
                DeadlineExceededError: ("deadline", 504),
                CircuitOpenError: ("unavailable", 503),
            }.get(type(error), ("solve-error", 500))
        response: Dict[str, Any] = {
            "kind": "error",
            "status": status,
            "code": code,
            "error_type": type(error).__name__,
            "error": str(error),
        }
        if fingerprint is not None:
            response["fingerprint"] = fingerprint
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            response["retry_after_s"] = round(float(retry_after), 3)
        return response


# ----------------------------------------------------------------------
# Background-thread harness (tests, notebooks, scripts)
# ----------------------------------------------------------------------

@dataclass
class ServiceHandle:
    """A running service on a background thread, with its address."""

    service: ExplorationService
    address: str
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop = field(repr=False, default=None)

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        if self.loop is not None and self.loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self.service.shutdown(drain=drain), self.loop
            )
        self.thread.join(timeout=timeout_s)


def serve_in_background(
    config: Optional[ServiceConfig] = None,
    engine: Any = None,
    solve_fn: Optional[Callable[..., Dict[str, Any]]] = None,
) -> ServiceHandle:
    """Start an :class:`ExplorationService` on its own thread + loop."""
    service = ExplorationService(config=config, engine=engine, solve_fn=solve_fn)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            box["loop"] = asyncio.get_running_loop()
            box["address"] = await service.start()
            started.set()
            await service.serve_forever()

        try:
            asyncio.run(_main())
        except Exception as exc:  # startup failure: unblock the caller
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise ReproError("service did not start within 30s")
    if "error" in box:
        raise box["error"]
    return ServiceHandle(
        service=service,
        address=box["address"],
        thread=thread,
        loop=box["loop"],
    )


# Keep the spec-field tuple honest against PDNSpec's dataclass surface.
assert set(_SPEC_FIELDS) >= {
    f for f in PDNSpec.__dataclass_fields__
}, "spec fields drifted"
assert ARRANGEMENTS  # re-exported validation vocabulary stays imported
