"""Bounded admission control and per-request deadlines.

The service accepts queries into one bounded queue; solver workers
drain it.  Admission is **load-shedding by construction**: when the
queue is full, :meth:`AdmissionQueue.submit` raises a typed
:class:`repro.errors.ServiceOverloadError` *immediately* (the client
gets a 429-style response with a retry hint) instead of growing an
unbounded backlog that would eventually OOM the server — memory use is
bounded by ``max_queue`` no matter the offered load.

Each admitted query carries a :class:`Deadline`.  Deadlines are
monotonic-clock absolute instants, so they survive queueing: a query
that spent its whole budget waiting is *expired on pop* and answered
with a typed timeout without ever touching the solve backend, and a
query that starts solving hands its **remaining** budget to the
supervisor's task-timeout machinery
(:meth:`repro.runtime.supervisor.RunSupervisor.deadline_scoped`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import DeadlineExceededError, ServiceOverloadError

__all__ = ["Deadline", "AdmissionQueue"]


@dataclass(frozen=True)
class Deadline:
    """An absolute per-request deadline on the monotonic clock.

    ``None`` budget means "no deadline" (every check passes).
    """

    #: Absolute expiry instant (time.monotonic()); None = unbounded.
    expires_at: Optional[float] = None
    #: The original budget, kept for error messages.
    budget_s: Optional[float] = None

    @classmethod
    def after(cls, budget_s: Optional[float]) -> "Deadline":
        if budget_s is None:
            return cls()
        budget_s = float(budget_s)
        return cls(expires_at=time.monotonic() + budget_s, budget_s=budget_s)

    def remaining_s(self) -> Optional[float]:
        """Seconds left (never negative); None when unbounded."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def check(self, fingerprint: Optional[str] = None) -> None:
        """Raise a typed :class:`DeadlineExceededError` when expired."""
        if self.expired():
            budget = (
                f"{self.budget_s:g}s" if self.budget_s is not None else "?"
            )
            raise DeadlineExceededError(
                f"query{f' {fingerprint}' if fingerprint else ''} exceeded "
                f"its {budget} deadline",
                task=fingerprint,
                timeout_s=self.budget_s,
            )


@dataclass
class _Admitted:
    """One queued query: its work item plus admission bookkeeping."""

    item: Any
    deadline: Deadline
    admitted_at: float = field(default_factory=time.monotonic)


class AdmissionQueue:
    """A bounded asyncio queue that sheds instead of growing.

    ``max_queue`` bounds *waiting* queries (the in-flight solve slots
    are owned by the worker tasks draining this queue).  Counters are
    plain ints read by the service's metrics endpoint.
    """

    #: Retry-hint ramp: first shed suggests ``retry_base_s``, and each
    #: consecutive shed doubles the hint up to ``retry_cap_s``.  Under
    #: sustained overload clients are pushed further and further out
    #: (the hint is monotone non-decreasing while the streak lasts);
    #: one successful admission resets the ramp.
    retry_base_s = 0.5
    retry_cap_s = 30.0

    def __init__(self, max_queue: int = 64):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue)
        self.admitted = 0
        self.shed = 0
        self.expired_in_queue = 0
        self._shed_streak = 0

    # ------------------------------------------------------------------
    def depth(self) -> int:
        return self._queue.qsize()

    def retry_after_s(self) -> float:
        """The current backoff hint (doubles per consecutive shed)."""
        if self._shed_streak <= 0:
            return self.retry_base_s
        exponent = min(self._shed_streak - 1, 16)  # cap 2**k, not min()
        return min(self.retry_cap_s, self.retry_base_s * (2 ** exponent))

    def submit(self, item: Any, deadline: Deadline) -> None:
        """Admit one query or shed it with a typed overload error."""
        entry = _Admitted(item=item, deadline=deadline)
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            self.shed += 1
            self._shed_streak += 1
            raise ServiceOverloadError(
                f"admission queue full ({self.max_queue} waiting); "
                "query shed — retry with backoff",
                queue_depth=self.max_queue,
                limit=self.max_queue,
                retry_after_s=self.retry_after_s(),
            ) from None
        self.admitted += 1
        self._shed_streak = 0

    async def next(self) -> _Admitted:
        """Wait for the next admitted query (worker side)."""
        return await self._queue.get()

    def task_done(self) -> None:
        self._queue.task_done()

    async def drain(self) -> None:
        """Wait until every admitted query has been fully processed."""
        await self._queue.join()

    def counters(self) -> dict:
        return {
            "depth": self.depth(),
            "limit": self.max_queue,
            "admitted": self.admitted,
            "shed": self.shed,
            "expired_in_queue": self.expired_in_queue,
            "retry_after_s": self.retry_after_s(),
        }
