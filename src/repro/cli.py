"""Command-line interface: regenerate any paper experiment.

Examples::

    python -m repro table1
    python -m repro table2
    python -m repro fig3
    python -m repro fig5a --grid 16
    python -m repro fig6 --grid 16 --layers 8
    python -m repro fig7 --samples 1000
    python -m repro fig8
    python -m repro headline --grid 16
    python -m repro explore --imbalance 0.65
    python -m repro contingency --layers 4 --grid 16 --seed 7

Model/solver failures raise :class:`repro.errors.ReproError` subclasses;
the CLI reports them as a one-line message on stderr and exits with
status 2 instead of dumping a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'A Cross-Layer Design Exploration "
            "of Charge-Recycled Power-Delivery in Many-Layer 3D-IC' (DAC'15)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(
        name: str,
        help_text: str,
        grid: bool = False,
        layers: bool = False,
        seed: bool = False,
    ):
        cmd = sub.add_parser(name, help=help_text)
        if grid:
            cmd.add_argument(
                "--grid", type=int, default=20,
                help="model-grid nodes per die side (default 20)",
            )
        if layers:
            cmd.add_argument(
                "--layers", type=int, default=8, help="stacked layer count"
            )
        if seed:
            cmd.add_argument(
                "--seed", type=int, default=None,
                help="RNG seed (default: the repo-wide deterministic seed)",
            )
        return cmd

    add("table1", "Table 1: PDN modeling parameters")
    add("table2", "Table 2: TSV configurations")
    add("fig3", "Fig. 3: SC converter model validation")
    add("fig5a", "Fig. 5a: TSV array EM lifetime", grid=True)
    add("fig5b", "Fig. 5b: C4 array EM lifetime", grid=True)
    fig6 = add("fig6", "Fig. 6: IR drop vs workload imbalance", grid=True, layers=True)
    fig6.add_argument("--csv", type=str, default=None, help="also export to CSV")
    fig7 = add("fig7", "Fig. 7: PARSEC power distributions", seed=True)
    fig7.add_argument("--samples", type=int, default=1000)
    fig8 = add("fig8", "Fig. 8: system power efficiency", grid=True, layers=True)
    fig8.add_argument("--csv", type=str, default=None, help="also export to CSV")
    add("headline", "All headline claims in one report", grid=True)
    explore = add("explore", "Design-space exploration (Pareto frontier)", grid=True)
    explore.add_argument("--imbalance", type=float, default=0.65)
    explore.add_argument("--layers", type=int, default=8)
    explore.add_argument("--all-points", action="store_true")
    sens = add("sensitivity", "Technology-parameter tornado analysis",
               grid=True, layers=True)
    sens.add_argument(
        "--arrangement", choices=("regular", "voltage-stacked"), default="regular"
    )
    sens.add_argument("--metric", choices=("ir_drop", "efficiency"), default="ir_drop")
    noise = add("noise", "Statistical supply-noise profile under sampled workloads",
                grid=True, layers=True, seed=True)
    noise.add_argument("--trials", type=int, default=60)
    noise.add_argument("--converters", type=int, default=8)
    conting = add(
        "contingency",
        "N-k contingency: robustness under TSV/converter failures",
        seed=True,
    )
    conting.add_argument(
        "--layers", type=int, default=4, help="stacked layer count (default 4)"
    )
    conting.add_argument(
        "--grid", type=int, default=16,
        help="model-grid nodes per die side (default 16)",
    )
    conting.add_argument(
        "--fractions", type=str, default="0,0.05,0.1,0.2",
        help="comma-separated TSV failure fractions (default 0,0.05,0.1,0.2)",
    )
    conting.add_argument(
        "--converter-fraction", type=float, default=None,
        help="SC-converter failure fraction (default: same as the TSV fraction)",
    )
    conting.add_argument(
        "--no-severed-layer", action="store_true",
        help="skip the worst-case severed-layer row",
    )
    report = add("report", "Run everything; emit a consolidated report", grid=True)
    report.add_argument("--output", type=str, default=None,
                        help="write to a file instead of stdout")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    # Imports are deferred so `--help` stays instant.
    if args.command == "table1":
        from repro.core.experiments import table1_report

        print(table1_report())
    elif args.command == "table2":
        from repro.core.experiments import table2_report

        print(table2_report())
    elif args.command == "fig3":
        from repro.core.experiments import run_fig3

        print(run_fig3().format())
    elif args.command == "fig5a":
        from repro.core.experiments import run_fig5a

        print(run_fig5a(grid_nodes=args.grid).format())
    elif args.command == "fig5b":
        from repro.core.experiments import run_fig5b

        print(run_fig5b(grid_nodes=args.grid).format())
    elif args.command == "fig6":
        from repro.core.experiments import run_fig6

        result = run_fig6(n_layers=args.layers, grid_nodes=args.grid)
        print(result.format())
        if args.csv:
            from repro.analysis.export import fig6_to_csv

            print(f"wrote {fig6_to_csv(result, args.csv)}")
    elif args.command == "fig7":
        from repro.core.experiments import run_fig7

        print(run_fig7(n_samples=args.samples, rng=args.seed).format())
    elif args.command == "fig8":
        from repro.core.experiments import run_fig8

        result = run_fig8(n_layers=args.layers, grid_nodes=args.grid)
        print(result.format())
        if args.csv:
            from repro.analysis.export import fig8_to_csv

            print(f"wrote {fig8_to_csv(result, args.csv)}")
    elif args.command == "headline":
        from repro.core.experiments import run_headline

        print(run_headline(grid_nodes=args.grid).format())
    elif args.command == "explore":
        from repro.core.explorer import DesignSpaceExplorer

        explorer = DesignSpaceExplorer(
            n_layers=args.layers, imbalance=args.imbalance, grid_nodes=args.grid
        )
        print(explorer.explore().format(pareto_only=not args.all_points))
    elif args.command == "sensitivity":
        from repro.config.stackups import StackConfig
        from repro.core.sensitivity import SensitivityAnalysis

        analysis = SensitivityAnalysis(
            StackConfig(n_layers=args.layers, grid_nodes=args.grid),
            arrangement=args.arrangement,
            metric=args.metric,
        )
        print(analysis.format(analysis.run()))
    elif args.command == "noise":
        from repro.config.stackups import ProcessorSpec
        from repro.core.noise_profile import NoiseProfiler
        from repro.core.scenarios import build_stacked_pdn
        from repro.utils.rng import spawn_seeds
        from repro.workload.sampling import sample_suite

        # Two decoupled streams: one for the workload samples, one for
        # the trial draws (historical defaults 0/1 when unseeded).
        seeds = spawn_seeds(args.seed, 2) if args.seed is not None else [0, 1]
        pdn = build_stacked_pdn(
            args.layers, converters_per_core=args.converters, grid_nodes=args.grid
        )
        profiler = NoiseProfiler(pdn, sample_suite(ProcessorSpec(), rng=seeds[0]))
        profiles = profiler.compare_policies(trials=args.trials, rng=seeds[1])
        print(
            f"V-S PDN, {args.layers} layers, {args.converters} conv/core, "
            f"{args.trials} sampled operating points per policy"
        )
        for name, profile in profiles.items():
            print(
                f"  {name:>9}: mean {profile.mean:.2%}  P95 "
                f"{profile.percentile(95):.2%}  worst {profile.worst:.2%} of Vdd"
            )
    elif args.command == "contingency":
        from repro.core.experiments import run_contingency

        fractions = tuple(
            float(f) for f in args.fractions.split(",") if f.strip()
        )
        result = run_contingency(
            n_layers=args.layers,
            grid_nodes=args.grid,
            fractions=fractions,
            converter_fraction=args.converter_fraction,
            seed=args.seed,
            severed_layer=not args.no_severed_layer,
        )
        print(result.format())
    elif args.command == "report":
        from repro.core.report import generate_report

        text = generate_report(grid_nodes=args.grid)
        if args.output:
            import pathlib

            pathlib.Path(args.output).write_text(text)
            print(f"wrote {args.output}")
        else:
            print(text)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
