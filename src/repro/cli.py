"""Command-line interface: regenerate any paper experiment.

The subcommands are generated from the experiment registry
(:mod:`repro.core.experiments.base`) — every registered
:class:`~repro.core.experiments.base.Experiment` contributes its name,
help line and argument group automatically.

Examples::

    python -m repro table1
    python -m repro table2
    python -m repro fig3
    python -m repro fig5a --grid 16
    python -m repro fig6 --grid 16 --layers 8
    python -m repro fig7 --samples 1000
    python -m repro fig8
    python -m repro headline --grid 16
    python -m repro explore --imbalance 0.65
    python -m repro contingency --layers 4 --grid 16 --seed 7

Every subcommand also accepts the shared *run supervision* flags
(``--run-dir``, ``--resume``, ``--resume-salvage``, ``--max-retries``,
``--task-timeout``, ``--fail-fast``, ``--workers``) which route
engine-backed experiments through :class:`repro.runtime.RunSupervisor`
— checkpoint/resume, retry with backoff and worker-crash quarantine for
long sweeps::

    python -m repro headline --grid 24 --run-dir runs/headline
    python -m repro headline --grid 24 --resume runs/headline

and the *fleet* flags (``--fleet HOST:PORT``, ``--lease-timeout``,
``--fleet-wait``) which lease the same supervised tasks to ``repro
worker`` processes over TCP — on this machine or others — degrading
transparently to in-process execution when no worker connects::

    python -m repro headline --grid 24 --run-dir runs/h --fleet :7341 &
    python -m repro worker 127.0.0.1:7341

See docs/DISTRIBUTED.md for the protocol and failure semantics.

``repro serve`` runs the resilient exploration service — an async TCP
front-end that answers PDNSpec queries from a persistent fingerprint
cache with bounded admission, per-query ``--deadline`` budgets and
circuit-breaker degradation — and ``repro query`` is its client::

    python -m repro serve --cache-dir runs/svc --deadline 30 &
    python -m repro query --cache-dir runs/svc --layers 8 --grid 16
    python -m repro query --cache-dir runs/svc --service-metrics
    python -m repro query --cache-dir runs/svc --stop

See docs/SERVICE.md for the wire protocol and degradation semantics.
``repro dash`` watches the whole replica set at once — it scrapes every
replica in the discovery file and renders one merged fleet table::

    python -m repro dash --cache-dir runs/svc --watch 2

Every subcommand also takes ``--solver {lu,cholesky,iterative}`` (env:
``REPRO_SOLVER``) selecting the linear-solver backend from the registry
in :mod:`repro.grid.backends` — see docs/SOLVERS.md::

    python -m repro fig3 --solver cholesky

and the *observability* flags (``--trace [DIR]``, ``--log-level``; env:
``REPRO_TRACE``, ``REPRO_TRACE_DIR``, ``REPRO_LOG``) which record
hierarchical spans down to the solver's escalation rungs and emit
structured one-line JSON logs.  Profile a traced run afterwards::

    python -m repro headline --grid 24 --run-dir runs/headline --trace
    python -m repro trace runs/headline

See docs/OBSERVABILITY.md.

Model/solver failures raise :class:`repro.errors.ReproError` subclasses;
the CLI reports them as a one-line message on stderr and exits with
status 2 instead of dumping a traceback.  Invalid numeric flag values
(``--seed x``, ``--grid 0``, ...) get the same one-line treatment.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'A Cross-Layer Design Exploration "
            "of Charge-Recycled Power-Delivery in Many-Layer 3D-IC' (DAC'15)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.core.experiments import all_experiments
    from repro.core.experiments.base import (
        add_observability_arguments,
        add_solver_arguments,
        add_supervision_arguments,
    )

    for name, cls in all_experiments().items():
        cmd = sub.add_parser(name, help=cls.description)
        cls.configure_parser(cmd)
        add_supervision_arguments(cmd)
        add_solver_arguments(cmd)
        add_observability_arguments(cmd)
    return parser


def _flush_cli_trace() -> None:
    """Flush spans the experiment recorded outside an engine run.

    Engine/supervisor runs flush their own spans as they finish; what
    remains after the experiment span closes is the experiment envelope
    itself (plus anything from non-engine code paths).  Appending them
    to the same ``trace-<fingerprint>.jsonl`` completes the tree.
    """
    from repro.obs.export import flush_spans
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    if not tracer.enabled:
        return
    spans = tracer.drain()
    if spans:
        flush_spans(spans, tracer.trace_id or "cli", trace_id=tracer.trace_id)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import ReproError

    try:
        # Typed flag converters raise ReproError, which argparse does
        # not intercept — bad values surface here as one-line errors.
        args = build_parser().parse_args(argv)
    except ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    from repro.core.experiments import get_experiment
    from repro.core.experiments.base import (
        configure_observability,
        configure_solver,
    )

    configure_observability(args)
    from repro.obs.trace import get_tracer

    experiment_cls = get_experiment(args.command)
    try:
        configure_solver(args)
        with get_tracer().span("experiment", command=args.command):
            config = experiment_cls.config_from_args(args)
            result = experiment_cls().run(config)
    except ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    finally:
        if getattr(args, "solver", None) is not None:
            # The override is process-global; don't leak it past this
            # invocation (in-process callers may run main() repeatedly).
            from repro.grid.backends import set_default_backend

            set_default_backend(None)
        _flush_cli_trace()
    print(result.to_table())
    for note in result.notes:
        if note.startswith("warning:"):
            # Degraded-point warnings go through structured logging, not
            # bare prints — one JSON line on stderr, filterable by level.
            from repro.obs.logs import get_logger

            get_logger("cli").warning(
                note[len("warning:"):].strip(), extra={"experiment": args.command}
            )
        else:
            print(note)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
