"""Seeman-style compact model of the 2:1 push-pull SC converter.

Following paper Sec. 3.1 (and Seeman's design methodology), the converter
is reduced to an ideal 2:1 transformer plus:

* ``RSSL`` — the slow-switching-limit output impedance,
  ``RSSL = (sum |a_c,i|)^2 / (Ctot * fsw_eff)`` (paper Eq. 1), where in
  the push-pull interchanging topology both fly capacitors transfer
  charge on *both* clock phases, doubling the effective charge-transfer
  rate (``fsw_eff = 2 fsw``);
* ``RFSL`` — the fast-switching-limit impedance,
  ``RFSL = (sum |a_r,i|)^2 / (Gtot * Dcyc)`` (paper Eq. 2);
* ``RSERIES = sqrt(RSSL^2 + RFSL^2)`` — the series output resistance of
  Fig. 2 (0.6 ohm for the paper's design point at 50 MHz);
* ``RPAR`` — a shunt resistance across the input port capturing
  bottom-plate, switch-parasitic and gate-drive losses, scaling
  inversely with switching frequency.

The ideal output voltage is ``(V_top + V_bottom) / 2``; the model output
is that midpoint minus ``I_load * RSERIES`` (push-pull: the drop reverses
sign when the converter sinks current).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.utils.validation import check_positive

#: Sum of the capacitor charge-multiplier magnitudes for the 2:1
#: topology (one half of the output charge rides on the fly caps).
SUM_AC_2TO1 = 0.5
#: Sum of the switch charge-multiplier magnitudes for the 2:1 topology
#: (each phase conducts through switches carrying half the output
#: charge; four conducting switch slots per cycle).
SUM_AR_2TO1 = 1.0
#: Both fly caps of the push-pull interchanging pair move charge on both
#: phases, doubling the effective charge-transfer frequency.
PUSH_PULL_TRANSFERS_PER_CYCLE = 2.0


@dataclass(frozen=True)
class OperatingPoint:
    """Resolved electrical behaviour of the converter at one load."""

    #: Load current drawn from the output (A); negative = sinking.
    load_current: float
    #: Switching frequency used (Hz).
    switching_frequency: float
    #: Ideal (no-drop) output voltage (V).
    ideal_output_voltage: float
    #: Actual output voltage including the RSERIES drop (V).
    output_voltage: float
    #: Series (conduction + switching-limit) loss (W).
    series_loss: float
    #: Parasitic (bottom-plate / gate-drive) loss (W).
    parasitic_loss: float
    #: Power delivered to the load (W).
    output_power: float

    @property
    def input_power(self) -> float:
        """Power drawn from the stack input port (W)."""
        return self.output_power + self.series_loss + self.parasitic_loss

    @property
    def efficiency(self) -> float:
        """Power efficiency (0..1); zero when no power flows."""
        if self.input_power <= 0:
            return 0.0
        return self.output_power / self.input_power

    @property
    def voltage_drop(self) -> float:
        """Output droop relative to the ideal midpoint (V)."""
        return self.ideal_output_voltage - self.output_voltage


class SCCompactModel:
    """Compact electrical model of one 2:1 push-pull SC converter."""

    def __init__(self, spec: Optional[SCConverterSpec] = None):
        self.spec = spec or default_sc_spec()

    # -- impedances ------------------------------------------------------
    def r_ssl(self, fsw: Optional[float] = None) -> float:
        """Slow-switching-limit impedance (ohm) at ``fsw`` (paper Eq. 1)."""
        fsw = self._fsw(fsw)
        f_eff = fsw * PUSH_PULL_TRANSFERS_PER_CYCLE
        return SUM_AC_2TO1**2 / (self.spec.fly_capacitance * f_eff)

    def r_fsl(self) -> float:
        """Fast-switching-limit impedance (ohm) (paper Eq. 2)."""
        return SUM_AR_2TO1**2 / (self.spec.switch_conductance * self.spec.duty_cycle)

    def r_series(self, fsw: Optional[float] = None) -> float:
        """Total series output resistance ``sqrt(RSSL^2 + RFSL^2)`` (ohm)."""
        return math.hypot(self.r_ssl(fsw), self.r_fsl())

    def r_par(self, fsw: Optional[float] = None) -> float:
        """Parasitic shunt resistance (ohm) at ``fsw``.

        Parasitic loss is proportional to switching frequency, so the
        equivalent shunt resistance scales as ``f_nominal / fsw``.
        """
        fsw = self._fsw(fsw)
        return self.spec.parasitic_resistance * (self.spec.switching_frequency / fsw)

    # -- behaviour -------------------------------------------------------
    def operating_point(
        self,
        v_top: float,
        v_bottom: float,
        load_current: float,
        fsw: Optional[float] = None,
    ) -> OperatingPoint:
        """Resolve output voltage, losses and efficiency at one load.

        ``load_current`` may be negative (the push-pull converter then
        sinks charge from the intermediate rail); losses are always
        positive.
        """
        if v_top <= v_bottom:
            raise ValueError("v_top must exceed v_bottom")
        fsw = self._fsw(fsw)
        ideal = 0.5 * (v_top + v_bottom)
        r_ser = self.r_series(fsw)
        vout = ideal - load_current * r_ser
        series_loss = load_current**2 * r_ser
        vin = v_top - v_bottom
        parasitic_loss = vin**2 / self.r_par(fsw)
        output_power = abs(load_current) * (vout if load_current >= 0 else ideal)
        return OperatingPoint(
            load_current=load_current,
            switching_frequency=fsw,
            ideal_output_voltage=ideal,
            output_voltage=vout,
            series_loss=series_loss,
            parasitic_loss=parasitic_loss,
            output_power=output_power,
        )

    def check_load(self, load_current: float) -> bool:
        """True when |load| respects the converter's 100 mA rating."""
        return abs(load_current) <= self.spec.max_load_current

    # -- internals -------------------------------------------------------
    def _fsw(self, fsw: Optional[float]) -> float:
        if fsw is None:
            return self.spec.switching_frequency
        check_positive("fsw", fsw)
        return fsw
