"""Switching-frequency control policies (paper Sec. 3.1, Fig. 3).

The paper evaluates two frequency-modulation strategies:

* **open-loop** — the converter always switches at its nominal (optimum)
  frequency, so parasitic loss is constant and efficiency collapses at
  light load.  The system-level study uses this policy.
* **closed-loop** — a feedback loop modulates frequency with load
  current.  We model the standard square-root law
  ``fsw = f_nom * sqrt(|I| / I_max)`` (clamped to a minimum ratio),
  which balances the slow-switching-limit conduction loss (growing as
  ``1/fsw``) against parasitic loss (growing as ``fsw``) and keeps
  efficiency high across the load range, matching Fig. 3a.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config.converters import SCConverterSpec
from repro.utils.validation import check_fraction, check_positive


@dataclass
class SettledOperatingPoint:
    """Self-consistent (frequency, current, voltage) regulation point.

    Produced by :meth:`ControlPolicy.settle` for a constant-*power* load:
    the drawn current depends on the output voltage, which depends on the
    commanded frequency, which depends on the current.  ``degraded``
    marks a best-residual iterate of a non-converged loop.
    """

    #: Compact-model operating point at the accepted current.
    operating_point: object
    #: Accepted load current (A).
    load_current: float
    converged: bool
    degraded: bool = False
    iterations: int = 0
    residual_trace: List[float] = field(default_factory=list)


class ControlPolicy(ABC):
    """Maps a load current to the converter's switching frequency."""

    @abstractmethod
    def frequency(self, spec: SCConverterSpec, load_current: float) -> float:
        """Switching frequency (Hz) for ``load_current`` (A)."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable policy name."""

    def settle(
        self,
        model,
        v_top: float,
        v_bottom: float,
        load_power: float,
        tolerance: float = 1e-9,
        max_iterations: int = 60,
        on_failure: str = "degrade",
        anderson_m: int = 0,
    ) -> SettledOperatingPoint:
        """Resolve the policy's fixed point for a constant-power load.

        Iterates ``I -> P / V_out(fsw(I), I)`` on the shared hardened
        driver (:func:`repro.contracts.fixedpoint.fixed_point`), so the
        returned point is self-consistent: the frequency commanded for
        the settled current reproduces the output voltage the current
        was computed from.  ``model`` is a
        :class:`repro.regulator.compact.SCCompactModel`.
        """
        from repro.contracts.fixedpoint import FixedPointDivergence, fixed_point

        check_positive("load_power", load_power)
        ideal = 0.5 * (v_top + v_bottom)
        if ideal <= 0:
            raise ValueError("mid-rail voltage must be positive")
        ops: List[object] = []

        def step(current_vec: np.ndarray) -> np.ndarray:
            current = float(current_vec[0])
            fsw = self.frequency(model.spec, current)
            op = model.operating_point(v_top, v_bottom, current, fsw=fsw)
            ops.append(op)
            if op.output_voltage <= 0.05 * ideal:
                raise FixedPointDivergence(
                    f"output collapsed to {op.output_voltage:.3g} V under "
                    f"{load_power:.3g} W load (unsupportable operating point)"
                )
            return np.array([load_power / op.output_voltage])

        fp = fixed_point(
            step,
            np.array([load_power / ideal]),
            tolerance=tolerance,
            max_iterations=max_iterations,
            anderson_m=anderson_m,
            on_failure=on_failure,
        )
        accepted: Optional[object] = ops[fp.best_iteration - 1] if ops else None
        return SettledOperatingPoint(
            operating_point=accepted,
            load_current=float(fp.x[0]),
            converged=fp.converged,
            degraded=fp.degraded,
            iterations=fp.iterations,
            residual_trace=list(fp.residual_trace),
        )


@dataclass(frozen=True)
class OpenLoopControl(ControlPolicy):
    """Constant-frequency operation (the paper's system-level choice)."""

    @property
    def name(self) -> str:
        return "open-loop"

    def frequency(self, spec: SCConverterSpec, load_current: float) -> float:
        return spec.switching_frequency


@dataclass(frozen=True)
class ClosedLoopControl(ControlPolicy):
    """Load-proportional frequency modulation (square-root law)."""

    #: Lowest frequency the controller will command, as a fraction of the
    #: nominal frequency (keeps the output regulated at very light load).
    min_frequency_ratio: float = 0.02

    def __post_init__(self) -> None:
        check_fraction("min_frequency_ratio", self.min_frequency_ratio)
        if self.min_frequency_ratio == 0:
            raise ValueError("min_frequency_ratio must be > 0")

    @property
    def name(self) -> str:
        return "closed-loop"

    def frequency(self, spec: SCConverterSpec, load_current: float) -> float:
        ratio = math.sqrt(
            min(1.0, abs(load_current) / spec.max_load_current)
        )
        ratio = max(ratio, self.min_frequency_ratio)
        return spec.switching_frequency * ratio
