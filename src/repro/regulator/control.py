"""Switching-frequency control policies (paper Sec. 3.1, Fig. 3).

The paper evaluates two frequency-modulation strategies:

* **open-loop** — the converter always switches at its nominal (optimum)
  frequency, so parasitic loss is constant and efficiency collapses at
  light load.  The system-level study uses this policy.
* **closed-loop** — a feedback loop modulates frequency with load
  current.  We model the standard square-root law
  ``fsw = f_nom * sqrt(|I| / I_max)`` (clamped to a minimum ratio),
  which balances the slow-switching-limit conduction loss (growing as
  ``1/fsw``) against parasitic loss (growing as ``fsw``) and keeps
  efficiency high across the load range, matching Fig. 3a.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.config.converters import SCConverterSpec
from repro.utils.validation import check_fraction


class ControlPolicy(ABC):
    """Maps a load current to the converter's switching frequency."""

    @abstractmethod
    def frequency(self, spec: SCConverterSpec, load_current: float) -> float:
        """Switching frequency (Hz) for ``load_current`` (A)."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable policy name."""


@dataclass(frozen=True)
class OpenLoopControl(ControlPolicy):
    """Constant-frequency operation (the paper's system-level choice)."""

    @property
    def name(self) -> str:
        return "open-loop"

    def frequency(self, spec: SCConverterSpec, load_current: float) -> float:
        return spec.switching_frequency


@dataclass(frozen=True)
class ClosedLoopControl(ControlPolicy):
    """Load-proportional frequency modulation (square-root law)."""

    #: Lowest frequency the controller will command, as a fraction of the
    #: nominal frequency (keeps the output regulated at very light load).
    min_frequency_ratio: float = 0.02

    def __post_init__(self) -> None:
        check_fraction("min_frequency_ratio", self.min_frequency_ratio)
        if self.min_frequency_ratio == 0:
            raise ValueError("min_frequency_ratio must be > 0")

    @property
    def name(self) -> str:
        return "closed-loop"

    def frequency(self, spec: SCConverterSpec, load_current: float) -> float:
        ratio = math.sqrt(
            min(1.0, abs(load_current) / spec.max_load_current)
        )
        ratio = max(ratio, self.min_frequency_ratio)
        return spec.switching_frequency * ratio
