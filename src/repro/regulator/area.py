"""Converter area accounting (paper Sec. 3.1 and Sec. 5.2).

The fly capacitors dominate converter area, so the paper prices the same
8 nF design in three capacitor technologies: MIM (0.472 mm^2),
ferroelectric (0.102 mm^2) and deep-trench (0.082 mm^2).  With
high-density capacitors, one converter costs about 3% of an ARM core's
area, which is the exchange rate behind the Fig. 6 equal-area comparison
(8 converters/core + Few TSV ~= Dense TSV overhead).
"""

from __future__ import annotations

from repro.config.converters import CAPACITOR_TECHNOLOGIES, SCConverterSpec
from repro.utils.validation import check_positive, check_positive_int


def converter_area(spec: SCConverterSpec, technology: str = None) -> float:
    """Silicon area of one converter (m^2) in the given capacitor tech."""
    tech_name = technology or spec.capacitor_technology
    if tech_name not in CAPACITOR_TECHNOLOGIES:
        raise ValueError(
            f"unknown capacitor technology {tech_name!r}; "
            f"choose from {sorted(CAPACITOR_TECHNOLOGIES)}"
        )
    return CAPACITOR_TECHNOLOGIES[tech_name].converter_area


def converters_area_overhead(
    spec: SCConverterSpec,
    converters_per_core: int,
    core_area: float,
    technology: str = None,
) -> float:
    """Fraction of core area spent on SC converters.

    With trench capacitors and the paper's core (2.76 mm^2), one
    converter costs ~3% of the core, so 8 converters/core roughly match
    the Dense-TSV topology's 24% overhead.
    """
    check_positive_int("converters_per_core", converters_per_core)
    check_positive("core_area", core_area)
    return converters_per_core * converter_area(spec, technology) / core_area
