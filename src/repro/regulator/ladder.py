"""Multi-output ladder SC arrangement for many-layer stacks.

The paper extends the two-load converter of Mazumdar & Stan into "a
scalable, multi-output ladder SC" (Sec. 2.1): an ``N``-layer stack has
``N+1`` power rails (rail 0 = board ground, rail N = the boosted supply),
and every intermediate rail ``k`` is regulated by a bank of 2:1 push-pull
cells spanning rails ``k+1`` and ``k-1`` (Fig. 1 shows the 3-layer /
2-bank instance).  This module captures that arrangement's bookkeeping:
how many cells exist, where they connect, what silicon they cost and how
much mismatch they can absorb.  The electrical behaviour is stamped into
the PDN model by :mod:`repro.pdn.stacked3d`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.regulator.area import converters_area_overhead
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class LadderDesign:
    """A resolved ladder configuration for one stack design point."""

    #: Number of stacked layers ``N``.
    n_layers: int
    #: 2:1 cells regulating each intermediate rail, per core.
    converters_per_core: int
    #: Converter electrical/area spec.
    spec: SCConverterSpec

    def __post_init__(self) -> None:
        check_positive_int("n_layers", self.n_layers)
        if self.n_layers < 2:
            raise ValueError("a ladder needs at least 2 stacked layers")
        check_positive_int("converters_per_core", self.converters_per_core)

    @property
    def intermediate_rails(self) -> Tuple[int, ...]:
        """Indices of the regulated rails (1 .. N-1)."""
        return tuple(range(1, self.n_layers))

    @property
    def banks(self) -> int:
        """Number of converter banks (one per intermediate rail)."""
        return self.n_layers - 1

    def rail_span(self, rail: int) -> Tuple[int, int]:
        """(top, bottom) rail indices a cell at ``rail`` connects across."""
        if rail not in self.intermediate_rails:
            raise ValueError(
                f"rail must be an intermediate rail {self.intermediate_rails}, got {rail}"
            )
        return rail + 1, rail - 1

    def total_converters(self, core_count: int) -> int:
        """All cells on all layers of the stack for ``core_count`` cores."""
        check_positive_int("core_count", core_count)
        return self.banks * self.converters_per_core * core_count

    def area_overhead_per_core(self, core_area: float, technology: str = None) -> float:
        """Converter area per core *per layer* as a fraction of core area.

        Each intermediate rail's bank lives on the layer whose Vdd net it
        regulates, so a layer carries ``converters_per_core`` cells per
        core (except the top layer, which carries none).
        """
        return converters_area_overhead(
            self.spec, self.converters_per_core, core_area, technology
        )

    def max_mismatch_current_per_core(self) -> float:
        """Largest adjacent-layer current mismatch a bank can absorb (A).

        Each cell sources or sinks up to its 100 mA rating, and the cells
        of one bank share the core's mismatch current evenly.
        """
        return self.converters_per_core * self.spec.max_load_current

    def supports_imbalance(
        self, mismatch_current_per_core: float
    ) -> bool:
        """True when the bank rating covers the given per-core mismatch."""
        check_positive("mismatch_current_per_core", mismatch_current_per_core) if mismatch_current_per_core > 0 else None
        return abs(mismatch_current_per_core) <= self.max_mismatch_current_per_core()


def design_ladder(
    n_layers: int,
    converters_per_core: int,
    spec: Optional[SCConverterSpec] = None,
) -> LadderDesign:
    """Build a :class:`LadderDesign` with the paper's converter spec."""
    return LadderDesign(
        n_layers=n_layers,
        converters_per_core=converters_per_core,
        spec=spec or default_sc_spec(),
    )
