"""Switched-capacitor (SC) converter models.

The paper implements a 2:1 push-pull SC converter (Fig. 1) in 28 nm
CMOS, fits Seeman's output-impedance compact model (Fig. 2, Eq. 1-2),
validates the fit against Spectre transient simulation (Fig. 3), and
extends the two-load converter into a multi-output ladder for many-layer
stacks.  This package reproduces each of those pieces:

* :mod:`compact` — the RSSL/RFSL/RSERIES/RPAR compact model.
* :mod:`control` — open-loop and closed-loop frequency modulation.
* :mod:`switchcap_sim` — a piecewise-linear time-domain simulator of the
  switch/fly-cap network (the "circuit simulation" of Fig. 3).
* :mod:`ladder` — the scalable multi-output ladder arrangement.
* :mod:`area` — converter area under different capacitor technologies.
"""

# NOTE: the ladder *topology vectors* function is exported as
# ``ladder_topology`` because ``repro.regulator.ladder`` is a submodule.
from repro.regulator.charge_multipliers import (
    TOPOLOGY_FAMILIES,
    TopologyVectors,
    best_family_for_ratio,
    dickson,
    ladder as ladder_topology,
    series_parallel,
    two_to_one_push_pull,
)
from repro.regulator.compact import SCCompactModel, OperatingPoint
from repro.regulator.control import ClosedLoopControl, ControlPolicy, OpenLoopControl
from repro.regulator.inductive import (
    BuckCompactModel,
    BuckConverterSpec,
    compare_sc_vs_buck,
)
from repro.regulator.ladder import LadderDesign, design_ladder
from repro.regulator.switchcap_sim import SwitchCapSimulator, TransientResult
from repro.regulator.area import converter_area, converters_area_overhead

__all__ = [
    "SCCompactModel",
    "OperatingPoint",
    "ControlPolicy",
    "OpenLoopControl",
    "ClosedLoopControl",
    "BuckCompactModel",
    "BuckConverterSpec",
    "compare_sc_vs_buck",
    "LadderDesign",
    "design_ladder",
    "TOPOLOGY_FAMILIES",
    "TopologyVectors",
    "best_family_for_ratio",
    "dickson",
    "ladder_topology",
    "series_parallel",
    "two_to_one_push_pull",
    "SwitchCapSimulator",
    "TransientResult",
    "converter_area",
    "converters_area_overhead",
]
