"""Inductive (buck) converter compact model — the paper's future work.

Sec. 2.1 restricts the study to switched-capacitor converters and
"leave[s] the study of inductive converters for future work".  This
module provides that comparison point: a compact model of an integrated
buck converter with the same push-pull role (regulating an intermediate
rail to the midpoint of its neighbours at 50% duty).

Loss model (standard for integrated bucks):

* conduction: ``I^2 * (R_switch + R_L_dcr)``;
* inductor-ripple conduction: ``(dI^2 / 12) * (R_switch + R_L_dcr)``
  with ``dI = V_out * (1 - D) / (L * fsw)``;
* switching + gate drive: ``(C_sw * V_in^2) * fsw``.

Integrated inductors are the catch: their low inductance and poor Q
(high DCR) at on-die dimensions, plus large area, are why the paper —
and the surveys it cites — bet on capacitive conversion on-die.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.regulator.compact import OperatingPoint
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class BuckConverterSpec:
    """An on-die buck converter sized for the same 100 mA role."""

    #: Integrated inductance (H); on-die spirals reach only a few nH.
    inductance: float = 10e-9
    #: Inductor winding resistance (ohm); poor on-die Q makes this large.
    inductor_dcr: float = 0.35
    #: Combined high/low-side switch on-resistance (ohm).
    switch_resistance: float = 0.25
    #: Equivalent switching-loss capacitance (F): gate charge + node cap.
    switching_capacitance: float = 60e-12
    #: Switching frequency (Hz); integrated bucks run high to shrink L.
    switching_frequency: float = 100e6
    #: Duty cycle for midpoint regulation.
    duty_cycle: float = 0.5
    #: Maximum load (A), matched to the SC cell's rating.
    max_load_current: float = 0.1
    #: Silicon area (m^2); on-die spiral inductors are area-hungry.
    area: float = 0.8e-6

    def __post_init__(self) -> None:
        check_positive("inductance", self.inductance)
        check_positive("inductor_dcr", self.inductor_dcr)
        check_positive("switch_resistance", self.switch_resistance)
        check_positive("switching_capacitance", self.switching_capacitance)
        check_positive("switching_frequency", self.switching_frequency)
        check_fraction("duty_cycle", self.duty_cycle)
        check_positive("max_load_current", self.max_load_current)
        check_positive("area", self.area)


class BuckCompactModel:
    """Efficiency / droop model of the buck cell (midpoint regulation)."""

    def __init__(self, spec: Optional[BuckConverterSpec] = None):
        self.spec = spec or BuckConverterSpec()

    @property
    def series_resistance(self) -> float:
        """Effective output resistance: switches + inductor DCR (ohm)."""
        return self.spec.switch_resistance + self.spec.inductor_dcr

    def ripple_current(self, v_out: float) -> float:
        """Peak-to-peak inductor current ripple (A)."""
        spec = self.spec
        return (
            v_out
            * (1.0 - spec.duty_cycle)
            / (spec.inductance * spec.switching_frequency)
        )

    def operating_point(
        self, v_top: float, v_bottom: float, load_current: float
    ) -> OperatingPoint:
        """Resolve the buck's behaviour between two rails at one load."""
        if v_top <= v_bottom:
            raise ValueError("v_top must exceed v_bottom")
        spec = self.spec
        v_in = v_top - v_bottom
        ideal = v_bottom + spec.duty_cycle * v_in
        r_out = self.series_resistance
        v_out = ideal - load_current * r_out
        ripple = self.ripple_current(v_out - v_bottom)
        conduction = (load_current**2 + ripple**2 / 12.0) * r_out
        switching = spec.switching_capacitance * v_in**2 * spec.switching_frequency
        output_power = abs(load_current) * (
            v_out - v_bottom if load_current >= 0 else ideal - v_bottom
        )
        return OperatingPoint(
            load_current=load_current,
            switching_frequency=spec.switching_frequency,
            ideal_output_voltage=ideal,
            output_voltage=v_out,
            series_loss=conduction,
            parasitic_loss=switching,
            output_power=output_power,
        )

    def check_load(self, load_current: float) -> bool:
        return abs(load_current) <= self.spec.max_load_current


def compare_sc_vs_buck(load_current: float = 0.05, v_in: float = 2.0) -> dict:
    """Head-to-head at one load point (the future-work comparison).

    Returns efficiency, droop and area for both converter styles.
    """
    from repro.regulator.compact import SCCompactModel

    sc = SCCompactModel()
    buck = BuckCompactModel()
    sc_op = sc.operating_point(v_in, 0.0, load_current)
    buck_op = buck.operating_point(v_in, 0.0, load_current)
    return {
        "sc": {
            "efficiency": sc_op.efficiency,
            "voltage_drop": sc_op.voltage_drop,
            "area": sc.spec.area,
        },
        "buck": {
            "efficiency": buck_op.efficiency,
            "voltage_drop": buck_op.voltage_drop,
            "area": buck.spec.area,
        },
    }
