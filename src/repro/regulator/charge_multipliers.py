"""Charge-multiplier vectors for switched-capacitor topologies.

The paper's compact model (Sec. 3.1, Eqs. 1-2) is Seeman's design
methodology: for any two-phase SC topology, the *charge multiplier
vectors* ``a_c`` (per flying capacitor) and ``a_r`` (per switch) give
the charge each element moves per unit output charge, and

    RSSL = (sum |a_c,i|)^2 / (Ctot * fsw_eff)
    RFSL = (sum |a_r,i|)^2 / (Gtot * Dcyc)

The main package hard-codes the 2:1 push-pull values; this module
derives the vectors for the standard step-down families so other
conversion ratios can be explored with the same machinery:

* **series-parallel** N:1 — caps charge in series, discharge in
  parallel,
* **ladder** N:1 — the multi-output arrangement the paper extends its
  converter into (Sec. 2.1),
* **Dickson** N:1 — the charge-pump arrangement.

Vectors follow Seeman (2009), Tables 2.2-2.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class TopologyVectors:
    """Charge multipliers of one two-phase SC topology."""

    #: Topology family name.
    name: str
    #: Step-down ratio N (output = Vin / N).
    ratio: int
    #: Per-flying-capacitor charge multipliers.
    ac: Tuple[float, ...]
    #: Per-switch charge multipliers.
    ar: Tuple[float, ...]

    @property
    def sum_ac(self) -> float:
        return sum(abs(a) for a in self.ac)

    @property
    def sum_ar(self) -> float:
        return sum(abs(a) for a in self.ar)

    @property
    def capacitor_count(self) -> int:
        return len(self.ac)

    @property
    def switch_count(self) -> int:
        return len(self.ar)

    def r_ssl(self, total_capacitance: float, fsw: float) -> float:
        """Slow-switching-limit output impedance (paper Eq. 1).

        With the optimal (proportional-to-|a_c|) capacitor sizing the
        bound is ``(sum |a_c|)^2 / (Ctot fsw)``.
        """
        check_positive("total_capacitance", total_capacitance)
        check_positive("fsw", fsw)
        return self.sum_ac**2 / (total_capacitance * fsw)

    def r_fsl(self, total_conductance: float, duty_cycle: float = 0.5) -> float:
        """Fast-switching-limit output impedance (paper Eq. 2)."""
        check_positive("total_conductance", total_conductance)
        check_positive("duty_cycle", duty_cycle)
        return self.sum_ar**2 / (total_conductance * duty_cycle)

    def r_series(
        self,
        total_capacitance: float,
        fsw: float,
        total_conductance: float,
        duty_cycle: float = 0.5,
    ) -> float:
        """Combined output resistance ``sqrt(RSSL^2 + RFSL^2)``."""
        return math.hypot(
            self.r_ssl(total_capacitance, fsw),
            self.r_fsl(total_conductance, duty_cycle),
        )


def series_parallel(ratio: int) -> TopologyVectors:
    """Series-parallel N:1 vectors.

    ``N-1`` flying caps each carry ``1/N`` of the output charge;
    ``3(N-1) + 1`` switch slots each conduct ``1/N``.
    """
    check_positive_int("ratio", ratio)
    if ratio < 2:
        raise ValueError("step-down ratio must be at least 2")
    n = ratio
    ac = tuple([1.0 / n] * (n - 1))
    ar = tuple([1.0 / n] * (3 * (n - 1) + 1))
    return TopologyVectors("series-parallel", n, ac, ar)


def ladder(ratio: int) -> TopologyVectors:
    """Ladder N:1 vectors.

    The ladder uses ``2(N-1)`` capacitors; the flying caps nearer the
    input shuttle progressively more charge: the k-th rung's fly cap
    carries ``k/N`` per unit output charge, and each of the ``2N``
    switches conducts the charge of its adjacent rung.
    """
    check_positive_int("ratio", ratio)
    if ratio < 2:
        raise ValueError("step-down ratio must be at least 2")
    n = ratio
    # N-1 flying caps with multipliers k/N (k = 1..N-1); the N-1 DC
    # (output-referred) caps carry no net charge at steady state.
    ac = tuple(k / n for k in range(1, n))
    # 2N switch slots; switch pair k conducts rung k's charge.
    ar_values: List[float] = []
    for k in range(1, n):
        ar_values.extend([k / n, k / n])
    ar_values.extend([ (n - 1) / n, (n - 1) / n ])
    return TopologyVectors("ladder", n, ac, tuple(ar_values))


def dickson(ratio: int) -> TopologyVectors:
    """Dickson N:1 vectors.

    ``N-1`` flying caps each carry ``1/N``; the two phase rails' 4
    switches carry the summed cap charge and the ``N`` internal slots
    carry ``1/N`` each.
    """
    check_positive_int("ratio", ratio)
    if ratio < 2:
        raise ValueError("step-down ratio must be at least 2")
    n = ratio
    ac = tuple([1.0 / n] * (n - 1))
    rail = (n - 1) / n / 2.0
    ar = tuple([rail] * 4 + [1.0 / n] * n)
    return TopologyVectors("dickson", n, ac, tuple(ar))


def two_to_one_push_pull() -> TopologyVectors:
    """The paper's 2:1 push-pull cell, expressed in the same framework.

    One (lumped) fly capacitance carrying half the output charge, four
    switch slots at 1/4 each (both interchanging caps conduct on both
    phases, halving per-slot charge relative to the plain 2:1).
    """
    return TopologyVectors("2:1 push-pull", 2, (0.5,), (0.25, 0.25, 0.25, 0.25))


TOPOLOGY_FAMILIES = {
    "series-parallel": series_parallel,
    "ladder": ladder,
    "dickson": dickson,
}


def best_family_for_ratio(
    ratio: int,
    total_capacitance: float,
    fsw: float,
    total_conductance: float,
) -> TopologyVectors:
    """The family with the lowest combined output resistance at N:1."""
    candidates = [build(ratio) for build in TOPOLOGY_FAMILIES.values()]
    return min(
        candidates,
        key=lambda t: t.r_series(total_capacitance, fsw, total_conductance),
    )
