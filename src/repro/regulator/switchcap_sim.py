"""Piecewise-linear transient simulation of the 2:1 push-pull converter.

This module plays the role of the paper's Cadence/Spectre circuit
simulation: it simulates the actual switch/fly-capacitor network of
Fig. 1 in the time domain and reports steady-state efficiency and output
droop, against which the compact model of :mod:`repro.regulator.compact`
is validated (Fig. 3).

Topology simulated (one interleaving phase; averages are unaffected by
interleaving, which only reduces ripple):

* ``C1`` and ``C2`` — the interchanging fly capacitors,
* ``Cout`` — the output/decoupling capacitance at the regulated node,
* in phase A, ``C1`` bridges the top rail to the output while ``C2``
  bridges the output to the bottom rail; in phase B they swap,
* every conduction path crosses two switches of on-resistance
  ``2 / Gtot`` each (four switch slots, half conducting per phase).

Each phase is a linear time-invariant RC network, so the state
(capacitor voltages) propagates exactly through a matrix exponential;
periodic steady state is the fixed point of the two-phase map and is
obtained by solving one 3x3 linear system — no time-stepping error.

Parasitic (bottom-plate + gate-drive) loss is added analytically as
``C_par * V_swing^2 * fsw`` per the standard SC loss accounting; the
compact model lumps the same physics into ``RPAR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.linalg import expm

from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TransientResult:
    """Periodic-steady-state quantities of one simulated load point."""

    #: Load current (A).
    load_current: float
    #: Switching frequency simulated (Hz).
    switching_frequency: float
    #: Cycle-averaged output voltage (V).
    output_voltage: float
    #: Ideal midpoint voltage (V).
    ideal_output_voltage: float
    #: Cycle-averaged power drawn from the top rail, incl. parasitics (W).
    input_power: float
    #: Cycle-averaged power delivered to the load (W).
    output_power: float
    #: Peak-to-peak output ripple (V).
    output_ripple: float

    @property
    def efficiency(self) -> float:
        if self.input_power <= 0:
            return 0.0
        return self.output_power / self.input_power

    @property
    def voltage_drop(self) -> float:
        return self.ideal_output_voltage - self.output_voltage


class SwitchCapSimulator:
    """Exact PWL simulator of the push-pull 2:1 SC cell.

    Parameters
    ----------
    spec:
        Converter electrical parameters (fly capacitance, switch
        conductance, nominal frequency...).
    output_capacitance:
        Decoupling capacitance at the regulated node (F).  The paper's
        4-way interleaving keeps the required value small.
    bottom_plate_fraction:
        Bottom-plate parasitic capacitance as a fraction of the fly
        capacitance; together with ``gate_capacitance`` this sets the
        frequency-proportional parasitic loss.
    gate_capacitance:
        Total switch gate capacitance charged/discharged per cycle (F).
    """

    def __init__(
        self,
        spec: Optional[SCConverterSpec] = None,
        output_capacitance: float = 2e-9,
        bottom_plate_fraction: float = 0.021,
        gate_capacitance: float = 5e-12,
    ):
        self.spec = spec or default_sc_spec()
        check_positive("output_capacitance", output_capacitance)
        if bottom_plate_fraction < 0 or gate_capacitance < 0:
            raise ValueError("parasitic capacitances must be non-negative")
        self.output_capacitance = output_capacitance
        self.bottom_plate_fraction = bottom_plate_fraction
        self.gate_capacitance = gate_capacitance

    # ------------------------------------------------------------------
    def _phase_system(self, v_in: float, i_load: float, c1_on_top: bool):
        """State-space (A, b) for one phase.

        State ``x = [v_c1, v_c2, v_out]`` with fly-cap voltages defined
        positive toward the rail-facing terminal.  The cap connected to
        the top rail charges through resistance ``r``, the cap connected
        to the bottom rail discharges into it through ``r``.
        """
        spec = self.spec
        # Two conducting switches in series per branch; Gtot covers the
        # four switch slots, of which two conduct per phase.
        r = 4.0 / spec.switch_conductance
        c_fly = spec.fly_capacitance / 2.0  # per capacitor
        c_out = self.output_capacitance
        a = np.zeros((3, 3))
        b = np.zeros(3)
        top_idx, bot_idx = (0, 1) if c1_on_top else (1, 0)
        # Branch: top rail -> fly cap -> output.  i = (v_in - v_top - vo)/r
        a[top_idx, top_idx] = -1.0 / (r * c_fly)
        a[top_idx, 2] = -1.0 / (r * c_fly)
        b[top_idx] = v_in / (r * c_fly)
        # Branch: output -> fly cap -> bottom rail.  i = (vo - v_bot)/r
        a[bot_idx, bot_idx] = -1.0 / (r * c_fly)
        a[bot_idx, 2] = 1.0 / (r * c_fly)
        # Output node: Cout dvo/dt = i_top_branch - i_bot_branch - i_load
        a[2, top_idx] = -1.0 / (r * c_out)
        a[2, bot_idx] = 1.0 / (r * c_out)
        a[2, 2] = -2.0 / (r * c_out)
        b[2] = (v_in - i_load * r) / (r * c_out)
        return a, b

    @staticmethod
    def _phase_map(a: np.ndarray, b: np.ndarray, duration: float):
        """Exact discrete map ``x1 = E x0 + f`` over ``duration``.

        Uses the augmented-matrix exponential so singular ``a`` would
        also be handled correctly.
        """
        n = a.shape[0]
        aug = np.zeros((n + 1, n + 1))
        aug[:n, :n] = a * duration
        aug[:n, n] = b * duration
        big = expm(aug)
        return big[:n, :n], big[:n, n]

    # ------------------------------------------------------------------
    def steady_state(
        self,
        load_current: float,
        v_top: float = 2.0,
        v_bottom: float = 0.0,
        fsw: Optional[float] = None,
        samples_per_phase: int = 32,
    ) -> TransientResult:
        """Solve the periodic steady state at one operating point.

        The two-phase map ``x -> E_B (E_A x + f_A) + f_B`` is linear, so
        its fixed point is found directly; averages are then evaluated by
        sampling the exact intra-phase solution.
        """
        if v_top <= v_bottom:
            raise ValueError("v_top must exceed v_bottom")
        if samples_per_phase < 2:
            raise ValueError("samples_per_phase must be >= 2")
        spec = self.spec
        fsw = fsw if fsw is not None else spec.switching_frequency
        check_positive("fsw", fsw)
        v_in = v_top - v_bottom
        half_t = 0.5 / fsw

        a_a, b_a = self._phase_system(v_in, load_current, c1_on_top=True)
        a_b, b_b = self._phase_system(v_in, load_current, c1_on_top=False)
        e_a, f_a = self._phase_map(a_a, b_a, half_t)
        e_b, f_b = self._phase_map(a_b, b_b, half_t)

        # Fixed point of the full-cycle map.
        m = e_b @ e_a
        f = e_b @ f_a + f_b
        x0 = np.linalg.solve(np.eye(3) - m, f)

        # Sample both phases to average voltages and branch currents.
        dt = half_t / (samples_per_phase - 1)
        e_dt_a, f_dt_a = self._phase_map(a_a, b_a, dt)
        e_dt_b, f_dt_b = self._phase_map(a_b, b_b, dt)
        r = 4.0 / spec.switch_conductance

        def sweep(x_start, e_dt, f_dt, top_idx):
            xs = np.empty((samples_per_phase, 3))
            xs[0] = x_start
            for k in range(1, samples_per_phase):
                xs[k] = e_dt @ xs[k - 1] + f_dt
            v_fly_top = xs[:, top_idx]
            vo = xs[:, 2]
            i_top = (v_in - v_fly_top - vo) / r  # current from the top rail
            return xs, vo, i_top

        xs_a, vo_a, itop_a = sweep(x0, e_dt_a, f_dt_a, top_idx=0)
        x_mid = e_a @ x0 + f_a
        xs_b, vo_b, itop_b = sweep(x_mid, e_dt_b, f_dt_b, top_idx=1)

        vo_all = np.concatenate([vo_a, vo_b])
        itop_all = np.concatenate([itop_a, itop_b])
        vo_avg = float(np.trapezoid(vo_all, dx=1.0) / (len(vo_all) - 1))
        itop_avg = float(np.trapezoid(itop_all, dx=1.0) / (len(itop_all) - 1))

        # Frequency-proportional parasitic loss (bottom plate + gates).
        c_bp = self.bottom_plate_fraction * spec.fly_capacitance
        v_swing = vo_avg - v_bottom
        p_par = (c_bp * v_swing**2 + self.gate_capacitance * v_in**2) * fsw

        input_power = v_in * itop_avg + p_par
        # Measured at the converter port: with v_bottom as the local
        # reference the load sits between the output and the bottom rail.
        output_power = (vo_avg - v_bottom) * load_current
        return TransientResult(
            load_current=load_current,
            switching_frequency=fsw,
            output_voltage=vo_avg,
            ideal_output_voltage=0.5 * (v_top + v_bottom),
            input_power=input_power,
            output_power=output_power,
            output_ripple=float(vo_all.max() - vo_all.min()),
        )
