"""Monte-Carlo cross-validation of the analytic array-lifetime model.

The Sec. 3.3 methodology computes the array's first-failure CDF in
closed form.  This module estimates the same quantity by direct
simulation — draw every conductor's lifetime from its lognormal, take
the array minimum, repeat — which both validates the analytic path (a
property exercised in the test suite) and yields full lifetime
*distributions* (percentiles, spread) that the closed-form median-only
metric does not expose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.technology import EMParameters, default_em
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class MonteCarloLifetime:
    """Empirical first-failure lifetime distribution of an array."""

    #: Sampled array lifetimes (same units as the input medians).
    samples: np.ndarray

    @property
    def median(self) -> float:
        """Empirical counterpart of the paper's P(t)=0.5 metric."""
        return float(np.median(self.samples))

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    @property
    def spread(self) -> float:
        """Inter-quartile range of the array lifetime."""
        return self.percentile(75) - self.percentile(25)


def simulate_array_lifetime(
    medians: np.ndarray,
    trials: int = 2000,
    em: EMParameters = None,
    rng: SeedLike = None,
) -> MonteCarloLifetime:
    """Monte-Carlo estimate of the array's first-failure lifetime.

    Each trial draws one lifetime per conductor,
    ``t_i = median_i * exp(sigma * z_i)`` with standard-normal ``z_i``,
    and records ``min_i t_i``.
    """
    em = em or default_em()
    check_positive_int("trials", trials)
    medians = np.asarray(medians, dtype=float)
    if medians.size == 0:
        raise ValueError("medians must be non-empty")
    if np.any(medians <= 0):
        raise ValueError("median lifetimes must be positive")
    gen = make_rng(rng)
    log_medians = np.log(medians)
    samples = np.empty(trials)
    for k in range(trials):
        z = gen.standard_normal(medians.size)
        samples[k] = np.exp(log_medians + em.sigma * z).min()
    return MonteCarloLifetime(samples=samples)
