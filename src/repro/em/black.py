"""Black's equation (Black, 1969).

``MTTF = A * J^-n * exp(Ea / (k T))`` gives the *median* lifetime of a
single metal conductor under current density ``J``.  The paper's results
are normalised to the 2-layer V-S PDN, so the prefactor ``A`` (and, for
comparisons within one conductor type, the cross-section area) cancels;
both are still modelled so absolute numbers exist.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config.technology import EMParameters, default_em, default_tsv
from repro.utils.validation import check_positive

#: Effective electromigration cross-section of a C4 pad (m^2).  Pads at a
#: 200 um pitch have ~100 um bumps; the critical current crowding region
#: is the under-bump metallisation of roughly half that diameter.
C4_CROSS_SECTION = math.pi * (50e-6 / 2) ** 2

#: Cross-section of one TSV drum (m^2), from the Table 1 5 um diameter.
TSV_CROSS_SECTION = math.pi * (default_tsv().diameter / 2) ** 2

#: Floor current density (A/m^2) to keep idle conductors' lifetimes
#: finite in the math while making them effectively immortal.
_J_FLOOR = 1.0


def black_median_lifetime(
    current: float, cross_section: float, em: EMParameters = None
) -> float:
    """Median EM lifetime (hours) of one conductor carrying ``current``."""
    em = em or default_em()
    check_positive("cross_section", cross_section)
    if current < 0:
        raise ValueError("current must be non-negative (use magnitudes)")
    density = max(current / cross_section, _J_FLOOR)
    return em.prefactor * density ** (-em.exponent) * em.thermal_factor


def median_lifetimes_from_currents(
    currents: np.ndarray, cross_section: float, em: EMParameters = None
) -> np.ndarray:
    """Vectorised :func:`black_median_lifetime` over a conductor array."""
    em = em or default_em()
    check_positive("cross_section", cross_section)
    currents = np.abs(np.asarray(currents, dtype=float))
    density = np.maximum(currents / cross_section, _J_FLOOR)
    return em.prefactor * density ** (-em.exponent) * em.thermal_factor
