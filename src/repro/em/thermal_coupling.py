"""Temperature-aware EM lifetime — a cross-layer extension.

The paper evaluates Black's equation at a single junction temperature.
In a real 3D stack the bottom layers run markedly hotter than the top
(heat exits through the sink above), and Black's ``exp(Ea / kT)`` factor
is steeply temperature-sensitive, so the conductor tiers nearest the
pads are doubly stressed: they carry the most current *and* sit at the
highest temperature.  This module couples the PDN current profile with
the HotSpot-lite temperature field.

Group-to-temperature mapping (by tag):

* ``c4.*``           — the bottom layer's mean temperature,
* ``tsv.*.t{k}`` / ``tsv.rail{k}`` — the mean of the two layers the tier
  connects,
* ``tvia.*``         — the stack-average temperature (the via crosses
  every layer).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

import numpy as np

from repro.config.technology import BOLTZMANN_EV, EMParameters, default_em
from repro.em.array_mttf import expected_em_lifetime
from repro.em.black import C4_CROSS_SECTION, TSV_CROSS_SECTION, _J_FLOOR
from repro.pdn.results import PDNResult
from repro.thermal.grid3d import ThermalResult

_TIER_PATTERN = re.compile(r"\.(?:t|rail)(\d+)$")

#: Celsius-to-kelvin offset.
_KELVIN = 273.15


def median_lifetimes_at_temperature(
    currents: np.ndarray,
    cross_section: float,
    temperature_celsius: float,
    em: Optional[EMParameters] = None,
) -> np.ndarray:
    """Black's medians evaluated at an explicit junction temperature."""
    em = em or default_em()
    currents = np.abs(np.asarray(currents, dtype=float))
    density = np.maximum(currents / cross_section, _J_FLOOR)
    kelvin = temperature_celsius + _KELVIN
    thermal = np.exp(em.activation_energy / (BOLTZMANN_EV * kelvin))
    return em.prefactor * density ** (-em.exponent) * thermal


def _layer_mean_temperatures(thermal: ThermalResult) -> List[float]:
    return [float(t.mean()) for t in thermal.layer_temperatures]


def group_temperatures(
    result: PDNResult, thermal: ThermalResult
) -> Dict[str, float]:
    """Operating temperature (C) assigned to each conductor group."""
    layer_t = _layer_mean_temperatures(thermal)
    n = len(layer_t)
    stack_mean = float(np.mean(layer_t))
    temps: Dict[str, float] = {}
    for tag in result.conductor_groups:
        if tag.startswith("c4"):
            temps[tag] = layer_t[0]
        elif tag.startswith("tvia"):
            temps[tag] = stack_mean
        elif tag.startswith("tsv"):
            match = _TIER_PATTERN.search(tag)
            if match:
                tier = int(match.group(1))
                # Regular tiers are 0-based between layers t and t+1;
                # V-S rail tiers are 1-based between layers r-1 and r.
                if ".rail" in tag:
                    lo, hi = tier - 1, min(tier, n - 1)
                else:
                    lo, hi = tier, min(tier + 1, n - 1)
                temps[tag] = 0.5 * (layer_t[lo] + layer_t[hi])
            else:
                temps[tag] = stack_mean
        else:
            temps[tag] = stack_mean
    return temps


def thermally_coupled_lifetime(
    result: PDNResult,
    thermal: ThermalResult,
    kind: str = "tsv",
    em: Optional[EMParameters] = None,
) -> float:
    """Expected EM-damage-free lifetime with per-tier temperatures.

    ``kind`` selects the conductor family: ``"tsv"`` (tiers plus
    through-vias) or ``"c4"``.
    """
    em = em or default_em()
    if kind not in ("tsv", "c4"):
        raise ValueError("kind must be 'tsv' or 'c4'")
    temps = group_temperatures(result, thermal)
    cross = TSV_CROSS_SECTION if kind == "tsv" else C4_CROSS_SECTION
    prefixes = ("tsv", "tvia") if kind == "tsv" else ("c4",)
    medians = []
    for tag, group in result.conductor_groups.items():
        if not tag.startswith(prefixes):
            continue
        currents = group.per_conductor_currents(result.solution)
        medians.append(
            median_lifetimes_at_temperature(currents, cross, temps[tag], em)
        )
    if not medians:
        raise KeyError(f"no conductor groups of kind {kind!r}")
    return expected_em_lifetime(np.concatenate(medians), em)


def uniform_temperature_lifetime(
    result: PDNResult,
    temperature_celsius: float,
    kind: str = "tsv",
    em: Optional[EMParameters] = None,
) -> float:
    """Same metric with one shared temperature (the paper's assumption)."""
    em = em or default_em()
    cross = TSV_CROSS_SECTION if kind == "tsv" else C4_CROSS_SECTION
    prefixes = ("tsv", "tvia") if kind == "tsv" else ("c4",)
    currents = [
        group.per_conductor_currents(result.solution)
        for tag, group in result.conductor_groups.items()
        if tag.startswith(prefixes)
    ]
    if not currents:
        raise KeyError(f"no conductor groups of kind {kind!r}")
    medians = median_lifetimes_at_temperature(
        np.concatenate(currents), cross, temperature_celsius, em
    )
    return expected_em_lifetime(medians, em)
