"""Weakest-element lifetime of a conductor array (paper Sec. 3.3).

Each conductor ``i`` fails by time ``t`` with probability ``F_i(t)``,
the lognormal CDF with median from Black's equation and shared shape
``sigma``.  The array's first-failure CDF is

    P(t) = 1 - prod_i (1 - F_i(t)),

and the paper's metric is the ``t`` with ``P(t) = 0.5``, solved here by
bisection in log-time (``P`` is monotonic).  The product is evaluated as
``exp(sum log1p(-F_i))`` so arrays of 10^5 conductors with tiny
individual failure probabilities stay numerically exact.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq
from scipy.stats import norm

from repro.config.technology import EMParameters, default_em
from repro.utils.validation import check_positive


def lognormal_failure_cdf(t, median: float, sigma: float):
    """``F(t)`` of one conductor: lognormal(median, sigma)."""
    check_positive("median", median)
    check_positive("sigma", sigma)
    t = np.asarray(t, dtype=float)
    out = np.zeros_like(t)
    positive = t > 0
    out[positive] = norm.cdf((np.log(t[positive]) - np.log(median)) / sigma)
    return out if out.ndim else float(out)


def array_failure_cdf(t: float, medians: np.ndarray, sigma: float) -> float:
    """``P(t) = 1 - prod(1 - F_i(t))`` for the whole array."""
    check_positive("sigma", sigma)
    if t <= 0:
        return 0.0
    medians = np.asarray(medians, dtype=float)
    if medians.size == 0:
        raise ValueError("medians must be non-empty")
    z = (np.log(t) - np.log(medians)) / sigma
    f = norm.cdf(z)
    # Clip to keep log1p finite when some conductor is certain to fail.
    f = np.minimum(f, 1.0 - 1e-16)
    log_survival = np.sum(np.log1p(-f))
    return float(1.0 - np.exp(log_survival))


def expected_em_lifetime(
    medians: np.ndarray, em: EMParameters = None
) -> float:
    """The paper's expected EM-damage-free lifetime: ``P(t) = 0.5``.

    ``medians`` are per-conductor median lifetimes (same units as the
    returned value).
    """
    em = em or default_em()
    medians = np.asarray(medians, dtype=float)
    if medians.size == 0:
        raise ValueError("medians must be non-empty")
    if np.any(medians <= 0):
        raise ValueError("median lifetimes must be positive")
    sigma = em.sigma

    def objective(log_t: float) -> float:
        return array_failure_cdf(np.exp(log_t), medians, sigma) - 0.5

    # Bracket: below every median scaled far down, above the smallest
    # median (an array is never longer-lived than its weakest member's
    # median).
    lo = float(np.log(medians.min()) - 20.0 * sigma)
    hi = float(np.log(medians.min()) + 5.0 * sigma)
    f_lo = objective(lo)
    f_hi = objective(hi)
    # Expand defensively (tiny arrays can push the median above the
    # weakest conductor's median only in pathological sigma settings).
    expansions = 0
    while f_lo > 0 and expansions < 60:
        lo -= 5.0 * sigma
        f_lo = objective(lo)
        expansions += 1
    while f_hi < 0 and expansions < 120:
        hi += 5.0 * sigma
        f_hi = objective(hi)
        expansions += 1
    if f_lo > 0 or f_hi < 0:
        raise RuntimeError("failed to bracket the array-lifetime root")
    log_t = brentq(objective, lo, hi, xtol=1e-10)
    return float(np.exp(log_t))
