"""Electromigration (EM) lifetime modeling (paper Sec. 3.3).

A conductor's EM-limited life follows a lognormal distribution whose
median comes from Black's equation; an *array* of conductors (the C4 pad
array, a TSV tier) fails when its first member fails, with

    P(t) = 1 - prod_i (1 - F_i(t)),

and the paper's reliability metric is the time at which ``P(t) = 0.5``
("expected EM-damage-free lifetime").
"""

from repro.em.black import (
    C4_CROSS_SECTION,
    TSV_CROSS_SECTION,
    black_median_lifetime,
    median_lifetimes_from_currents,
)
from repro.em.array_mttf import (
    array_failure_cdf,
    expected_em_lifetime,
    lognormal_failure_cdf,
)
from repro.em.montecarlo import MonteCarloLifetime, simulate_array_lifetime
from repro.em.thermal_coupling import (
    group_temperatures,
    median_lifetimes_at_temperature,
    thermally_coupled_lifetime,
    uniform_temperature_lifetime,
)

__all__ = [
    "MonteCarloLifetime",
    "simulate_array_lifetime",
    "group_temperatures",
    "median_lifetimes_at_temperature",
    "thermally_coupled_lifetime",
    "uniform_temperature_lifetime",
    "C4_CROSS_SECTION",
    "TSV_CROSS_SECTION",
    "black_median_lifetime",
    "median_lifetimes_from_currents",
    "array_failure_cdf",
    "expected_em_lifetime",
    "lognormal_failure_cdf",
]
