"""Parameter-sensitivity (tornado) analysis of the PDN metrics.

The reproduction fixes several technology parameters the paper
publishes and a few it does not (DESIGN.md §5b).  This module quantifies
how much each parameter moves a chosen metric — worst-case IR drop or
system efficiency — by re-evaluating the design at low/high excursions
of one parameter at a time, which is both a robustness check on the
reproduced conclusions and a practical design aid ("which knob do I
turn?").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.config.stackups import StackConfig
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
    default_c4,
    default_metal,
    default_package,
    default_tsv,
)
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SensitivityEntry:
    """Metric excursion caused by one parameter."""

    parameter: str
    low_value: float
    high_value: float
    metric_at_low: float
    metric_at_high: float
    metric_nominal: float

    @property
    def swing(self) -> float:
        """Total metric excursion |high - low|."""
        return abs(self.metric_at_high - self.metric_at_low)

    @property
    def relative_swing(self) -> float:
        """Swing as a fraction of the nominal metric."""
        if self.metric_nominal == 0:
            return 0.0
        return self.swing / abs(self.metric_nominal)


#: The tunable technology parameters: name -> (component, field).
_PARAMETERS = {
    "package_resistance": ("package", "resistance"),
    "c4_pad_resistance": ("c4", "resistance"),
    "tsv_resistance": ("tsv", "resistance"),
    "metal_thickness": ("metal", "thickness"),
    "metal_width": ("metal", "width"),
}


class SensitivityAnalysis:
    """One-at-a-time excursions of the PDN technology parameters.

    Parameters
    ----------
    stack:
        The design point to perturb.
    arrangement:
        ``"regular"`` or ``"voltage-stacked"``.
    metric:
        ``"ir_drop"`` (max on-chip IR drop fraction) or ``"efficiency"``.
    excursion:
        Fractional low/high perturbation (default ±50%).
    """

    def __init__(
        self,
        stack: StackConfig,
        arrangement: str = "regular",
        metric: str = "ir_drop",
        excursion: float = 0.5,
        converters_per_core: int = 8,
    ):
        if arrangement not in ("regular", "voltage-stacked"):
            raise ValueError("arrangement must be 'regular' or 'voltage-stacked'")
        if metric not in ("ir_drop", "efficiency"):
            raise ValueError("metric must be 'ir_drop' or 'efficiency'")
        check_positive("excursion", excursion)
        if excursion >= 1.0:
            raise ValueError("excursion must be < 1 (parameters must stay positive)")
        self.stack = stack
        self.arrangement = arrangement
        self.metric = metric
        self.excursion = excursion
        self.converters_per_core = converters_per_core

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        c4: C4Technology,
        tsv: TSVTechnology,
        metal: OnChipMetal,
        package: PackageModel,
    ) -> float:
        if self.arrangement == "regular":
            pdn = RegularPDN3D(self.stack, c4=c4, tsv=tsv, metal=metal, package=package)
        else:
            pdn = StackedPDN3D(
                self.stack,
                converters_per_core=self.converters_per_core,
                c4=c4,
                tsv=tsv,
                metal=metal,
                package=package,
            )
        result = pdn.solve()
        if self.metric == "ir_drop":
            return result.max_ir_drop_fraction()
        return result.efficiency()

    def run(self, parameters: Optional[Sequence[str]] = None) -> List[SensitivityEntry]:
        """Evaluate the tornado entries, sorted by swing (largest first)."""
        names = list(_PARAMETERS) if parameters is None else list(parameters)
        unknown = [n for n in names if n not in _PARAMETERS]
        if unknown:
            raise ValueError(f"unknown parameters {unknown}; choose from {sorted(_PARAMETERS)}")
        components = {
            "c4": default_c4(),
            "tsv": default_tsv(),
            "metal": default_metal(),
            "package": default_package(),
        }
        nominal = self._evaluate(**components)
        entries = []
        for name in names:
            component_key, field_name = _PARAMETERS[name]
            base = components[component_key]
            value = getattr(base, field_name)
            results = {}
            for direction, factor in (("low", 1 - self.excursion), ("high", 1 + self.excursion)):
                perturbed = dict(components)
                perturbed[component_key] = replace(base, **{field_name: value * factor})
                results[direction] = self._evaluate(**perturbed)
            entries.append(
                SensitivityEntry(
                    parameter=name,
                    low_value=value * (1 - self.excursion),
                    high_value=value * (1 + self.excursion),
                    metric_at_low=results["low"],
                    metric_at_high=results["high"],
                    metric_nominal=nominal,
                )
            )
        entries.sort(key=lambda e: e.swing, reverse=True)
        return entries

    def format(self, entries: Sequence[SensitivityEntry]) -> str:
        unit = "%Vdd" if self.metric == "ir_drop" else "%"
        scale = 100.0
        rows = [
            (
                e.parameter,
                e.metric_at_low * scale,
                e.metric_nominal * scale,
                e.metric_at_high * scale,
                e.swing * scale,
            )
            for e in entries
        ]
        return format_table(
            [
                "parameter (+/-{:.0%})".format(self.excursion),
                f"metric @low ({unit})",
                f"nominal ({unit})",
                f"metric @high ({unit})",
                f"swing ({unit})",
            ],
            rows,
            title=(
                f"Sensitivity of {self.metric} — {self.arrangement} PDN, "
                f"{self.stack.n_layers} layers"
            ),
        )
