"""Consolidated reproduction report.

:func:`generate_report` runs every experiment at a chosen grid
resolution and renders one self-contained text/markdown document —
tables, figures, headline claims — suitable for committing next to the
paper (``python -m repro report > REPORT.md``).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.experiments import (
    compute_fig3,
    compute_fig5a,
    compute_fig5b,
    compute_fig6,
    compute_fig7,
    compute_fig8,
    run_headline,
    table1_report,
    table2_report,
)


def generate_report(grid_nodes: int = 16, rng: Optional[int] = None) -> str:
    """Run the full evaluation and return the consolidated report text."""
    start = time.time()
    sections = []

    def section(title: str, body: str) -> None:
        sections.append(f"## {title}\n\n```\n{body}\n```")

    sections.append(
        "# Reproduction report\n\n"
        "Paper: *A Cross-Layer Design Exploration of Charge-Recycled "
        "Power-Delivery in Many-Layer 3D-IC* (Zhang et al., DAC 2015).\n\n"
        f"Model grid: {grid_nodes}x{grid_nodes} nodes per net per layer."
    )

    section("Table 1 — PDN modeling parameters", table1_report())
    section("Table 2 — TSV configurations", table2_report())

    fig3 = compute_fig3()
    section("Fig. 3 — SC converter model validation", fig3.format())

    fig5a = compute_fig5a(grid_nodes=grid_nodes)
    section("Fig. 5a — TSV array EM lifetime", fig5a.format())

    fig5b = compute_fig5b(grid_nodes=grid_nodes)
    section("Fig. 5b — C4 array EM lifetime", fig5b.format())

    fig6 = compute_fig6(grid_nodes=grid_nodes)
    section("Fig. 6 — IR drop vs workload imbalance", fig6.format())

    fig7 = compute_fig7(rng=rng)
    section("Fig. 7 — PARSEC power distributions", fig7.format())

    fig8 = compute_fig8(grid_nodes=grid_nodes)
    section("Fig. 8 — system power efficiency", fig8.format())

    headline = run_headline(
        grid_nodes=grid_nodes, fig5a=fig5a, fig5b=fig5b, fig6=fig6, fig7=fig7
    )
    section("Headline claims", headline.format())

    elapsed = time.time() - start
    sections.append(f"*Generated in {elapsed:.1f} s.*")
    return "\n\n".join(sections) + "\n"
