"""Builders for the paper's design scenarios (Sec. 4).

The evaluation revolves around a small family of design points:

* the regular PDN with one of the Table 2 TSV topologies and a power-pad
  fraction (25% default, swept in Fig. 5b), and
* the voltage-stacked PDN with the "Few" TSV topology, 2-8 converters
  per core, and — for the TSV lifetime study — 32 Vdd pads per core,
  each feeding one through-via stack (Sec. 5.1).
"""

from __future__ import annotations

from typing import Optional

from repro.config.stackups import (
    PadAllocation,
    ProcessorSpec,
    StackConfig,
    TSV_TOPOLOGIES,
)
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D
from repro.runtime.spec import PDNSpec

#: Grid resolution used by the benchmark harness (nodes per die side).
DEFAULT_GRID_NODES = 20

#: Vdd pads per core for the V-S PDN's through-via supply (paper
#: Sec. 5.1: "the number of Vdd pads (32 per-core in this case)").
VS_VDD_PADS_PER_CORE = 32


def regular_stack(
    n_layers: int,
    topology: str = "Few",
    power_pad_fraction: float = 0.25,
    grid_nodes: int = DEFAULT_GRID_NODES,
    processor: Optional[ProcessorSpec] = None,
) -> StackConfig:
    """Stack configuration for a regular-PDN design point."""
    if topology not in TSV_TOPOLOGIES:
        raise ValueError(
            f"unknown TSV topology {topology!r}; choose from {sorted(TSV_TOPOLOGIES)}"
        )
    return StackConfig(
        n_layers=n_layers,
        processor=processor or ProcessorSpec(),
        tsv_topology=TSV_TOPOLOGIES[topology],
        pads=PadAllocation(power_fraction=power_pad_fraction),
        grid_nodes=grid_nodes,
    )


def stacked_stack(
    n_layers: int,
    topology: str = "Few",
    power_pad_fraction: float = 0.25,
    vdd_pads_per_core: int = 0,
    grid_nodes: int = DEFAULT_GRID_NODES,
    processor: Optional[ProcessorSpec] = None,
) -> StackConfig:
    """Stack configuration for a voltage-stacked design point.

    Pass ``vdd_pads_per_core=VS_VDD_PADS_PER_CORE`` for the paper's
    through-via pad allocation of the TSV EM study; leave 0 to allocate
    by ``power_pad_fraction`` (the C4 EM study's 25%).
    """
    if topology not in TSV_TOPOLOGIES:
        raise ValueError(
            f"unknown TSV topology {topology!r}; choose from {sorted(TSV_TOPOLOGIES)}"
        )
    return StackConfig(
        n_layers=n_layers,
        processor=processor or ProcessorSpec(),
        tsv_topology=TSV_TOPOLOGIES[topology],
        pads=PadAllocation(
            power_fraction=power_pad_fraction,
            vdd_pads_per_core_override=vdd_pads_per_core,
        ),
        grid_nodes=grid_nodes,
    )


def build_regular_pdn(
    n_layers,
    topology: str = "Few",
    power_pad_fraction: float = 0.25,
    grid_nodes: int = DEFAULT_GRID_NODES,
    **kwargs,
) -> RegularPDN3D:
    """Construct and return a ready-to-solve regular 3D PDN.

    The first argument may be a :class:`repro.runtime.spec.PDNSpec`
    instead of a layer count, in which case the spec supplies every
    structural parameter.
    """
    if isinstance(n_layers, PDNSpec):
        spec = n_layers
        if spec.is_stacked:
            raise ValueError(
                f"build_regular_pdn got a voltage-stacked spec: {spec.label()}"
            )
        n_layers = spec.n_layers
        topology = spec.topology
        power_pad_fraction = spec.power_pad_fraction
        grid_nodes = spec.grid_nodes
    return RegularPDN3D(
        regular_stack(n_layers, topology, power_pad_fraction, grid_nodes), **kwargs
    )


def build_stacked_pdn(
    n_layers,
    converters_per_core: int = 8,
    topology: str = "Few",
    power_pad_fraction: float = 0.25,
    vdd_pads_per_core: int = 0,
    grid_nodes: int = DEFAULT_GRID_NODES,
    **kwargs,
) -> StackedPDN3D:
    """Construct and return a ready-to-solve voltage-stacked 3D PDN.

    The first argument may be a :class:`repro.runtime.spec.PDNSpec`
    instead of a layer count, in which case the spec supplies every
    structural parameter.
    """
    if isinstance(n_layers, PDNSpec):
        spec = n_layers
        if not spec.is_stacked:
            raise ValueError(
                f"build_stacked_pdn got a regular spec: {spec.label()}"
            )
        n_layers = spec.n_layers
        converters_per_core = spec.converters_per_core
        topology = spec.topology
        power_pad_fraction = spec.power_pad_fraction
        vdd_pads_per_core = spec.vdd_pads_per_core
        grid_nodes = spec.grid_nodes
    return StackedPDN3D(
        stacked_stack(
            n_layers, topology, power_pad_fraction, vdd_pads_per_core, grid_nodes
        ),
        converters_per_core=converters_per_core,
        **kwargs,
    )


def build_pdn(spec: PDNSpec, **kwargs):
    """Construct whichever PDN arrangement ``spec`` describes."""
    if spec.is_stacked:
        return build_stacked_pdn(spec, **kwargs)
    return build_regular_pdn(spec, **kwargs)
