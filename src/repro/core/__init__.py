"""The cross-layer design exploration itself.

:mod:`scenarios` builds the paper's design points; the
:mod:`experiments <repro.core.experiments>` subpackage contains one
driver per figure/table of the evaluation, each returning a structured
result plus a formatted text rendering used by the benchmark harness.
"""

from repro.core.explorer import DesignPoint, DesignSpaceExplorer, ExplorationResult
from repro.core.guardband import AlphaPowerModel, fig6_guardbands
from repro.core.noise_profile import NoiseProfile, NoiseProfiler
from repro.core.placement import GreedyConverterPlacer, PlacedStackedPDN3D
from repro.core.report import generate_report
from repro.core.sensitivity import SensitivityAnalysis, SensitivityEntry
from repro.core.scenarios import (
    DEFAULT_GRID_NODES,
    VS_VDD_PADS_PER_CORE,
    build_regular_pdn,
    build_stacked_pdn,
    regular_stack,
    stacked_stack,
)

__all__ = [
    "DEFAULT_GRID_NODES",
    "VS_VDD_PADS_PER_CORE",
    "build_regular_pdn",
    "build_stacked_pdn",
    "regular_stack",
    "stacked_stack",
    "DesignPoint",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "NoiseProfile",
    "NoiseProfiler",
    "AlphaPowerModel",
    "fig6_guardbands",
    "GreedyConverterPlacer",
    "PlacedStackedPDN3D",
    "generate_report",
    "SensitivityAnalysis",
    "SensitivityEntry",
]
