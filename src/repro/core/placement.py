"""SC-converter placement optimisation — beyond uniform distribution.

The paper "uniformly distribute[s]" the converters within each core
(Sec. 3.2) and notes that more regulators reduce IR drop "by amortising
the per-converter current load and reducing the average load-to-
regulator distance".  This module asks the next question: given a fixed
converter budget, does *where* they sit matter?  A greedy placer adds
one converter site at a time at the candidate cell that most reduces
the solved worst-case IR drop.

Because every candidate evaluation is a full PDN build + solve, the
optimiser is meant for small model grids; its value is the insight
(how much headroom uniform placement leaves on the table), not speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.stackups import StackConfig
from repro.pdn.geometry import Cell, CellMultiplicity, GridGeometry
from repro.pdn.stacked3d import StackedPDN3D
from repro.utils.validation import check_positive_int
from repro.workload.imbalance import interleaved_layer_activities


class PlacedStackedPDN3D(StackedPDN3D):
    """A voltage-stacked PDN with an explicit converter placement.

    ``converter_cells`` maps grid cells to converter multiplicities and
    replaces the per-core uniform distribution (the placement is shared
    by every rail bank, as in the base model).
    """

    def __init__(self, stack: StackConfig, converter_cells: CellMultiplicity, **kwargs):
        if not converter_cells:
            raise ValueError("converter_cells must be non-empty")
        self._placement = dict(converter_cells)
        total = sum(converter_cells.values())
        core_count = stack.processor.core_count
        per_core = max(1, total // core_count)
        super().__init__(stack, converters_per_core=per_core, **kwargs)

    def _converter_cells(self) -> CellMultiplicity:
        return self._placement


@dataclass
class PlacementResult:
    """Outcome of a greedy placement run."""

    #: Chosen converter cells with multiplicities.
    placement: CellMultiplicity
    #: Worst-case IR drop (fraction of Vdd) of the optimised placement.
    ir_drop: float
    #: IR drop of the uniform baseline with the same budget.
    uniform_ir_drop: float
    #: IR drop after each greedy addition (length = budget).
    history: List[float]

    @property
    def improvement(self) -> float:
        """Fractional noise reduction vs the uniform baseline."""
        if self.uniform_ir_drop == 0:
            return 0.0
        return 1.0 - self.ir_drop / self.uniform_ir_drop


class GreedyConverterPlacer:
    """Greedy per-cell converter placement for one workload pattern.

    Candidates are restricted to one representative core tile and the
    chosen pattern is replicated to every core (the die is core-
    periodic, which keeps the search tractable and the result fair
    against the per-core uniform baseline).
    """

    def __init__(
        self,
        stack: StackConfig,
        imbalance: float = 0.65,
        candidate_stride: int = 1,
        **pdn_kwargs,
    ):
        if not 0.0 <= imbalance <= 1.0:
            raise ValueError("imbalance must be within [0, 1]")
        check_positive_int("candidate_stride", candidate_stride)
        self.stack = stack
        self.imbalance = imbalance
        self.geometry = GridGeometry.from_stack(stack)
        self.pdn_kwargs = pdn_kwargs
        self.activities = interleaved_layer_activities(stack.n_layers, imbalance)
        # Candidate cells within core (0, 0)'s tile.
        g = self.geometry.grid_nodes
        cells = []
        for j in range(0, g, candidate_stride):
            for i in range(0, g, candidate_stride):
                if self.geometry.core_of_cell((j, i)) == (0, 0):
                    cells.append((j, i))
        if not cells:
            raise RuntimeError("no candidate cells found in the core tile")
        self.candidates: List[Cell] = cells

    # ------------------------------------------------------------------
    def _replicate(self, core_cells: Dict[Cell, int]) -> CellMultiplicity:
        """Replicate a core-(0,0) pattern to every core tile."""
        g = self.geometry.grid_nodes
        rows, cols = self.geometry.core_rows, self.geometry.core_cols
        cell_j = g // rows
        cell_i = g // cols
        placement: CellMultiplicity = {}
        for (j, i), mult in core_cells.items():
            for r in range(rows):
                for c in range(cols):
                    jj = min(g - 1, j + r * cell_j)
                    ii = min(g - 1, i + c * cell_i)
                    placement[(jj, ii)] = placement.get((jj, ii), 0) + mult
        return placement

    def _evaluate(self, core_cells: Dict[Cell, int]) -> float:
        placement = self._replicate(core_cells)
        pdn = PlacedStackedPDN3D(self.stack, placement, **self.pdn_kwargs)
        return pdn.solve(layer_activities=self.activities).max_ir_drop_fraction()

    def uniform_baseline(self, budget_per_core: int) -> float:
        pdn = StackedPDN3D(
            self.stack, converters_per_core=budget_per_core, **self.pdn_kwargs
        )
        return pdn.solve(layer_activities=self.activities).max_ir_drop_fraction()

    def optimise(self, budget_per_core: int) -> PlacementResult:
        """Place ``budget_per_core`` converters greedily."""
        check_positive_int("budget_per_core", budget_per_core)
        chosen: Dict[Cell, int] = {}
        history: List[float] = []
        for _ in range(budget_per_core):
            best_cell = None
            best_value = np.inf
            for cell in self.candidates:
                trial = dict(chosen)
                trial[cell] = trial.get(cell, 0) + 1
                value = self._evaluate(trial)
                if value < best_value:
                    best_value = value
                    best_cell = cell
            chosen[best_cell] = chosen.get(best_cell, 0) + 1
            history.append(best_value)
        return PlacementResult(
            placement=self._replicate(chosen),
            ir_drop=history[-1],
            uniform_ir_drop=self.uniform_baseline(budget_per_core),
            history=history,
        )
