"""Cross-layer design-space exploration — the paper's stated purpose.

"Our model can help system designers to evaluate the benefits and costs
of design scenarios with different number of regulators and different
TSV/C4 pad allocations" (Sec. 1).  :class:`DesignSpaceExplorer` sweeps
a grid of design points — PDN arrangement, TSV topology, pad budget,
converters per core — evaluates the four competing objectives for each
(worst-case supply noise at a given workload imbalance, system power
efficiency, EM-damage-free lifetime of the weaker conductor array, and
silicon area overhead), and extracts the Pareto-efficient frontier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.config.stackups import ProcessorSpec, TSV_TOPOLOGIES
from repro.config.technology import EMParameters, default_em, default_tsv
from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.em import (
    C4_CROSS_SECTION,
    TSV_CROSS_SECTION,
    expected_em_lifetime,
    median_lifetimes_from_currents,
)
from repro.regulator.area import converters_area_overhead
from repro.config.converters import default_sc_spec
from repro.runtime import PDNSpec, SweepEngine, SweepPoint
from repro.workload.imbalance import interleaved_layer_activities


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design scenario."""

    arrangement: str  # "regular" | "voltage-stacked"
    tsv_topology: str
    converters_per_core: int  # 0 for regular
    power_pad_fraction: float
    #: Worst-case IR drop at the evaluation imbalance (fraction of Vdd);
    #: None when the converter rating is violated (infeasible point).
    ir_drop: Optional[float]
    #: System power efficiency at the evaluation imbalance.
    efficiency: Optional[float]
    #: EM-damage-free lifetime of the C4 pad array, arbitrary units.
    c4_lifetime: float
    #: EM-damage-free lifetime of the TSV array (tiers + through-vias).
    tsv_lifetime: float
    #: Silicon area overhead per core (KoZ + converters), fraction.
    area_overhead: float
    #: True when the underlying solve was flagged degraded/unconverged;
    #: the point's objectives are then best-effort values.
    degraded: bool = False

    @property
    def feasible(self) -> bool:
        return self.ir_drop is not None

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance over five objectives.

        Lower is better for noise, area and the power-pad budget (pads
        not used for power are available for I/O — the paper's scarce
        resource); higher is better for efficiency and EM lifetime.
        """
        if not self.feasible or not other.feasible:
            return False
        at_least = (
            self.ir_drop <= other.ir_drop
            and self.efficiency >= other.efficiency
            and self.c4_lifetime >= other.c4_lifetime
            and self.tsv_lifetime >= other.tsv_lifetime
            and self.area_overhead <= other.area_overhead
            and self.power_pad_fraction <= other.power_pad_fraction
        )
        strictly = (
            self.ir_drop < other.ir_drop
            or self.efficiency > other.efficiency
            or self.c4_lifetime > other.c4_lifetime
            or self.tsv_lifetime > other.tsv_lifetime
            or self.area_overhead < other.area_overhead
            or self.power_pad_fraction < other.power_pad_fraction
        )
        return at_least and strictly


@dataclass
class ExplorationResult:
    """All evaluated points plus the Pareto frontier."""

    points: List[DesignPoint]
    imbalance: float
    n_layers: int

    @property
    def feasible_points(self) -> List[DesignPoint]:
        return [p for p in self.points if p.feasible]

    @property
    def degraded_points(self) -> int:
        """Evaluated points whose solve was flagged degraded."""
        return sum(1 for p in self.points if p.degraded)

    @property
    def pareto_frontier(self) -> List[DesignPoint]:
        feasible = self.feasible_points
        return [
            p
            for p in feasible
            if not any(q.dominates(p) for q in feasible)
        ]

    def best_by(self, objective: str) -> DesignPoint:
        """Single-objective winner among feasible points."""
        feasible = self.feasible_points
        if not feasible:
            raise RuntimeError("no feasible design points")
        keys = {
            "noise": lambda p: p.ir_drop,
            "efficiency": lambda p: -p.efficiency,
            "c4_lifetime": lambda p: -p.c4_lifetime,
            "tsv_lifetime": lambda p: -p.tsv_lifetime,
            "area": lambda p: p.area_overhead,
        }
        if objective not in keys:
            raise ValueError(f"objective must be one of {sorted(keys)}")
        return min(feasible, key=keys[objective])

    def format(self, pareto_only: bool = True) -> str:
        rows = []
        points = self.pareto_frontier if pareto_only else self.points
        ref_c4 = max(p.c4_lifetime for p in self.points)
        ref_tsv = max(p.tsv_lifetime for p in self.points)
        for p in sorted(points, key=lambda p: (p.ir_drop is None, p.ir_drop or 0)):
            rows.append(
                (
                    p.arrangement,
                    p.tsv_topology,
                    p.converters_per_core or "-",
                    f"{p.power_pad_fraction:.0%}",
                    None if p.ir_drop is None else p.ir_drop * 100,
                    None if p.efficiency is None else p.efficiency * 100,
                    p.c4_lifetime / ref_c4,
                    p.tsv_lifetime / ref_tsv,
                    p.area_overhead * 100,
                )
            )
        title = (
            f"{'Pareto frontier' if pareto_only else 'Design points'}: "
            f"{self.n_layers} layers at {self.imbalance:.0%} imbalance"
        )
        return format_table(
            [
                "arrangement", "TSV", "conv/core", "power pads",
                "IR drop (%Vdd)", "efficiency (%)", "C4 life (norm)",
                "TSV life (norm)", "area ovh (%)",
            ],
            rows,
            title=title,
        )


def _array_lifetimes(result, em: EMParameters) -> Tuple[float, float]:
    """(C4, TSV) expected EM-damage-free lifetimes of one solve."""
    c4 = expected_em_lifetime(
        median_lifetimes_from_currents(
            result.conductor_currents("c4"), C4_CROSS_SECTION, em
        ),
        em,
    )
    tsv_currents = [result.conductor_currents("tsv")]
    if result.has_group_prefix("tvia"):
        tsv_currents.append(result.conductor_currents("tvia"))
    tsv = expected_em_lifetime(
        median_lifetimes_from_currents(
            np.concatenate(tsv_currents), TSV_CROSS_SECTION, em
        ),
        em,
    )
    return c4, tsv


def _area_overhead(
    topology: str, converters: int, capacitor_technology: str
) -> float:
    core_area = ProcessorSpec().core_area
    koz = TSV_TOPOLOGIES[topology].area_overhead(core_area, default_tsv())
    if converters == 0:
        return koz
    conv = converters_area_overhead(
        default_sc_spec(), converters, core_area, capacitor_technology
    )
    return koz + conv


def _design_point_extract(
    outcome, em: EMParameters, capacitor_technology: str
) -> DesignPoint:
    """Build one DesignPoint from a sweep outcome (picklable)."""
    arrangement, topology, pad_fraction, converters = outcome.point.tag
    result = outcome.unwrap()
    c4_life, tsv_life = _array_lifetimes(result, em)
    # A regular PDN is always feasible; a V-S point is infeasible when
    # its converters exceed the 100 mA rating.
    feasible = converters == 0 or result.converters_within_rating()
    return DesignPoint(
        arrangement=arrangement,
        tsv_topology=topology,
        converters_per_core=converters,
        power_pad_fraction=pad_fraction,
        ir_drop=result.max_ir_drop_fraction() if feasible else None,
        efficiency=result.efficiency() if feasible else None,
        c4_lifetime=c4_life,
        tsv_lifetime=tsv_life,
        area_overhead=_area_overhead(topology, converters, capacitor_technology),
        degraded=bool(getattr(result, "degraded", False)),
    )


class DesignSpaceExplorer:
    """Sweep and rank 3D-PDN design scenarios.

    ``explore()`` runs on the :class:`repro.runtime.engine.SweepEngine`
    — every distinct topology in the cross product is built and
    factorised once, and independent topologies can fan out across
    worker processes (``workers`` / ``REPRO_SWEEP_WORKERS``).
    """

    def __init__(
        self,
        n_layers: int = 8,
        imbalance: float = 0.65,
        grid_nodes: int = 12,
        em: Optional[EMParameters] = None,
        capacitor_technology: str = "trench",
        workers: Optional[int] = None,
        engine: Optional[SweepEngine] = None,
    ):
        if not 0.0 <= imbalance <= 1.0:
            raise ValueError("imbalance must be within [0, 1]")
        self.n_layers = n_layers
        self.imbalance = imbalance
        self.grid_nodes = grid_nodes
        self.em = em or default_em()
        self.capacitor_technology = capacitor_technology
        self.engine = engine or SweepEngine(workers=workers)

    # ------------------------------------------------------------------
    def _array_lifetimes(self, result) -> Tuple[float, float]:
        return _array_lifetimes(result, self.em)

    def _area_overhead(self, topology: str, converters: int) -> float:
        return _area_overhead(topology, converters, self.capacitor_technology)

    def evaluate_regular(self, topology: str, pad_fraction: float) -> DesignPoint:
        pdn = build_regular_pdn(
            self.n_layers,
            topology=topology,
            power_pad_fraction=pad_fraction,
            grid_nodes=self.grid_nodes,
        )
        result = pdn.solve()  # regular worst case: all layers active
        c4_life, tsv_life = self._array_lifetimes(result)
        return DesignPoint(
            arrangement="regular",
            tsv_topology=topology,
            converters_per_core=0,
            power_pad_fraction=pad_fraction,
            ir_drop=result.max_ir_drop_fraction(),
            efficiency=result.efficiency(),
            c4_lifetime=c4_life,
            tsv_lifetime=tsv_life,
            area_overhead=self._area_overhead(topology, 0),
            degraded=bool(getattr(result, "degraded", False)),
        )

    def evaluate_stacked(
        self, topology: str, pad_fraction: float, converters: int
    ) -> DesignPoint:
        pdn = build_stacked_pdn(
            self.n_layers,
            converters_per_core=converters,
            topology=topology,
            power_pad_fraction=pad_fraction,
            grid_nodes=self.grid_nodes,
        )
        activities = interleaved_layer_activities(self.n_layers, self.imbalance)
        result = pdn.solve(layer_activities=activities)
        feasible = result.converters_within_rating()
        c4_life, tsv_life = self._array_lifetimes(result)
        return DesignPoint(
            arrangement="voltage-stacked",
            tsv_topology=topology,
            converters_per_core=converters,
            power_pad_fraction=pad_fraction,
            ir_drop=result.max_ir_drop_fraction() if feasible else None,
            efficiency=result.efficiency() if feasible else None,
            c4_lifetime=c4_life,
            tsv_lifetime=tsv_life,
            area_overhead=self._area_overhead(topology, converters),
            degraded=bool(getattr(result, "degraded", False)),
        )

    def explore(
        self,
        topologies: Sequence[str] = ("Dense", "Sparse", "Few"),
        pad_fractions: Sequence[float] = (0.25, 0.5),
        converter_counts: Sequence[int] = (2, 4, 8),
    ) -> ExplorationResult:
        """Evaluate the full cross product of scenarios on the engine."""
        activities = tuple(
            interleaved_layer_activities(self.n_layers, self.imbalance)
        )
        sweep_points: List[SweepPoint] = []
        for topology, fraction in itertools.product(topologies, pad_fractions):
            sweep_points.append(
                SweepPoint(
                    spec=PDNSpec.regular(
                        self.n_layers,
                        topology=topology,
                        power_pad_fraction=fraction,
                        grid_nodes=self.grid_nodes,
                    ),
                    # regular worst case: all layers active
                    tag=("regular", topology, fraction, 0),
                )
            )
        for topology, fraction, conv in itertools.product(
            topologies, pad_fractions, converter_counts
        ):
            sweep_points.append(
                SweepPoint(
                    spec=PDNSpec.stacked(
                        self.n_layers,
                        converters_per_core=conv,
                        topology=topology,
                        power_pad_fraction=fraction,
                        grid_nodes=self.grid_nodes,
                    ),
                    layer_activities=activities,
                    tag=("voltage-stacked", topology, fraction, conv),
                )
            )
        extract = partial(
            _design_point_extract,
            em=self.em,
            capacitor_technology=self.capacitor_technology,
        )
        points = list(self.engine.run(sweep_points, extract=extract).values)
        return ExplorationResult(
            points=points, imbalance=self.imbalance, n_layers=self.n_layers
        )
