"""Frequency guardbanding: translating supply noise into performance.

Architects ultimately pay for PDN noise in clock frequency: the worst
droop must be covered by a voltage/frequency guardband.  Using the
alpha-power delay model — gate delay ``~ V / (V - Vth)^alpha`` — this
module converts the IR-drop numbers of the Fig. 6 comparison into the
currency that matters: how much peak frequency each power-delivery
design costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.experiments.fig6 import Fig6Result
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class AlphaPowerModel:
    """Alpha-power-law delay model of the critical path."""

    #: Effective threshold voltage (V); ~0.35 V at 40 nm LP.
    threshold_voltage: float = 0.35
    #: Velocity-saturation exponent; ~1.3 for short-channel devices.
    alpha: float = 1.3
    #: Nominal supply (V).
    nominal_vdd: float = 1.0

    def __post_init__(self) -> None:
        check_positive("threshold_voltage", self.threshold_voltage)
        check_positive("alpha", self.alpha)
        check_positive("nominal_vdd", self.nominal_vdd)
        if self.threshold_voltage >= self.nominal_vdd:
            raise ValueError("threshold must be below the nominal supply")

    # ------------------------------------------------------------------
    def fmax_ratio(self, supply: float) -> float:
        """Achievable frequency at ``supply`` relative to nominal.

        ``f(V) ~ (V - Vth)^alpha / V``; 1.0 at the nominal supply.
        """
        if supply <= self.threshold_voltage:
            return 0.0
        v = self.nominal_vdd
        nominal = (v - self.threshold_voltage) ** self.alpha / v
        actual = (supply - self.threshold_voltage) ** self.alpha / supply
        return actual / nominal

    def guardband_for_droop(self, droop_fraction: float) -> float:
        """Frequency guardband (fraction of fmax) covering a droop.

        The clock must be safe at the *worst* supply, so the guardband
        is ``1 - fmax_ratio(Vnom * (1 - droop))``.
        """
        check_fraction("droop_fraction", droop_fraction)
        worst = self.nominal_vdd * (1.0 - droop_fraction)
        return 1.0 - self.fmax_ratio(worst)


def fig6_guardbands(
    result: Fig6Result,
    imbalance: float,
    model: Optional[AlphaPowerModel] = None,
) -> Dict[str, Optional[float]]:
    """Frequency guardband every Fig. 6 design needs at one imbalance.

    Returns ``{design: guardband fraction}`` for the regular topologies
    (imbalance-independent) and each V-S converter count (``None`` where
    the paper skips the point).
    """
    model = model or AlphaPowerModel()
    out: Dict[str, Optional[float]] = {}
    for name, drop in result.regular_lines.items():
        out[f"Reg. PDN, {name} TSV"] = model.guardband_for_droop(drop)
    for k in sorted(result.vs_series):
        drop = result.vs_at(k, imbalance)
        out[f"V-S PDN, {k} conv/core"] = (
            None if drop is None else model.guardband_for_droop(drop)
        )
    return out
