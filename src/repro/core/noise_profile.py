"""Statistical supply-noise profiling under sampled workloads.

The paper evaluates V-S noise at the *average* PARSEC imbalance (0.75%
Vdd penalty at 65%).  This module computes the full noise *distribution*
instead: draw many scheduled operating points from the workload sample
sets, solve the PDN for each (the LU factorisation is shared, so each
sample costs one triangular solve), and report percentiles — the
quantity a margin-setting designer actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config.stackups import ProcessorSpec
from repro.pdn.builder import BasePDN3D
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive_int
from repro.workload.sampling import SampleSet


@dataclass(frozen=True)
class NoiseProfile:
    """Distribution of worst-case IR drop over sampled workloads."""

    #: Per-sample max IR drop (fraction of Vdd).
    samples: np.ndarray
    #: Scheduling policy label.
    policy: str

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def worst(self) -> float:
        return float(self.samples.max())

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    def exceedance_fraction(self, threshold: float) -> float:
        """Fraction of operating points whose noise exceeds ``threshold``."""
        return float(np.mean(self.samples > threshold))


class NoiseProfiler:
    """Monte-Carlo noise profiling of one built PDN.

    Parameters
    ----------
    pdn:
        A built (regular or voltage-stacked) PDN; its factorisation is
        reused for every sampled operating point.
    sample_sets:
        Per-application workload samples (from
        :func:`repro.workload.sampling.sample_suite` or the gem5-lite
        generator).
    """

    def __init__(
        self,
        pdn: BasePDN3D,
        sample_sets: Dict[str, SampleSet],
        processor: Optional[ProcessorSpec] = None,
    ):
        if not sample_sets:
            raise ValueError("sample_sets must be non-empty")
        self.pdn = pdn
        self.samples = sample_sets
        self.processor = processor or pdn.stack.processor
        self._names = sorted(sample_sets)

    # ------------------------------------------------------------------
    def _activities_for(self, apps: Sequence[str], rng) -> np.ndarray:
        activities = []
        for app in apps:
            dynamic = self.samples[app].dynamic_powers
            draw = float(dynamic[rng.integers(len(dynamic))])
            activities.append(draw / self.processor.dynamic_power)
        return np.clip(np.asarray(activities), 0.0, 1.0)

    def profile(
        self,
        policy: str = "mixed",
        trials: int = 100,
        rng: SeedLike = None,
    ) -> NoiseProfile:
        """Sample ``trials`` operating points under a scheduling policy.

        ``policy``: ``"mixed"`` draws an independent application per
        layer; ``"same-app"`` runs one application's instances on every
        layer of the stack (the paper's recommendation).
        """
        if policy not in ("mixed", "same-app"):
            raise ValueError("policy must be 'mixed' or 'same-app'")
        check_positive_int("trials", trials)
        gen = make_rng(rng)
        n_layers = self.pdn.stack.n_layers
        drops = np.empty(trials)
        for k in range(trials):
            if policy == "same-app":
                app = self._names[gen.integers(len(self._names))]
                apps = [app] * n_layers
            else:
                apps = [
                    self._names[gen.integers(len(self._names))]
                    for _ in range(n_layers)
                ]
            activities = self._activities_for(apps, gen)
            result = self.pdn.solve(layer_activities=activities)
            drops[k] = result.max_ir_drop_fraction()
        return NoiseProfile(samples=drops, policy=policy)

    def compare_policies(
        self, trials: int = 100, rng: SeedLike = None
    ) -> Dict[str, NoiseProfile]:
        """Profile both scheduling policies with a shared RNG stream."""
        gen = make_rng(rng)
        return {
            "mixed": self.profile("mixed", trials, gen),
            "same-app": self.profile("same-app", trials, gen),
        }

    def profile_trace(
        self,
        layer_apps: Sequence[str],
        n_windows: int = 50,
        rng: SeedLike = None,
    ) -> NoiseProfile:
        """Quasi-static noise over a *temporal* window sequence.

        Each layer runs its assigned application; every 2k-cycle window
        draws that application's next activity sample and the PDN is
        re-solved (RHS-only).  Unlike :meth:`profile`, consecutive
        samples describe one execution's noise-vs-time, so the result's
        ``samples`` array is an ordered time series (the worst entry is
        the trace's voltage-noise high-water mark).
        """
        if len(layer_apps) != self.pdn.stack.n_layers:
            raise ValueError(
                f"need one application per layer "
                f"({self.pdn.stack.n_layers}), got {len(layer_apps)}"
            )
        check_positive_int("n_windows", n_windows)
        gen = make_rng(rng)
        drops = np.empty(n_windows)
        for k in range(n_windows):
            activities = self._activities_for(layer_apps, gen)
            result = self.pdn.solve(layer_activities=activities)
            drops[k] = result.max_ir_drop_fraction()
        return NoiseProfile(samples=drops, policy="trace")
