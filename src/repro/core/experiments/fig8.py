"""Fig. 8 — system power efficiency of the 8-layer stack.

For the V-S PDN, efficiency (total load power / off-chip source power)
comes straight from the grid solve: it accounts for converter series and
parasitic losses plus all resistive PDN losses.  The regular-PDN
comparison line — SC converters providing *all* the power, stepping a
2 Vdd rail down to Vdd — is evaluated with the compact model, with each
core served by the minimal number of converters that respects the
100 mA rating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.config.stackups import ProcessorSpec
from repro.core.scenarios import build_stacked_pdn
from repro.regulator.compact import SCCompactModel
from repro.workload.imbalance import interleaved_layer_activities

DEFAULT_IMBALANCES: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))
DEFAULT_CONVERTERS: Tuple[int, ...] = (2, 4, 6, 8)


def regular_sc_efficiency(
    imbalance: float,
    n_layers: int = 8,
    processor: Optional[ProcessorSpec] = None,
    spec: Optional[SCConverterSpec] = None,
) -> float:
    """Efficiency of a regular PDN whose SC converters carry all power.

    Unlike the V-S case the converters see the full per-core current of
    every layer (high and low layers alike under the interleaved
    pattern), converting a 2 Vdd input rail down to Vdd.
    """
    processor = processor or ProcessorSpec()
    spec = spec or default_sc_spec()
    model = SCCompactModel(spec)
    peak_core_current = processor.peak_core_power / processor.vdd
    converters_per_core = max(1, math.ceil(peak_core_current / spec.max_load_current))
    total_out = 0.0
    total_in = 0.0
    for activity in interleaved_layer_activities(n_layers, imbalance):
        core_current = processor.layer_power(float(activity)) / (
            processor.vdd * processor.core_count
        )
        per_converter = core_current / converters_per_core
        op = model.operating_point(
            2.0 * processor.vdd, 0.0, per_converter
        )
        total_out += op.output_power * converters_per_core * processor.core_count
        total_in += op.input_power * converters_per_core * processor.core_count
    return total_out / total_in


@dataclass(frozen=True)
class Fig8Result:
    """Efficiency sweep results (fractions of 1)."""

    n_layers: int
    imbalances: Tuple[float, ...]
    #: converters/core -> efficiency per imbalance (None = rating violated).
    vs_series: Dict[int, List[Optional[float]]]
    #: regular PDN + SC-for-all-power line.
    regular_sc: List[float]

    def vs_at(self, converters: int, imbalance: float) -> Optional[float]:
        idx = self.imbalances.index(imbalance)
        return self.vs_series[converters][idx]

    def format(self) -> str:
        headers = (
            ["imbalance"]
            + [f"V-S {k} conv/core" for k in sorted(self.vs_series)]
            + ["Reg. PDN + SC all power"]
        )
        rows = []
        for i, imbalance in enumerate(self.imbalances):
            row: List[object] = [f"{imbalance:.0%}"]
            for k in sorted(self.vs_series):
                value = self.vs_series[k][i]
                row.append(None if value is None else value * 100)
            row.append(self.regular_sc[i] * 100)
            rows.append(row)
        return format_table(
            headers, rows,
            title=(
                f"Fig. 8: system power efficiency (%), {self.n_layers}-layer stack "
                "('-' = converter rating exceeded)"
            ),
        )


def run_fig8(
    n_layers: int = 8,
    imbalances: Sequence[float] = DEFAULT_IMBALANCES,
    converters_per_core: Sequence[int] = DEFAULT_CONVERTERS,
    grid_nodes: int = 20,
) -> Fig8Result:
    """Reproduce the Fig. 8 efficiency comparison."""
    imbalances = tuple(imbalances)
    vs_series: Dict[int, List[Optional[float]]] = {}
    for k in converters_per_core:
        pdn = build_stacked_pdn(
            n_layers, converters_per_core=k, topology="Few", grid_nodes=grid_nodes
        )
        values: List[Optional[float]] = []
        for imbalance in imbalances:
            activities = interleaved_layer_activities(n_layers, imbalance)
            result = pdn.solve(layer_activities=activities)
            if result.converters_within_rating():
                values.append(result.efficiency())
            else:
                values.append(None)
        vs_series[k] = values
    regular = [regular_sc_efficiency(i, n_layers) for i in imbalances]
    return Fig8Result(
        n_layers=n_layers,
        imbalances=imbalances,
        vs_series=vs_series,
        regular_sc=regular,
    )
