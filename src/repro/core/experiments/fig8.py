"""Fig. 8 — system power efficiency of the 8-layer stack.

For the V-S PDN, efficiency (total load power / off-chip source power)
comes straight from the grid solve: it accounts for converter series and
parasitic losses plus all resistive PDN losses.  The regular-PDN
comparison line — SC converters providing *all* the power, stepping a
2 Vdd rail down to Vdd — is evaluated with the compact model, with each
core served by the minimal number of converters that respects the
100 mA rating.

The V-S sweep runs on the :class:`repro.runtime.engine.SweepEngine`:
one topology group per converter count, all imbalance points solved in
one batched multi-RHS call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.config.stackups import ProcessorSpec
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_grid_argument,
    add_layers_argument,
    degraded_notes,
    outcome_degraded,
    resolve_engine,
)
from repro.regulator.compact import SCCompactModel
from repro.runtime import PDNSpec, SweepEngine, SweepPoint
from repro.workload.imbalance import interleaved_layer_activities

DEFAULT_IMBALANCES: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))
DEFAULT_CONVERTERS: Tuple[int, ...] = (2, 4, 6, 8)


def regular_sc_efficiency(
    imbalance: float,
    n_layers: int = 8,
    processor: Optional[ProcessorSpec] = None,
    spec: Optional[SCConverterSpec] = None,
) -> float:
    """Efficiency of a regular PDN whose SC converters carry all power.

    Unlike the V-S case the converters see the full per-core current of
    every layer (high and low layers alike under the interleaved
    pattern), converting a 2 Vdd input rail down to Vdd.
    """
    processor = processor or ProcessorSpec()
    spec = spec or default_sc_spec()
    model = SCCompactModel(spec)
    peak_core_current = processor.peak_core_power / processor.vdd
    converters_per_core = max(1, math.ceil(peak_core_current / spec.max_load_current))
    total_out = 0.0
    total_in = 0.0
    for activity in interleaved_layer_activities(n_layers, imbalance):
        core_current = processor.layer_power(float(activity)) / (
            processor.vdd * processor.core_count
        )
        per_converter = core_current / converters_per_core
        op = model.operating_point(
            2.0 * processor.vdd, 0.0, per_converter
        )
        total_out += op.output_power * converters_per_core * processor.core_count
        total_in += op.input_power * converters_per_core * processor.core_count
    return total_out / total_in


def _extract_rated_efficiency(outcome) -> Tuple[Optional[float], bool]:
    """(Efficiency or None when rating-violated, degraded flag)."""
    result = outcome.unwrap()
    if result.converters_within_rating():
        return result.efficiency(), outcome_degraded(outcome)
    return None, outcome_degraded(outcome)


@dataclass(frozen=True)
class Fig8Result:
    """Efficiency sweep results (fractions of 1)."""

    n_layers: int
    imbalances: Tuple[float, ...]
    #: converters/core -> efficiency per imbalance (None = rating violated).
    vs_series: Dict[int, List[Optional[float]]]
    #: regular PDN + SC-for-all-power line.
    regular_sc: List[float]
    #: converters/core -> per-imbalance degraded/unconverged flags.
    vs_degraded: Dict[int, List[bool]] = field(default_factory=dict)
    #: Total sweep points flagged degraded.
    degraded_points: int = 0

    def vs_at(self, converters: int, imbalance: float) -> Optional[float]:
        idx = self.imbalances.index(imbalance)
        return self.vs_series[converters][idx]

    def format(self) -> str:
        headers = (
            ["imbalance"]
            + [f"V-S {k} conv/core" for k in sorted(self.vs_series)]
            + ["Reg. PDN + SC all power"]
        )
        rows = []
        for i, imbalance in enumerate(self.imbalances):
            row: List[object] = [f"{imbalance:.0%}"]
            for k in sorted(self.vs_series):
                value = self.vs_series[k][i]
                row.append(None if value is None else value * 100)
            row.append(self.regular_sc[i] * 100)
            rows.append(row)
        return format_table(
            headers, rows,
            title=(
                f"Fig. 8: system power efficiency (%), {self.n_layers}-layer stack "
                "('-' = converter rating exceeded)"
            ),
        )


def compute_fig8(
    n_layers: int = 8,
    imbalances: Sequence[float] = DEFAULT_IMBALANCES,
    converters_per_core: Sequence[int] = DEFAULT_CONVERTERS,
    grid_nodes: int = 20,
    engine: Optional[SweepEngine] = None,
) -> Fig8Result:
    """Reproduce the Fig. 8 efficiency comparison.

    The engine-backed implementation behind :class:`Fig8Experiment`.
    """
    engine = engine or SweepEngine()
    imbalances = tuple(imbalances)
    points = [
        SweepPoint(
            spec=PDNSpec.stacked(
                n_layers, converters_per_core=k, topology="Few",
                grid_nodes=grid_nodes,
            ),
            layer_activities=tuple(
                interleaved_layer_activities(n_layers, imbalance)
            ),
        )
        for k in converters_per_core
        for imbalance in imbalances
    ]
    flagged = engine.run(points, extract=_extract_rated_efficiency).values
    vs_series: Dict[int, List[Optional[float]]] = {}
    vs_degraded: Dict[int, List[bool]] = {}
    n_imb = len(imbalances)
    for i, k in enumerate(converters_per_core):
        chunk = flagged[i * n_imb:(i + 1) * n_imb]
        vs_series[k] = [value for value, _ in chunk]
        vs_degraded[k] = [bool(flag) for _, flag in chunk]
    regular = [regular_sc_efficiency(i, n_layers) for i in imbalances]
    return Fig8Result(
        n_layers=n_layers,
        imbalances=imbalances,
        vs_series=vs_series,
        regular_sc=regular,
        vs_degraded=vs_degraded,
        degraded_points=sum(1 for _, flag in flagged if flag),
    )


class Fig8Experiment(Experiment):
    name = "fig8"
    description = "Fig. 8: system power efficiency"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)
        add_layers_argument(parser)
        parser.add_argument("--csv", type=str, default=None, help="also export to CSV")

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["csv"] = getattr(args, "csv", None)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        result = compute_fig8(
            n_layers=config.n_layers,
            grid_nodes=config.grid_nodes,
            engine=resolve_engine(config),
        )
        notes = degraded_notes(result.degraded_points)
        csv_path = config.option("csv")
        if csv_path:
            from repro.analysis.export import fig8_to_csv

            notes.append(f"wrote {fig8_to_csv(result, csv_path)}")
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "n_layers": result.n_layers,
                "imbalances": list(result.imbalances),
                "vs_series": {str(k): v for k, v in result.vs_series.items()},
                "regular_sc": result.regular_sc,
                "vs_degraded": {str(k): v for k, v in result.vs_degraded.items()},
                "degraded_points": result.degraded_points,
            },
            raw=result,
            notes=notes,
        )
