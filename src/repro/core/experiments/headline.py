"""The paper's headline claims, evaluated end-to-end in one report.

Abstract / conclusions checked:

1. V-S improves the 8-layer C4 array's EM lifetime by up to ~5x.
2. V-S improves the 8-layer TSV array's EM lifetime by more than 3x.
3. Stacking layers degrades the regular PDN's TSV lifetime by up to
   ~84%, while the V-S PDN's is nearly insensitive to layer count.
4. At the suite-average 65% workload imbalance, the V-S PDN's IR drop
   exceeds the equal-area regular PDN (Dense TSV) by only ~0.75% Vdd,
   and V-S wins outright below ~50% imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_grid_argument,
    degraded_notes,
    resolve_engine,
)
from repro.core.experiments.fig5 import Fig5aResult, Fig5bResult, compute_fig5a, compute_fig5b
from repro.core.experiments.fig6 import Fig6Result, compute_fig6
from repro.core.experiments.fig7 import Fig7Result, compute_fig7
from repro.runtime import SweepEngine


@dataclass(frozen=True)
class HeadlineReport:
    """Measured values behind each headline claim."""

    c4_improvement_8l: float
    tsv_improvement_8l: float
    regular_tsv_degradation: float
    vs_tsv_degradation: float
    average_imbalance: float
    vs_extra_ir_drop_at_average: float
    crossover_imbalance: Optional[float]
    #: Degraded/unconverged points rolled up from every sub-experiment.
    degraded_points: int = 0

    def format(self) -> str:
        crossover = (
            f"{self.crossover_imbalance:.0%}"
            if self.crossover_imbalance is not None
            else "none observed"
        )
        return "\n".join(
            [
                "Headline claims (paper -> measured):",
                f"  C4 EM lifetime gain at 8 layers (up to ~5x): {self.c4_improvement_8l:.2f}x",
                f"  TSV EM lifetime gain at 8 layers (>3x): {self.tsv_improvement_8l:.2f}x",
                f"  Regular-PDN TSV lifetime loss, 2->8 layers (up to 84%): "
                f"{self.regular_tsv_degradation:.0%}",
                f"  V-S PDN TSV lifetime loss, 2->8 layers (slight): "
                f"{self.vs_tsv_degradation:.0%}",
                f"  Suite-average max imbalance (65%): {self.average_imbalance:.0%}",
                f"  V-S IR drop above Reg/Dense at that imbalance (~0.75% Vdd): "
                f"{self.vs_extra_ir_drop_at_average * 100:+.2f}% Vdd",
                f"  V-S/regular noise crossover (~50%): {crossover}",
            ]
        )


def run_headline(
    grid_nodes: int = 20,
    fig5a: Optional[Fig5aResult] = None,
    fig5b: Optional[Fig5bResult] = None,
    fig6: Optional[Fig6Result] = None,
    fig7: Optional[Fig7Result] = None,
    engine: Optional[SweepEngine] = None,
) -> HeadlineReport:
    """Evaluate every headline claim (reusing results when supplied).

    All sub-experiments share one :class:`SweepEngine`, so topologies
    common to Figs. 5a/5b/6 (e.g. the regular Few-TSV stacks) are built
    and factorised exactly once across the whole report.
    """
    engine = engine or SweepEngine()
    fig5a = fig5a or compute_fig5a(grid_nodes=grid_nodes, engine=engine)
    fig5b = fig5b or compute_fig5b(grid_nodes=grid_nodes, engine=engine)
    fig6 = fig6 or compute_fig6(grid_nodes=grid_nodes, engine=engine)
    fig7 = fig7 or compute_fig7()

    vs_series = fig5a.series["V-S PDN, Few TSV"]
    reg_series = fig5a.series["Reg. PDN, Few TSV"]
    average = fig7.average_max_imbalance
    # Interpolate the Fig. 6 sweep at the suite-average imbalance.
    sweep = [
        (imb, val)
        for imb, val in zip(fig6.imbalances, fig6.vs_series[8])
        if val is not None
    ]
    vs_at_avg = None
    for (x0, y0), (x1, y1) in zip(sweep, sweep[1:]):
        if x0 <= average <= x1:
            vs_at_avg = y0 + (y1 - y0) * (average - x0) / (x1 - x0)
            break
    if vs_at_avg is None:
        vs_at_avg = sweep[-1][1]
    dense = fig6.regular_lines["Dense"]

    return HeadlineReport(
        c4_improvement_8l=fig5b.improvement_at(8),
        tsv_improvement_8l=fig5a.improvement_at(8),
        regular_tsv_degradation=fig5a.regular_degradation(),
        vs_tsv_degradation=1.0 - vs_series[-1] / vs_series[0],
        average_imbalance=average,
        vs_extra_ir_drop_at_average=vs_at_avg - dense,
        crossover_imbalance=fig6.crossover_imbalance(),
        degraded_points=(
            fig5a.degraded_points + fig5b.degraded_points + fig6.degraded_points
        ),
    )


class HeadlineExperiment(Experiment):
    name = "headline"
    description = "All headline claims in one report"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        report = run_headline(
            grid_nodes=config.grid_nodes,
            engine=resolve_engine(config),
        )
        return ExperimentResult(
            name=self.name,
            table=report.format(),
            data={
                "c4_improvement_8l": report.c4_improvement_8l,
                "tsv_improvement_8l": report.tsv_improvement_8l,
                "regular_tsv_degradation": report.regular_tsv_degradation,
                "vs_tsv_degradation": report.vs_tsv_degradation,
                "average_imbalance": report.average_imbalance,
                "vs_extra_ir_drop_at_average": report.vs_extra_ir_drop_at_average,
                "crossover_imbalance": report.crossover_imbalance,
                "degraded_points": report.degraded_points,
            },
            raw=report,
            notes=degraded_notes(report.degraded_points),
        )
