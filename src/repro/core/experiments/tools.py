"""Experiment wrappers for the non-figure analysis commands.

These wrap the design-space explorer, the technology-sensitivity
tornado, the statistical noise profiler and the consolidated report
behind the same :class:`repro.core.experiments.base.Experiment`
protocol the figure reproductions use, so the CLI can be generated
from one registry.
"""

from __future__ import annotations

from typing import Optional

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_grid_argument,
    add_layers_argument,
    add_seed_argument,
    degraded_notes,
    resolve_engine,
    typed_float,
    typed_int,
)


class ExploreExperiment(Experiment):
    name = "explore"
    description = "Design-space exploration (Pareto frontier)"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)
        parser.add_argument(
            "--imbalance", type=typed_float("--imbalance", minimum=0.0),
            default=0.65,
        )
        parser.add_argument(
            "--layers", type=typed_int("--layers", minimum=1), default=8
        )
        parser.add_argument("--all-points", action="store_true")

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["imbalance"] = getattr(args, "imbalance", 0.65)
        config.options["all_points"] = getattr(args, "all_points", False)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.core.explorer import DesignSpaceExplorer

        config = config or ExperimentConfig()
        explorer = DesignSpaceExplorer(
            n_layers=config.n_layers,
            imbalance=config.option("imbalance", 0.65),
            grid_nodes=config.grid_nodes,
            workers=config.workers,
            engine=resolve_engine(config),
        )
        result = explorer.explore()
        pareto_only = not config.option("all_points", False)
        return ExperimentResult(
            name=self.name,
            table=result.format(pareto_only=pareto_only),
            data={
                "n_layers": result.n_layers,
                "imbalance": result.imbalance,
                "n_points": len(result.points),
                "n_feasible": len(result.feasible_points),
                "n_pareto": len(result.pareto_frontier),
                "degraded_points": result.degraded_points,
            },
            raw=result,
            notes=degraded_notes(result.degraded_points),
        )


class SensitivityExperiment(Experiment):
    name = "sensitivity"
    description = "Technology-parameter tornado analysis"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)
        add_layers_argument(parser)
        parser.add_argument(
            "--arrangement", choices=("regular", "voltage-stacked"),
            default="regular",
        )
        parser.add_argument(
            "--metric", choices=("ir_drop", "efficiency"), default="ir_drop"
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["arrangement"] = getattr(args, "arrangement", "regular")
        config.options["metric"] = getattr(args, "metric", "ir_drop")
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.config.stackups import StackConfig
        from repro.core.sensitivity import SensitivityAnalysis

        config = config or ExperimentConfig()
        analysis = SensitivityAnalysis(
            StackConfig(n_layers=config.n_layers, grid_nodes=config.grid_nodes),
            arrangement=config.option("arrangement", "regular"),
            metric=config.option("metric", "ir_drop"),
        )
        rows = analysis.run()
        return ExperimentResult(
            name=self.name,
            table=analysis.format(rows),
            raw=rows,
        )


class NoiseExperiment(Experiment):
    name = "noise"
    description = "Statistical supply-noise profile under sampled workloads"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)
        add_layers_argument(parser)
        add_seed_argument(parser)
        parser.add_argument(
            "--trials", type=typed_int("--trials", minimum=1), default=60
        )
        parser.add_argument(
            "--converters", type=typed_int("--converters", minimum=1), default=8
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["trials"] = getattr(args, "trials", 60)
        config.options["converters"] = getattr(args, "converters", 8)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.config.stackups import ProcessorSpec
        from repro.core.noise_profile import NoiseProfiler
        from repro.core.scenarios import build_stacked_pdn
        from repro.utils.rng import spawn_seeds
        from repro.workload.sampling import sample_suite

        config = config or ExperimentConfig()
        trials = config.option("trials", 60)
        converters = config.option("converters", 8)
        # Two decoupled streams: one for the workload samples, one for
        # the trial draws (historical defaults 0/1 when unseeded).
        seeds = (
            spawn_seeds(config.seed, 2) if config.seed is not None else [0, 1]
        )
        pdn = build_stacked_pdn(
            config.n_layers,
            converters_per_core=converters,
            grid_nodes=config.grid_nodes,
        )
        profiler = NoiseProfiler(pdn, sample_suite(ProcessorSpec(), rng=seeds[0]))
        profiles = profiler.compare_policies(trials=trials, rng=seeds[1])
        lines = [
            f"V-S PDN, {config.n_layers} layers, {converters} conv/core, "
            f"{trials} sampled operating points per policy"
        ]
        data = {}
        for policy, profile in profiles.items():
            lines.append(
                f"  {policy:>9}: mean {profile.mean:.2%}  P95 "
                f"{profile.percentile(95):.2%}  worst {profile.worst:.2%} of Vdd"
            )
            data[policy] = {
                "mean": profile.mean,
                "p95": profile.percentile(95),
                "worst": profile.worst,
            }
        return ExperimentResult(
            name=self.name,
            table="\n".join(lines),
            data={"policies": data},
            raw=profiles,
        )


class ReportExperiment(Experiment):
    name = "report"
    description = "Run everything; emit a consolidated report"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)
        parser.add_argument(
            "--output", type=str, default=None,
            help="write to a file instead of stdout",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["output"] = getattr(args, "output", None)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.core.report import generate_report

        config = config or ExperimentConfig()
        text = generate_report(grid_nodes=config.grid_nodes)
        output = config.option("output")
        if output:
            import pathlib

            pathlib.Path(output).write_text(text)
            return ExperimentResult(
                name=self.name, table=f"wrote {output}", raw=text
            )
        return ExperimentResult(name=self.name, table=text, raw=text)
