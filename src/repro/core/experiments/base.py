"""The unified Experiment protocol behind every paper reproduction.

Each figure/table driver is an :class:`Experiment`: it has a CLI
``name``, a one-line ``description``, declares its own command-line
arguments (:meth:`Experiment.configure_parser`), and turns an
:class:`ExperimentConfig` into an :class:`ExperimentResult` that renders
to text (:meth:`ExperimentResult.to_table`) or machine-readable JSON
(:meth:`ExperimentResult.to_json`).  Registering a subclass with
:func:`register` makes it show up in ``python -m repro`` automatically —
the CLI is generated from this registry, not hand-written per figure.

The per-figure ``compute_fig*`` functions are the engine-backed
implementations the Experiment classes run; the pre-registry
``run_fig*`` shims have been removed — use ``repro <subcommand>``.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
    "typed_int",
    "typed_float",
    "add_grid_argument",
    "add_layers_argument",
    "add_seed_argument",
    "add_supervision_arguments",
    "add_observability_arguments",
    "apply_common_args",
    "configure_observability",
    "supervision_from_args",
    "resolve_engine",
    "outcome_degraded",
    "degraded_notes",
]


@dataclass
class ExperimentConfig:
    """Common knobs every experiment understands, plus free-form options.

    ``options`` carries experiment-specific settings (CSV paths, failure
    fractions, sample counts, ...) so the dataclass does not grow a
    field per figure.
    """

    grid_nodes: int = 20
    n_layers: int = 8
    seed: Optional[int] = None
    #: Process fan-out width for engine-backed experiments (None =
    #: the REPRO_SWEEP_WORKERS environment default).
    workers: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)


@dataclass
class ExperimentResult:
    """What an experiment produced, in renderable form.

    ``table`` is the human-readable text (exactly what the CLI prints),
    ``data`` the JSON-serialisable payload, ``raw`` the underlying
    result object for programmatic use, and ``notes`` extra lines the
    CLI prints after the table (e.g. "wrote fig6.csv").
    """

    name: str
    table: str
    data: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None
    notes: List[str] = field(default_factory=list)

    def to_table(self) -> str:
        return self.table

    def to_json(self) -> str:
        return json.dumps(
            {"experiment": self.name, **self.data}, indent=2, sort_keys=True
        )


class Experiment(ABC):
    """One reproducible experiment of the paper's evaluation."""

    #: CLI subcommand name (unique within the registry).
    name: str = ""
    #: One-line summary shown in ``python -m repro --help``.
    description: str = ""

    def describe(self) -> str:
        return self.description

    # ------------------------------------------------------------------
    @classmethod
    def configure_parser(cls, parser) -> None:
        """Declare this experiment's CLI arguments (default: none)."""

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        """Map a parsed argparse namespace onto an ExperimentConfig."""
        config = ExperimentConfig(
            grid_nodes=getattr(args, "grid", 20),
            n_layers=getattr(args, "layers", 8),
            seed=getattr(args, "seed", None),
        )
        apply_common_args(config, args)
        return config

    # ------------------------------------------------------------------
    @abstractmethod
    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        """Execute the experiment and return its renderable result."""


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding an Experiment to the CLI registry."""
    if not issubclass(cls, Experiment):
        raise TypeError(f"{cls!r} is not an Experiment subclass")
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate experiment name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_experiment(name: str) -> type:
    """Look an Experiment class up by its CLI name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> Dict[str, type]:
    """All registered experiments, in registration order."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Typed argparse converters
# ----------------------------------------------------------------------
# argparse swallows ValueError/TypeError/ArgumentTypeError into its own
# "invalid value" wall of usage text.  These converters raise ReproError
# (a RuntimeError) instead, which propagates out of ``parse_args`` so the
# CLI can print a single-line diagnostic and exit 2 — no traceback.

def typed_int(
    flag: str, minimum: Optional[int] = None
) -> Callable[[str], int]:
    """An int converter for ``flag`` raising one-line ReproErrors."""

    def convert(text: str) -> int:
        try:
            value = int(text)
        except (TypeError, ValueError):
            raise ReproError(
                f"{flag} expects an integer, got {text!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise ReproError(f"{flag} must be >= {minimum}, got {value}")
        return value

    convert.__name__ = "int"  # keeps argparse metavar/help readable
    return convert


def typed_float(
    flag: str,
    minimum: Optional[float] = None,
    exclusive: bool = False,
) -> Callable[[str], float]:
    """A finite-float converter for ``flag`` raising one-line ReproErrors."""

    def convert(text: str) -> float:
        try:
            value = float(text)
        except (TypeError, ValueError):
            raise ReproError(
                f"{flag} expects a number, got {text!r}"
            ) from None
        if value != value or value in (float("inf"), float("-inf")):
            raise ReproError(f"{flag} must be finite, got {text!r}")
        if minimum is not None:
            if exclusive and value <= minimum:
                raise ReproError(f"{flag} must be > {minimum}, got {value}")
            if not exclusive and value < minimum:
                raise ReproError(f"{flag} must be >= {minimum}, got {value}")
        return value

    convert.__name__ = "float"
    return convert


# Shared argparse helpers so every experiment words its flags the same.
def add_grid_argument(parser, default: int = 20) -> None:
    parser.add_argument(
        "--grid", type=typed_int("--grid", minimum=2), default=default,
        help=f"model-grid nodes per die side (default {default})",
    )


def add_layers_argument(parser, default: int = 8, help_text: str = "stacked layer count") -> None:
    parser.add_argument(
        "--layers", type=typed_int("--layers", minimum=1), default=default,
        help=help_text,
    )


def add_seed_argument(parser) -> None:
    parser.add_argument(
        "--seed", type=typed_int("--seed"), default=None,
        help="RNG seed (default: the repo-wide deterministic seed)",
    )


def add_supervision_arguments(parser) -> None:
    """The run-supervision flag group shared by every subcommand."""
    group = parser.add_argument_group(
        "run supervision",
        "checkpoint/resume, retry and quarantine for long sweeps "
        "(see docs/RUNTIME.md)",
    )
    group.add_argument(
        "--run-dir", type=str, default=None, metavar="DIR",
        help="journal completed work into DIR (enables crash-safe resume)",
    )
    group.add_argument(
        "--resume", type=str, default=None, metavar="RUN_DIR",
        help="resume an interrupted run from its journal directory",
    )
    group.add_argument(
        "--resume-salvage", action="store_true",
        help="with --resume: truncate the journal at its first corrupted "
        "record (logged) instead of refusing to resume",
    )
    group.add_argument(
        "--max-retries", type=typed_int("--max-retries", minimum=0),
        default=None, metavar="N",
        help="retries per topology task before quarantine (default 2)",
    )
    group.add_argument(
        "--task-timeout",
        type=typed_float("--task-timeout", minimum=0.0, exclusive=True),
        default=None, metavar="SECONDS",
        help="per-task deadline; hung workers are killed and retried",
    )
    group.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first task failure instead of retrying",
    )
    group.add_argument(
        "--workers", type=typed_int("--workers", minimum=1), default=None,
        metavar="N",
        help="process fan-out width (default: REPRO_SWEEP_WORKERS or 1)",
    )
    group.add_argument(
        "--fleet", type=str, default=None, metavar="HOST:PORT",
        help="lease tasks to 'repro worker' processes via a coordinator "
        "bound here (port 0 picks one; see docs/DISTRIBUTED.md); with no "
        "workers attached the run degrades to in-process execution",
    )
    group.add_argument(
        "--lease-timeout",
        type=typed_float("--lease-timeout", minimum=0.0, exclusive=True),
        default=None, metavar="SECONDS",
        help="per-lease deadline before a fleet task is reassigned "
        "(default 60)",
    )
    group.add_argument(
        "--fleet-wait",
        type=typed_float("--fleet-wait", minimum=0.0),
        default=None, metavar="SECONDS",
        help="grace window to wait for fleet workers before degrading to "
        "in-process execution (default 10)",
    )


def add_solver_arguments(parser) -> None:
    """The solver-backend flag group shared by every subcommand."""
    group = parser.add_argument_group(
        "solver backend",
        "linear-solver backend selection (see docs/SOLVERS.md)",
    )
    group.add_argument(
        "--solver", type=str, default=None, metavar="BACKEND",
        help="solver backend: lu (default), cholesky, or iterative "
        "(also via REPRO_SOLVER; unknown names are a one-line error)",
    )


def configure_solver(args) -> None:
    """Apply --solver as the process-default backend (validated).

    An unknown name raises :class:`repro.errors.SolverBackendError`,
    which the CLI reports as a one-line message — never a traceback.
    """
    name = getattr(args, "solver", None)
    if name is not None:
        from repro.grid.backends import set_default_backend

        set_default_backend(name)


def add_observability_arguments(parser) -> None:
    """The tracing/logging flag group shared by every subcommand."""
    group = parser.add_argument_group(
        "observability",
        "hierarchical tracing and structured logging "
        "(see docs/OBSERVABILITY.md)",
    )
    group.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="DIR",
        help="record hierarchical spans; flush trace-<fingerprint>.jsonl "
        "to DIR (default: --run-dir, REPRO_TRACE_DIR, or the cwd)",
    )
    group.add_argument(
        "--log-level", type=str, default=None, metavar="LEVEL",
        choices=["debug", "info", "warning", "error"],
        help="structured JSON log threshold (also via REPRO_LOG)",
    )


def configure_observability(args) -> None:
    """Apply --trace / --log-level (idempotent, cheap when absent)."""
    level = getattr(args, "log_level", None)
    if level is not None:
        from repro.obs.logs import configure_logging

        configure_logging(level)
    trace = getattr(args, "trace", None)
    if trace is not None:
        from repro.obs.trace import configure

        trace_dir = trace or getattr(args, "run_dir", None) or getattr(
            args, "resume", None
        )
        configure(enabled=True, trace_dir=trace_dir or None)


def supervision_from_args(args) -> Optional[Any]:
    """Build a SupervisorConfig when any supervision flag was used."""
    resume = getattr(args, "resume", None)
    run_dir = getattr(args, "run_dir", None) or resume
    max_retries = getattr(args, "max_retries", None)
    task_timeout = getattr(args, "task_timeout", None)
    fail_fast = bool(getattr(args, "fail_fast", False))
    fleet = getattr(args, "fleet", None)
    lease_timeout = getattr(args, "lease_timeout", None)
    fleet_wait = getattr(args, "fleet_wait", None)
    if (
        run_dir is None
        and max_retries is None
        and task_timeout is None
        and not fail_fast
        and fleet is None
    ):
        return None
    from repro.runtime import SupervisorConfig

    config = SupervisorConfig(
        max_retries=2 if max_retries is None else max_retries,
        task_timeout=task_timeout,
        fail_fast=fail_fast,
        run_dir=run_dir,
        resume=resume is not None,
        salvage=bool(getattr(args, "resume_salvage", False)),
        fleet=fleet,
        workers=getattr(args, "workers", None),
        verbose=True,
    )
    if lease_timeout is not None:
        config.lease_timeout_s = lease_timeout
    if fleet_wait is not None:
        config.fleet_wait_s = fleet_wait
    return config


def apply_common_args(config: ExperimentConfig, args) -> ExperimentConfig:
    """Fold the shared CLI flags (workers, supervision) into a config."""
    workers = getattr(args, "workers", None)
    if workers is not None:
        config.workers = workers
    supervision = supervision_from_args(args)
    if supervision is not None:
        config.options["supervision"] = supervision
    return config


def outcome_degraded(outcome) -> bool:
    """True when a sweep outcome's result is flagged degraded.

    A degraded result came from a fallback/pruned solve or carries
    recorded physics-contract violations (see docs/CONTRACTS.md); its
    numbers are best-effort, not converged ground truth.  Extractors
    call this so the flag rides along with the extracted value even
    when extraction happens in a worker process.
    """
    result = getattr(outcome, "result", None)
    return bool(result is not None and getattr(result, "degraded", False))


def degraded_notes(count: int) -> List[str]:
    """The CLI warning lines for ``count`` degraded sweep points."""
    if not count:
        return []
    return [
        f"warning: {count} degraded/unconverged point(s) — values there are "
        "best-effort, not converged ground truth (see docs/CONTRACTS.md)"
    ]


def resolve_engine(config: ExperimentConfig):
    """The engine an experiment should run on, honouring supervision.

    Precedence: an explicit ``options["engine"]`` wins (wrapped in a
    supervisor when ``options["supervision"]`` is also set); otherwise a
    fresh engine is built — supervised when requested, plain otherwise.
    """
    from repro.runtime import RunSupervisor, SweepEngine

    engine = config.option("engine")
    supervision = config.option("supervision")
    if isinstance(engine, RunSupervisor):
        return engine
    if supervision is not None:
        inner = engine or SweepEngine(workers=config.workers)
        return RunSupervisor(engine=inner, config=supervision)
    return engine or SweepEngine(workers=config.workers)
