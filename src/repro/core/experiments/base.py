"""The unified Experiment protocol behind every paper reproduction.

Each figure/table driver is an :class:`Experiment`: it has a CLI
``name``, a one-line ``description``, declares its own command-line
arguments (:meth:`Experiment.configure_parser`), and turns an
:class:`ExperimentConfig` into an :class:`ExperimentResult` that renders
to text (:meth:`ExperimentResult.to_table`) or machine-readable JSON
(:meth:`ExperimentResult.to_json`).  Registering a subclass with
:func:`register` makes it show up in ``python -m repro`` automatically —
the CLI is generated from this registry, not hand-written per figure.

The historical per-figure functions (``run_fig5a`` and friends) remain
as thin deprecated shims over these classes.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
]


@dataclass
class ExperimentConfig:
    """Common knobs every experiment understands, plus free-form options.

    ``options`` carries experiment-specific settings (CSV paths, failure
    fractions, sample counts, ...) so the dataclass does not grow a
    field per figure.
    """

    grid_nodes: int = 20
    n_layers: int = 8
    seed: Optional[int] = None
    #: Process fan-out width for engine-backed experiments (None =
    #: the REPRO_SWEEP_WORKERS environment default).
    workers: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)


@dataclass
class ExperimentResult:
    """What an experiment produced, in renderable form.

    ``table`` is the human-readable text (exactly what the CLI prints),
    ``data`` the JSON-serialisable payload, ``raw`` the underlying
    result object for programmatic use, and ``notes`` extra lines the
    CLI prints after the table (e.g. "wrote fig6.csv").
    """

    name: str
    table: str
    data: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None
    notes: List[str] = field(default_factory=list)

    def to_table(self) -> str:
        return self.table

    def to_json(self) -> str:
        return json.dumps(
            {"experiment": self.name, **self.data}, indent=2, sort_keys=True
        )


class Experiment(ABC):
    """One reproducible experiment of the paper's evaluation."""

    #: CLI subcommand name (unique within the registry).
    name: str = ""
    #: One-line summary shown in ``python -m repro --help``.
    description: str = ""

    def describe(self) -> str:
        return self.description

    # ------------------------------------------------------------------
    @classmethod
    def configure_parser(cls, parser) -> None:
        """Declare this experiment's CLI arguments (default: none)."""

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        """Map a parsed argparse namespace onto an ExperimentConfig."""
        return ExperimentConfig(
            grid_nodes=getattr(args, "grid", 20),
            n_layers=getattr(args, "layers", 8),
            seed=getattr(args, "seed", None),
        )

    # ------------------------------------------------------------------
    @abstractmethod
    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        """Execute the experiment and return its renderable result."""


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding an Experiment to the CLI registry."""
    if not issubclass(cls, Experiment):
        raise TypeError(f"{cls!r} is not an Experiment subclass")
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate experiment name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_experiment(name: str) -> type:
    """Look an Experiment class up by its CLI name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> Dict[str, type]:
    """All registered experiments, in registration order."""
    return dict(_REGISTRY)


# Shared argparse helpers so every experiment words its flags the same.
def add_grid_argument(parser, default: int = 20) -> None:
    parser.add_argument(
        "--grid", type=int, default=default,
        help=f"model-grid nodes per die side (default {default})",
    )


def add_layers_argument(parser, default: int = 8, help_text: str = "stacked layer count") -> None:
    parser.add_argument("--layers", type=int, default=default, help=help_text)


def add_seed_argument(parser) -> None:
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (default: the repo-wide deterministic seed)",
    )
