"""``repro worker``: join a distributed sweep fleet.

The worker dials a coordinator started by any sweep subcommand running
with ``--fleet HOST:PORT``, leases content-fingerprinted topology tasks,
solves them with the exact same worker entry point the in-process pool
uses, and streams results (plus trace spans) back.  It exits cleanly
when the coordinator reports the run complete; see docs/DISTRIBUTED.md
for the protocol and failure semantics.
"""

from __future__ import annotations

from typing import Optional

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    typed_float,
)

__all__ = ["WorkerExperiment"]


class WorkerExperiment(Experiment):
    name = "worker"
    description = "Join a sweep fleet: lease topology tasks from a coordinator"

    @classmethod
    def configure_parser(cls, parser) -> None:
        parser.add_argument(
            "connect", type=str, metavar="HOST:PORT",
            help="coordinator address (the sweep's --fleet HOST:PORT; with "
            "port 0 the bound port is in the run dir's fleet.json)",
        )
        parser.add_argument(
            "--worker-id", type=str, default=None, metavar="ID",
            help="stable worker identity (default: hostname-pid); reuse it "
            "to keep accounting across reconnects",
        )
        parser.add_argument(
            "--patience",
            type=typed_float("--patience", minimum=0.0, exclusive=True),
            default=30.0, metavar="SECONDS",
            help="how long to keep redialing an unreachable coordinator "
            "before giving up (default 30)",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["connect"] = args.connect
        config.options["worker_id"] = getattr(args, "worker_id", None)
        config.options["patience"] = getattr(args, "patience", 30.0)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.runtime.fleet import run_worker

        config = config or ExperimentConfig()
        summary = run_worker(
            str(config.option("connect") or ""),
            worker_id=config.option("worker_id"),
            patience_s=float(config.option("patience", 30.0)),
        )
        table = (
            f"worker {summary['worker']}: {summary['tasks_done']} task(s) "
            f"done, {summary['failures']} failure(s), "
            f"{summary['reconnects']} reconnect(s) "
            f"(run {summary.get('run_fingerprint') or 'unknown'})"
        )
        return ExperimentResult(name=self.name, table=table, data=summary)
