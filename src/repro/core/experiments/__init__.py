"""One driver per figure/table of the paper's evaluation.

=============  ==========================================================
Module         Reproduces
=============  ==========================================================
``fig3``       SC compact-model validation vs transient circuit sim
``fig5``       EM-damage-free lifetime of TSV (5a) and C4 (5b) arrays
``fig6``       Max on-chip IR drop vs workload imbalance (8 layers)
``fig7``       PARSEC power-sample distributions (box plot)
``fig8``       System power efficiency vs workload imbalance
``tables``     Tables 1 (parameters) and 2 (TSV topologies)
``headline``   The abstract's headline claims in one report
``contingency``  N-k failure robustness of both arrangements (new)
``tools``      Explorer / sensitivity / noise / report CLI wrappers
``traceview``  Profiler over flushed run traces (``repro trace``)
``worker``     Fleet worker joining a ``--fleet`` coordinator (new)
``service``    Exploration service: ``repro serve`` / ``repro query`` (new)
``dash``       Fleet-wide service dashboard (``repro dash``) (new)
=============  ==========================================================

Every driver is an :class:`repro.core.experiments.base.Experiment`
registered here in CLI order — ``python -m repro``'s subcommands are
generated from this registry.  Reproduce a figure with ``repro
<subcommand>``; programmatic callers use the ``compute_fig*`` functions
(the engine-backed implementations the Experiment classes run) or the
classes themselves.  The pre-registry ``run_fig*`` shims are gone.
"""

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
)
from repro.core.experiments.contingency import (
    ContingencyExperiment,
    ContingencyPoint,
    ContingencyResult,
    run_contingency,
)
from repro.core.experiments.fig3 import Fig3Experiment, Fig3Result, compute_fig3
from repro.core.experiments.fig5 import (
    Fig5aExperiment,
    Fig5aResult,
    Fig5bExperiment,
    Fig5bResult,
    compute_fig5a,
    compute_fig5b,
)
from repro.core.experiments.fig6 import Fig6Experiment, Fig6Result, compute_fig6
from repro.core.experiments.fig7 import Fig7Experiment, Fig7Result, compute_fig7
from repro.core.experiments.fig8 import Fig8Experiment, Fig8Result, compute_fig8
from repro.core.experiments.tables import (
    Table1Experiment,
    Table2Experiment,
    table1_report,
    table2_report,
)
from repro.core.experiments.headline import (
    HeadlineExperiment,
    HeadlineReport,
    run_headline,
)
from repro.core.experiments.tools import (
    ExploreExperiment,
    NoiseExperiment,
    ReportExperiment,
    SensitivityExperiment,
)
from repro.core.experiments.dash import DashExperiment
from repro.core.experiments.service import (
    CacheExperiment,
    QueryExperiment,
    ServeExperiment,
)
from repro.core.experiments.traceview import TraceExperiment
from repro.core.experiments.worker import WorkerExperiment

# Registration order defines CLI subcommand order.
for _cls in (
    Table1Experiment,
    Table2Experiment,
    Fig3Experiment,
    Fig5aExperiment,
    Fig5bExperiment,
    Fig6Experiment,
    Fig7Experiment,
    Fig8Experiment,
    HeadlineExperiment,
    ExploreExperiment,
    SensitivityExperiment,
    NoiseExperiment,
    ContingencyExperiment,
    ReportExperiment,
    TraceExperiment,
    WorkerExperiment,
    ServeExperiment,
    QueryExperiment,
    CacheExperiment,
    DashExperiment,
):
    register(_cls)
del _cls

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
    "ContingencyExperiment",
    "ContingencyPoint",
    "ContingencyResult",
    "run_contingency",
    "Fig3Experiment",
    "Fig3Result",
    "compute_fig3",
    "Fig5aExperiment",
    "Fig5aResult",
    "Fig5bExperiment",
    "Fig5bResult",
    "compute_fig5a",
    "compute_fig5b",
    "Fig6Experiment",
    "Fig6Result",
    "compute_fig6",
    "Fig7Experiment",
    "Fig7Result",
    "compute_fig7",
    "Fig8Experiment",
    "Fig8Result",
    "compute_fig8",
    "Table1Experiment",
    "Table2Experiment",
    "table1_report",
    "table2_report",
    "HeadlineExperiment",
    "HeadlineReport",
    "run_headline",
    "ExploreExperiment",
    "SensitivityExperiment",
    "NoiseExperiment",
    "ReportExperiment",
    "TraceExperiment",
    "WorkerExperiment",
    "ServeExperiment",
    "QueryExperiment",
    "CacheExperiment",
    "DashExperiment",
]
