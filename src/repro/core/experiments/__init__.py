"""One driver per figure/table of the paper's evaluation.

=============  ==========================================================
Module         Reproduces
=============  ==========================================================
``fig3``       SC compact-model validation vs transient circuit sim
``fig5``       EM-damage-free lifetime of TSV (5a) and C4 (5b) arrays
``fig6``       Max on-chip IR drop vs workload imbalance (8 layers)
``fig7``       PARSEC power-sample distributions (box plot)
``fig8``       System power efficiency vs workload imbalance
``tables``     Tables 1 (parameters) and 2 (TSV topologies)
``headline``   The abstract's headline claims in one report
``contingency``  N-k failure robustness of both arrangements (new)
=============  ==========================================================
"""

from repro.core.experiments.contingency import (
    ContingencyPoint,
    ContingencyResult,
    run_contingency,
)
from repro.core.experiments.fig3 import Fig3Result, run_fig3
from repro.core.experiments.fig5 import Fig5aResult, Fig5bResult, run_fig5a, run_fig5b
from repro.core.experiments.fig6 import Fig6Result, run_fig6
from repro.core.experiments.fig7 import Fig7Result, run_fig7
from repro.core.experiments.fig8 import Fig8Result, run_fig8
from repro.core.experiments.tables import table1_report, table2_report
from repro.core.experiments.headline import HeadlineReport, run_headline

__all__ = [
    "ContingencyPoint",
    "ContingencyResult",
    "run_contingency",
    "Fig3Result",
    "run_fig3",
    "Fig5aResult",
    "Fig5bResult",
    "run_fig5a",
    "run_fig5b",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "table1_report",
    "table2_report",
    "HeadlineReport",
    "run_headline",
]
