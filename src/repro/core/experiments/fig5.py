"""Fig. 5 — EM-damage-free lifetime of the TSV and C4 pad arrays.

Both panels sweep the layer count (2, 4, 6, 8) at peak power (all layers
fully active — the EM stress condition) and report the expected
EM-damage-free lifetime normalised to the 2-layer V-S PDN:

* Fig. 5a: the power-TSV array.  Regular PDN with the Dense / Sparse /
  Few topologies vs the V-S PDN (Few topology, 32 Vdd pads per core
  feeding through-via stacks).
* Fig. 5b: the power-C4 array.  Regular PDN with 25/50/75/100% of pad
  sites used for power vs the V-S PDN at 25%.  The C4 array's stress is
  insensitive to the TSV topology, so a single (Few) topology is used.

Both sweeps run on the :class:`repro.runtime.engine.SweepEngine`: each
distinct topology is built and factorised once and shared with any
other experiment using the same engine (the headline report reuses one
engine across Figs. 5a/5b/6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.config.technology import EMParameters, default_em
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_grid_argument,
    degraded_notes,
    outcome_degraded,
    resolve_engine,
)
from repro.core.scenarios import VS_VDD_PADS_PER_CORE
from repro.em import (
    C4_CROSS_SECTION,
    TSV_CROSS_SECTION,
    expected_em_lifetime,
    median_lifetimes_from_currents,
)
from repro.pdn.results import PDNResult
from repro.runtime import PDNSpec, SweepEngine, SweepPoint

LayerSweep = Tuple[int, ...]
DEFAULT_LAYERS: LayerSweep = (2, 4, 6, 8)


def _tsv_array_lifetime(result: PDNResult, em: EMParameters) -> float:
    """Array lifetime over all TSV conductors (tiers + through-vias)."""
    currents = [result.conductor_currents("tsv")]
    if result.has_group_prefix("tvia"):
        currents.append(result.conductor_currents("tvia"))
    medians = median_lifetimes_from_currents(
        np.concatenate(currents), TSV_CROSS_SECTION, em
    )
    return expected_em_lifetime(medians, em)


def _c4_array_lifetime(result: PDNResult, em: EMParameters) -> float:
    """Array lifetime over all power C4 pads."""
    medians = median_lifetimes_from_currents(
        result.conductor_currents("c4"), C4_CROSS_SECTION, em
    )
    return expected_em_lifetime(medians, em)


# Module-level extractors so sweeps stay picklable for process fan-out.
# Each returns ``(value, degraded)`` so the contract/convergence flag
# survives the trip back from worker processes.
def _extract_tsv_lifetime(outcome, em: EMParameters) -> Tuple[float, bool]:
    return _tsv_array_lifetime(outcome.unwrap(), em), outcome_degraded(outcome)


def _extract_c4_lifetime(outcome, em: EMParameters) -> Tuple[float, bool]:
    return _c4_array_lifetime(outcome.unwrap(), em), outcome_degraded(outcome)


@dataclass(frozen=True)
class Fig5aResult:
    """Normalised TSV-array lifetimes per design and layer count."""

    layers: LayerSweep
    #: Series name -> lifetime per layer count, normalised to 2-layer V-S.
    series: Dict[str, List[float]]
    #: Sweep points whose solve was flagged degraded/unconverged.
    degraded_points: int = 0

    def improvement_at(self, n_layers: int, baseline: str = "Reg. PDN, Few TSV") -> float:
        """V-S / regular lifetime ratio at a layer count."""
        idx = self.layers.index(n_layers)
        return self.series["V-S PDN, Few TSV"][idx] / self.series[baseline][idx]

    def regular_degradation(self, name: str = "Reg. PDN, Few TSV") -> float:
        """Fractional lifetime loss of a regular series from 2 to max layers."""
        values = self.series[name]
        return 1.0 - values[-1] / values[0]

    def format(self) -> str:
        headers = ["design"] + [f"{n} layers" for n in self.layers]
        rows = [[name] + values for name, values in self.series.items()]
        return format_table(
            headers, rows,
            title="Fig. 5a: normalised TSV EM-damage-free MTTF (vs 2-layer V-S)",
        )


@dataclass(frozen=True)
class Fig5bResult:
    """Normalised C4-array lifetimes per design and layer count."""

    layers: LayerSweep
    series: Dict[str, List[float]]
    #: Sweep points whose solve was flagged degraded/unconverged.
    degraded_points: int = 0

    def improvement_at(self, n_layers: int, baseline: str = "Reg. PDN (25% Power C4)") -> float:
        idx = self.layers.index(n_layers)
        return self.series["V-S PDN (25% Power C4)"][idx] / self.series[baseline][idx]

    def format(self) -> str:
        headers = ["design"] + [f"{n} layers" for n in self.layers]
        rows = [[name] + values for name, values in self.series.items()]
        return format_table(
            headers, rows,
            title="Fig. 5b: normalised C4 EM-damage-free MTTF (vs 2-layer V-S)",
        )


def _normalised_series(
    layers: LayerSweep,
    named_specs: List[Tuple[str, PDNSpec]],
    extract,
    vs_name: str,
    engine: SweepEngine,
) -> Tuple[Dict[str, List[float]], int]:
    """Sweep all specs in one engine run and normalise to 2-layer V-S.

    Returns the normalised series plus the degraded-point count.
    """
    points = [SweepPoint(spec=spec, tag=name) for name, spec in named_specs]
    flagged = engine.run(points, extract=extract).values
    degraded = sum(1 for _, flag in flagged if flag)
    raw: Dict[str, List[float]] = {}
    for (name, _), (value, _) in zip(named_specs, flagged):
        raw.setdefault(name, []).append(value)
    reference = raw[vs_name][layers.index(2)] if 2 in layers else raw[vs_name][0]
    series = {k: [v / reference for v in vals] for k, vals in raw.items()}
    return series, degraded


def compute_fig5a(
    layers: LayerSweep = DEFAULT_LAYERS,
    grid_nodes: int = 20,
    em: Optional[EMParameters] = None,
    engine: Optional[SweepEngine] = None,
) -> Fig5aResult:
    """Reproduce Fig. 5a (TSV array lifetimes).

    The engine-backed implementation behind :class:`Fig5aExperiment`.
    """
    em = em or default_em()
    engine = engine or SweepEngine()
    layers = tuple(layers)
    named_specs: List[Tuple[str, PDNSpec]] = []
    for topology in ("Dense", "Sparse", "Few"):
        name = f"Reg. PDN, {topology} TSV"
        for n in layers:
            named_specs.append(
                (name, PDNSpec.regular(n, topology=topology, grid_nodes=grid_nodes))
            )
    vs_name = "V-S PDN, Few TSV"
    for n in layers:
        named_specs.append(
            (
                vs_name,
                PDNSpec.stacked(
                    n,
                    topology="Few",
                    vdd_pads_per_core=VS_VDD_PADS_PER_CORE,
                    grid_nodes=grid_nodes,
                ),
            )
        )
    series, degraded = _normalised_series(
        layers, named_specs, partial(_extract_tsv_lifetime, em=em), vs_name, engine
    )
    return Fig5aResult(layers=layers, series=series, degraded_points=degraded)


def compute_fig5b(
    layers: LayerSweep = DEFAULT_LAYERS,
    pad_fractions: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    grid_nodes: int = 20,
    em: Optional[EMParameters] = None,
    engine: Optional[SweepEngine] = None,
) -> Fig5bResult:
    """Reproduce Fig. 5b (C4 pad array lifetimes).

    The engine-backed implementation behind :class:`Fig5bExperiment`.
    """
    em = em or default_em()
    engine = engine or SweepEngine()
    layers = tuple(layers)
    named_specs: List[Tuple[str, PDNSpec]] = []
    for fraction in pad_fractions:
        name = f"Reg. PDN ({int(round(fraction * 100))}% Power C4)"
        for n in layers:
            named_specs.append(
                (
                    name,
                    PDNSpec.regular(
                        n,
                        topology="Few",
                        power_pad_fraction=fraction,
                        grid_nodes=grid_nodes,
                    ),
                )
            )
    vs_name = "V-S PDN (25% Power C4)"
    for n in layers:
        named_specs.append(
            (
                vs_name,
                PDNSpec.stacked(
                    n, topology="Few", power_pad_fraction=0.25, grid_nodes=grid_nodes
                ),
            )
        )
    series, degraded = _normalised_series(
        layers, named_specs, partial(_extract_c4_lifetime, em=em), vs_name, engine
    )
    return Fig5bResult(layers=layers, series=series, degraded_points=degraded)


class Fig5aExperiment(Experiment):
    name = "fig5a"
    description = "Fig. 5a: TSV array EM lifetime"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        result = compute_fig5a(
            grid_nodes=config.grid_nodes,
            engine=resolve_engine(config),
        )
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "layers": list(result.layers),
                "series": result.series,
                "degraded_points": result.degraded_points,
            },
            raw=result,
            notes=degraded_notes(result.degraded_points),
        )


class Fig5bExperiment(Experiment):
    name = "fig5b"
    description = "Fig. 5b: C4 array EM lifetime"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        result = compute_fig5b(
            grid_nodes=config.grid_nodes,
            engine=resolve_engine(config),
        )
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "layers": list(result.layers),
                "series": result.series,
                "degraded_points": result.degraded_points,
            },
            raw=result,
            notes=degraded_notes(result.degraded_points),
        )
