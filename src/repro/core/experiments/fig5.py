"""Fig. 5 — EM-damage-free lifetime of the TSV and C4 pad arrays.

Both panels sweep the layer count (2, 4, 6, 8) at peak power (all layers
fully active — the EM stress condition) and report the expected
EM-damage-free lifetime normalised to the 2-layer V-S PDN:

* Fig. 5a: the power-TSV array.  Regular PDN with the Dense / Sparse /
  Few topologies vs the V-S PDN (Few topology, 32 Vdd pads per core
  feeding through-via stacks).
* Fig. 5b: the power-C4 array.  Regular PDN with 25/50/75/100% of pad
  sites used for power vs the V-S PDN at 25%.  The C4 array's stress is
  insensitive to the TSV topology, so a single (Few) topology is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.config.technology import EMParameters, default_em
from repro.core.scenarios import (
    VS_VDD_PADS_PER_CORE,
    build_regular_pdn,
    build_stacked_pdn,
)
from repro.em import (
    C4_CROSS_SECTION,
    TSV_CROSS_SECTION,
    expected_em_lifetime,
    median_lifetimes_from_currents,
)
from repro.pdn.results import PDNResult

LayerSweep = Tuple[int, ...]
DEFAULT_LAYERS: LayerSweep = (2, 4, 6, 8)


def _tsv_array_lifetime(result: PDNResult, em: EMParameters) -> float:
    """Array lifetime over all TSV conductors (tiers + through-vias)."""
    currents = [result.conductor_currents("tsv")]
    if result.has_group_prefix("tvia"):
        currents.append(result.conductor_currents("tvia"))
    medians = median_lifetimes_from_currents(
        np.concatenate(currents), TSV_CROSS_SECTION, em
    )
    return expected_em_lifetime(medians, em)


def _c4_array_lifetime(result: PDNResult, em: EMParameters) -> float:
    """Array lifetime over all power C4 pads."""
    medians = median_lifetimes_from_currents(
        result.conductor_currents("c4"), C4_CROSS_SECTION, em
    )
    return expected_em_lifetime(medians, em)


@dataclass(frozen=True)
class Fig5aResult:
    """Normalised TSV-array lifetimes per design and layer count."""

    layers: LayerSweep
    #: Series name -> lifetime per layer count, normalised to 2-layer V-S.
    series: Dict[str, List[float]]

    def improvement_at(self, n_layers: int, baseline: str = "Reg. PDN, Few TSV") -> float:
        """V-S / regular lifetime ratio at a layer count."""
        idx = self.layers.index(n_layers)
        return self.series["V-S PDN, Few TSV"][idx] / self.series[baseline][idx]

    def regular_degradation(self, name: str = "Reg. PDN, Few TSV") -> float:
        """Fractional lifetime loss of a regular series from 2 to max layers."""
        values = self.series[name]
        return 1.0 - values[-1] / values[0]

    def format(self) -> str:
        headers = ["design"] + [f"{n} layers" for n in self.layers]
        rows = [[name] + values for name, values in self.series.items()]
        return format_table(
            headers, rows,
            title="Fig. 5a: normalised TSV EM-damage-free MTTF (vs 2-layer V-S)",
        )


@dataclass(frozen=True)
class Fig5bResult:
    """Normalised C4-array lifetimes per design and layer count."""

    layers: LayerSweep
    series: Dict[str, List[float]]

    def improvement_at(self, n_layers: int, baseline: str = "Reg. PDN (25% Power C4)") -> float:
        idx = self.layers.index(n_layers)
        return self.series["V-S PDN (25% Power C4)"][idx] / self.series[baseline][idx]

    def format(self) -> str:
        headers = ["design"] + [f"{n} layers" for n in self.layers]
        rows = [[name] + values for name, values in self.series.items()]
        return format_table(
            headers, rows,
            title="Fig. 5b: normalised C4 EM-damage-free MTTF (vs 2-layer V-S)",
        )


def run_fig5a(
    layers: LayerSweep = DEFAULT_LAYERS,
    grid_nodes: int = 20,
    em: Optional[EMParameters] = None,
) -> Fig5aResult:
    """Reproduce Fig. 5a (TSV array lifetimes)."""
    em = em or default_em()
    raw: Dict[str, List[float]] = {}
    for topology in ("Dense", "Sparse", "Few"):
        name = f"Reg. PDN, {topology} TSV"
        raw[name] = []
        for n in layers:
            pdn = build_regular_pdn(n, topology=topology, grid_nodes=grid_nodes)
            raw[name].append(_tsv_array_lifetime(pdn.solve(), em))
    vs_name = "V-S PDN, Few TSV"
    raw[vs_name] = []
    for n in layers:
        pdn = build_stacked_pdn(
            n, topology="Few", vdd_pads_per_core=VS_VDD_PADS_PER_CORE,
            grid_nodes=grid_nodes,
        )
        raw[vs_name].append(_tsv_array_lifetime(pdn.solve(), em))
    reference = raw[vs_name][layers.index(2)] if 2 in layers else raw[vs_name][0]
    series = {k: [v / reference for v in vals] for k, vals in raw.items()}
    return Fig5aResult(layers=layers, series=series)


def run_fig5b(
    layers: LayerSweep = DEFAULT_LAYERS,
    pad_fractions: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    grid_nodes: int = 20,
    em: Optional[EMParameters] = None,
) -> Fig5bResult:
    """Reproduce Fig. 5b (C4 pad array lifetimes)."""
    em = em or default_em()
    raw: Dict[str, List[float]] = {}
    for fraction in pad_fractions:
        name = f"Reg. PDN ({int(round(fraction * 100))}% Power C4)"
        raw[name] = []
        for n in layers:
            pdn = build_regular_pdn(
                n, topology="Few", power_pad_fraction=fraction, grid_nodes=grid_nodes
            )
            raw[name].append(_c4_array_lifetime(pdn.solve(), em))
    vs_name = "V-S PDN (25% Power C4)"
    raw[vs_name] = []
    for n in layers:
        pdn = build_stacked_pdn(
            n, topology="Few", power_pad_fraction=0.25, grid_nodes=grid_nodes
        )
        raw[vs_name].append(_c4_array_lifetime(pdn.solve(), em))
    reference = raw[vs_name][layers.index(2)] if 2 in layers else raw[vs_name][0]
    series = {k: [v / reference for v in vals] for k, vals in raw.items()}
    return Fig5bResult(layers=layers, series=series)
