"""Fig. 3 — SC converter model validation.

Compares the compact model's power efficiency and output voltage drop
against the transient switched-capacitor circuit simulation, for both
frequency-control policies:

* Fig. 3a (closed-loop): load swept 1.6 -> 100 mA in octaves.
* Fig. 3b (open-loop, 50 MHz): load swept 10 -> 90 mA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
)
from repro.regulator.compact import SCCompactModel
from repro.regulator.control import ClosedLoopControl, ControlPolicy, OpenLoopControl
from repro.regulator.switchcap_sim import SwitchCapSimulator

#: Fig. 3a load points (A): 1.6 mA doubling to 100 mA.
CLOSED_LOOP_LOADS: Tuple[float, ...] = (1.6e-3, 3.1e-3, 6.3e-3, 12.5e-3, 25e-3, 50e-3, 100e-3)
#: Fig. 3b load points (A): 10 mA to 90 mA.
OPEN_LOOP_LOADS: Tuple[float, ...] = (10e-3, 30e-3, 50e-3, 70e-3, 90e-3)


@dataclass(frozen=True)
class ValidationPoint:
    """One load point of the model-vs-simulation comparison."""

    load_current: float
    switching_frequency: float
    efficiency_model: float
    efficiency_sim: float
    vdrop_model: float
    vdrop_sim: float

    @property
    def efficiency_error(self) -> float:
        """Absolute model-vs-sim efficiency gap (fraction of 1)."""
        return abs(self.efficiency_model - self.efficiency_sim)

    @property
    def vdrop_error(self) -> float:
        """Absolute droop gap (V)."""
        return abs(self.vdrop_model - self.vdrop_sim)


@dataclass(frozen=True)
class Fig3Result:
    """Validation sweeps for both control policies."""

    closed_loop: List[ValidationPoint]
    open_loop: List[ValidationPoint]

    def max_efficiency_error(self) -> float:
        points = self.closed_loop + self.open_loop
        return max(p.efficiency_error for p in points)

    def max_vdrop_error(self) -> float:
        points = self.closed_loop + self.open_loop
        return max(p.vdrop_error for p in points)

    def format(self) -> str:
        def rows(points):
            return [
                (
                    p.load_current * 1e3,
                    p.switching_frequency / 1e6,
                    p.efficiency_model * 100,
                    p.efficiency_sim * 100,
                    p.vdrop_model * 1e3,
                    p.vdrop_sim * 1e3,
                )
                for p in points
            ]

        headers = ["I_load (mA)", "fsw (MHz)", "eff model (%)", "eff sim (%)",
                   "Vdrop model (mV)", "Vdrop sim (mV)"]
        return "\n\n".join(
            [
                format_table(headers, rows(self.closed_loop),
                             title="Fig. 3a: closed-loop control"),
                format_table(headers, rows(self.open_loop),
                             title="Fig. 3b: open-loop control (50 MHz)"),
            ]
        )


def _sweep(
    loads,
    policy: ControlPolicy,
    model: SCCompactModel,
    sim: SwitchCapSimulator,
    v_top: float,
    v_bottom: float,
) -> List[ValidationPoint]:
    points = []
    for load in loads:
        fsw = policy.frequency(model.spec, load)
        op = model.operating_point(v_top, v_bottom, load, fsw=fsw)
        tr = sim.steady_state(load, v_top=v_top, v_bottom=v_bottom, fsw=fsw)
        points.append(
            ValidationPoint(
                load_current=load,
                switching_frequency=fsw,
                efficiency_model=op.efficiency,
                efficiency_sim=tr.efficiency,
                vdrop_model=op.voltage_drop,
                vdrop_sim=tr.voltage_drop,
            )
        )
    return points


def compute_fig3(
    spec: Optional[SCConverterSpec] = None,
    v_top: float = 2.0,
    v_bottom: float = 0.0,
) -> Fig3Result:
    """Run both validation sweeps on a 2-layer stack's converter."""
    spec = spec or default_sc_spec()
    model = SCCompactModel(spec)
    sim = SwitchCapSimulator(spec)
    return Fig3Result(
        closed_loop=_sweep(CLOSED_LOOP_LOADS, ClosedLoopControl(), model, sim, v_top, v_bottom),
        open_loop=_sweep(OPEN_LOOP_LOADS, OpenLoopControl(), model, sim, v_top, v_bottom),
    )


class Fig3Experiment(Experiment):
    name = "fig3"
    description = "Fig. 3: SC converter model validation"

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        result = compute_fig3()
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "max_efficiency_error": result.max_efficiency_error(),
                "max_vdrop_error": result.max_vdrop_error(),
            },
            raw=result,
        )
