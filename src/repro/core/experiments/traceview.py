"""``repro trace``: profile a finished run from its flushed trace.

Loads the ``trace-<fingerprint>.jsonl`` a traced run wrote (see
docs/OBSERVABILITY.md), reassembles the span tree across process
boundaries, and prints the profiling report: a flamegraph-style
self/total-time table, the top-N slowest topology groups, and
retry / escalation-ladder / contract-violation attribution.

A directory holding *several* traces is stitched into one view: a
distributed service query scatters its spans across files — the client
flushes ``trace-<trace_id>.jsonl``, each replica its
``trace-<replica>.jsonl``, fleet workers their own — all sharing one
trace id.  Spans are deduplicated by id (a span adopted over a remote
anchor can be flushed by more than one process) and the client→replica
TCP hops are labelled in the report.  ``--run FINGERPRINT`` still
narrows to a single run's trace.

When the trace lives next to a ``BENCH_*.json`` (same run directory),
the report also cross-checks the span-derived stage totals against the
BENCH ``stage_totals`` — by construction they are the same measurements,
so any drift beyond rounding indicates a broken trace.

``--chrome`` additionally converts the trace to Chrome ``trace_event``
JSON (load it at ``chrome://tracing`` or https://ui.perfetto.dev), and
``--prometheus`` renders the span-derived metrics as a Prometheus
textfile.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    typed_int,
)
from repro.errors import TraceDataError

__all__ = [
    "TraceExperiment",
    "find_trace_files",
    "bench_stage_totals",
    "stitch_traces",
    "count_tcp_hops",
]


def find_trace_files(path: Path) -> List[Path]:
    """All trace files reachable from ``path`` (file, run dir, or tree)."""
    if path.is_file():
        return [path]
    if path.is_dir():
        direct = sorted(path.glob("trace-*.jsonl"))
        if direct:
            return direct
        return sorted(path.glob("**/trace-*.jsonl"))
    return []


def stitch_traces(paths: List[Path]):
    """Merge several trace files into one deduplicated span list.

    Returns ``(spans, report)`` where ``report`` is one human line per
    file (span count, duplicates dropped, or why it was skipped).
    First occurrence of a span id wins; torn files are skipped with a
    note rather than failing the stitch — a post-mortem must render
    whatever survived.
    """
    from repro.obs.export import load_trace

    spans, seen, report = [], set(), []
    for path in paths:
        try:
            loaded = load_trace(path)
        except TraceDataError as exc:
            report.append(f"{path.name}: skipped ({exc})")
            continue
        fresh = [span for span in loaded if span.span_id not in seen]
        seen.update(span.span_id for span in fresh)
        spans.extend(fresh)
        duplicates = len(loaded) - len(fresh)
        line = f"{path.name}: {len(fresh)} spans"
        if duplicates:
            line += f" ({duplicates} duplicate span ids dropped)"
        report.append(line)
    return spans, report


def count_tcp_hops(spans) -> int:
    """Client→replica wire crossings in a stitched service trace.

    A hop is a span whose parent is a ``service.client`` span from a
    *different process* — the replica-side ``service.request`` anchored
    under the client's hop span via the request's trace envelope.
    """
    clients = {
        span.span_id: span for span in spans if span.name == "service.client"
    }
    return sum(
        1
        for span in spans
        if span.parent_id in clients
        and span.pid != clients[span.parent_id].pid
    )


def bench_stage_totals(trace_file: Path, run_fingerprint: Optional[str]):
    """Find a sibling BENCH json for this run and return its stage totals.

    Searches the trace file's directory for ``BENCH_*.json`` whose
    ``run_fingerprint`` matches (schema >= 4); falls back to any single
    BENCH file when the fingerprint is absent.  Returns ``None`` when no
    match exists — the comparison is best-effort sugar, not required.
    """
    candidates = sorted(trace_file.parent.glob("BENCH_*.json"))
    unmatched = None
    for candidate in candidates:
        try:
            payload = json.loads(candidate.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        totals = payload.get("totals")
        if not isinstance(totals, dict):
            continue
        stage_totals = {
            stage: float(totals.get(f"{stage}_s", 0.0) or 0.0)
            for stage in ("build", "factorize", "solve", "post", "contracts")
        }
        fingerprint = payload.get("run_fingerprint")
        if run_fingerprint and fingerprint == run_fingerprint:
            return candidate.name, stage_totals
        if unmatched is None:
            unmatched = (candidate.name, stage_totals)
    if run_fingerprint is None:
        return unmatched
    return None


class TraceExperiment(Experiment):
    name = "trace"
    description = "Profile a traced run: span tree, slow groups, attribution"

    @classmethod
    def configure_parser(cls, parser) -> None:
        parser.add_argument(
            "path", type=str,
            help="a trace-<fp>.jsonl file, or a directory containing one "
            "(a --run-dir, or wherever REPRO_TRACE_DIR pointed)",
        )
        parser.add_argument(
            "--run", type=str, default=None, metavar="FINGERPRINT",
            help="select one run when the directory holds several traces",
        )
        parser.add_argument(
            "--top", type=typed_int("--top", minimum=1), default=10,
            metavar="N", help="slowest topology groups to show (default 10)",
        )
        parser.add_argument(
            "--chrome", type=str, default=None, metavar="PATH",
            help="also write a Chrome trace_event JSON to PATH",
        )
        parser.add_argument(
            "--prometheus", type=str, default=None, metavar="PATH",
            help="also write span-derived metrics as a Prometheus textfile",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["path"] = args.path
        config.options["run"] = getattr(args, "run", None)
        config.options["top"] = getattr(args, "top", 10)
        config.options["chrome"] = getattr(args, "chrome", None)
        config.options["prometheus"] = getattr(args, "prometheus", None)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.obs.export import (
            load_trace,
            load_trace_header,
            write_chrome_trace,
            write_prometheus,
        )
        from repro.obs.profile import (
            STAGE_SPANS,
            render_profile,
            stage_totals_from_spans,
        )

        config = config or ExperimentConfig()
        path = Path(config.option("path") or ".")
        wanted = config.option("run")
        traces = find_trace_files(path)
        if wanted:
            traces = [t for t in traces if wanted in t.name]
        if not traces:
            raise TraceDataError(
                f"no trace-*.jsonl found under {path} "
                "(run with --trace or REPRO_TRACE=1 first)",
                path=str(path),
            )
        trace_file = traces[0]
        stitch_report: List[str] = []
        if len(traces) > 1:
            # Several traces: a distributed service run (client +
            # replicas + fleet workers), or just many runs in one dir.
            # Stitch them into one deduplicated tree; --run narrows.
            spans, stitch_report = stitch_traces(traces)
            run_fp = None
        else:
            # load_trace raises a typed TraceDataError on torn files;
            # the CLI renders it as a one-line diagnostic, no traceback.
            spans = load_trace(trace_file)
            header = load_trace_header(trace_file) or {}
            run_fp = header.get("run_fingerprint")
        if not spans:
            raise TraceDataError(
                f"trace {trace_file} holds no spans (empty or header-only "
                "file — did the traced run crash before its flush?)",
                path=str(trace_file),
            )

        notes: List[str] = []
        table = render_profile(
            spans, top=config.option("top", 10), run_fingerprint=run_fp
        )
        span_totals = stage_totals_from_spans(spans)

        tcp_hops = count_tcp_hops(spans)
        if stitch_report:
            lines = ["", f"-- stitched {len(traces)} trace files --"]
            lines += [f"  {line}" for line in stitch_report]
            if tcp_hops:
                lines.append(
                    f"  tcp hops: {tcp_hops} "
                    "(service.client -> service.request across processes)"
                )
            table += "\n" + "\n".join(lines)

        bench = bench_stage_totals(trace_file, run_fp)
        comparison = None
        if bench is not None:
            bench_name, bench_totals = bench
            lines = [
                "",
                f"-- stage totals vs {bench_name} --",
                f"{'stage':<12} {'spans_s':>12} {'bench_s':>12} {'delta':>8}",
            ]
            comparison = {}
            for stage in STAGE_SPANS:
                from_spans = span_totals.get(stage, 0.0)
                from_bench = float(bench_totals.get(stage, 0.0) or 0.0)
                scale = max(from_bench, 1e-12)
                delta = abs(from_spans - from_bench) / scale
                comparison[stage] = {
                    "spans_s": from_spans,
                    "bench_s": from_bench,
                    "relative_delta": delta,
                }
                lines.append(
                    f"{stage:<12} {from_spans:>12.6f} {from_bench:>12.6f} "
                    f"{delta:>7.2%}"
                )
            table += "\n" + "\n".join(lines)

        chrome = config.option("chrome")
        if chrome:
            write_chrome_trace(spans, Path(chrome), run_fingerprint=run_fp)
            notes.append(f"wrote Chrome trace {chrome} (open in ui.perfetto.dev)")
        prometheus = config.option("prometheus")
        if prometheus:
            write_prometheus(self._registry_from_spans(spans), Path(prometheus))
            notes.append(f"wrote Prometheus textfile {prometheus}")

        return ExperimentResult(
            name=self.name,
            table=table,
            data={
                "trace": str(trace_file),
                "run_fingerprint": run_fp,
                "n_spans": len(spans),
                "stage_totals": span_totals,
                "bench_comparison": comparison,
                "stitched": [str(t) for t in traces] if stitch_report else None,
                "tcp_hops": tcp_hops,
            },
            raw=spans,
            notes=notes,
        )

    @staticmethod
    def _registry_from_spans(spans):
        """Rebuild a metrics registry from a flushed trace.

        The offline view mirrors what the live run's registry held:
        stage time histograms, escalation-rung counters, and contract
        timing — enough for a scrape-friendly summary of a past run.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stage = registry.histogram("stage", "Stage wall time")
        rungs = registry.counter(
            "escalations_total", "Solver escalation-ladder rungs"
        )
        contracts = registry.histogram("contracts", "Contract-check wall time")
        errors = registry.counter("error_spans_total", "Spans that raised")
        for span in spans:
            if span.name in ("build", "factorize", "solve", "post", "contracts"):
                stage.observe(span.duration_s, stage=span.name)
            if span.name == "rung":
                rungs.inc(
                    int(span.attributes.get("count", 1)),
                    rung=str(span.attributes.get("rung", "?")),
                )
            if span.name == "contracts":
                contracts.observe(span.duration_s)
            if span.status == "error":
                errors.inc()
        return registry
