"""Fig. 7 — distributions of PARSEC power samples.

One thousand 2k-cycle samples per application are drawn from the
calibrated synthetic profiles and summarised as a box plot, together
with the derived per-application maximum workload imbalance whose suite
average (65%) anchors the headline noise claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.boxplot import BoxStats, ascii_boxplot
from repro.analysis.tables import format_table
from repro.config.stackups import ProcessorSpec
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_seed_argument,
    typed_int,
)
from repro.utils.rng import SeedLike
from repro.workload.sampling import SampleSet, sample_suite


@dataclass(frozen=True)
class Fig7Result:
    """Per-application sample statistics."""

    #: Application name -> sample set.
    samples: Dict[str, SampleSet]

    def box_stats(self) -> Tuple[BoxStats, ...]:
        stats = []
        for name in sorted(self.samples):
            p = self.samples[name].percentiles()
            stats.append(
                BoxStats(
                    label=name, minimum=p[0], q25=p[1], median=p[2], q75=p[3],
                    maximum=p[4],
                )
            )
        return tuple(stats)

    def max_imbalances(self) -> Dict[str, float]:
        """Per-application maximum imbalance across its own samples."""
        return {name: s.max_imbalance for name, s in sorted(self.samples.items())}

    @property
    def average_max_imbalance(self) -> float:
        """Suite mean of the per-application maxima (paper: ~65%)."""
        return float(np.mean(list(self.max_imbalances().values())))

    @property
    def suite_max_imbalance(self) -> float:
        """Worst imbalance over all samples of all apps (paper: > 90%)."""
        highs = [s.dynamic_powers.max() for s in self.samples.values()]
        lows = [s.dynamic_powers.min() for s in self.samples.values()]
        return float((max(highs) - min(lows)) / max(highs))

    def best_case_application(self) -> str:
        imbalances = self.max_imbalances()
        return min(imbalances, key=imbalances.get)

    def format(self) -> str:
        plot = ascii_boxplot(self.box_stats(), unit=" W")
        imb = self.max_imbalances()
        rows = [(name, value * 100) for name, value in imb.items()]
        table = format_table(
            ["application", "max imbalance (%)"], rows,
            title="Per-application maximum workload imbalance",
        )
        summary = (
            f"suite average of per-app maxima: {self.average_max_imbalance:.1%}   "
            f"worst pair across suite: {self.suite_max_imbalance:.1%}"
        )
        return "\n\n".join(
            ["Fig. 7: per-application layer-power distributions (W)", plot, table, summary]
        )


def compute_fig7(
    n_samples: int = 1000,
    processor: Optional[ProcessorSpec] = None,
    rng: SeedLike = None,
) -> Fig7Result:
    """Reproduce the Fig. 7 sampling campaign."""
    processor = processor or ProcessorSpec()
    return Fig7Result(samples=sample_suite(processor, n_samples=n_samples, rng=rng))


class Fig7Experiment(Experiment):
    name = "fig7"
    description = "Fig. 7: PARSEC power distributions"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_seed_argument(parser)
        parser.add_argument(
            "--samples", type=typed_int("--samples", minimum=1), default=1000
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["samples"] = getattr(args, "samples", 1000)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        result = compute_fig7(
            n_samples=config.option("samples", 1000), rng=config.seed
        )
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "max_imbalances": result.max_imbalances(),
                "average_max_imbalance": result.average_max_imbalance,
                "suite_max_imbalance": result.suite_max_imbalance,
            },
            raw=result,
        )
