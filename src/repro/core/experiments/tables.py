"""Tables 1 and 2 — configuration echo and derived TSV metrics."""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.config.stackups import ProcessorSpec, TSV_TOPOLOGIES
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
)
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    TSVTechnology,
    default_c4,
    default_metal,
    default_tsv,
)
from repro.pdn.tsv import tsv_topology_report
from repro.utils.units import format_engineering, to_micro


def table1_report(
    c4: Optional[C4Technology] = None,
    tsv: Optional[TSVTechnology] = None,
    metal: Optional[OnChipMetal] = None,
) -> str:
    """Render Table 1 (major PDN modeling parameters)."""
    c4 = c4 or default_c4()
    tsv = tsv or default_tsv()
    metal = metal or default_metal()
    rows = [
        ("C4 Pad Pitch (um)", to_micro(c4.pitch)),
        ("C4 Pad Resistance (mOhm)", c4.resistance * 1e3),
        ("Minimum TSV Pitch (um)", to_micro(tsv.min_pitch)),
        ("TSV Diameter (um)", to_micro(tsv.diameter)),
        ("Single TSV's Resistance (mOhm)", tsv.resistance * 1e3),
        ("TSV Keep-Out Zone's Side Length (um)", to_micro(tsv.koz_side)),
        (
            "On-chip PDN's Pitch,Width,Thickness (um)",
            f"{to_micro(metal.pitch):.0f},{to_micro(metal.width):.0f},"
            f"{to_micro(metal.thickness):.0f}",
        ),
        (
            "(derived) power-net sheet resistance",
            format_engineering(metal.sheet_resistance, "Ohm/sq"),
        ),
    ]
    return format_table(
        ["parameter", "value"], rows, title="Table 1: major PDN modeling parameters"
    )


def table2_report(
    processor: Optional[ProcessorSpec] = None,
    tsv: Optional[TSVTechnology] = None,
) -> str:
    """Render Table 2 (TSV configurations) with derived quantities."""
    processor = processor or ProcessorSpec()
    tsv = tsv or default_tsv()
    rows = []
    for name in ("Dense", "Sparse", "Few"):
        report = tsv_topology_report(TSV_TOPOLOGIES[name], processor.core_area, tsv)
        rows.append(
            (
                f"{name} TSV",
                report["effective_pitch_um"],
                report["tsvs_per_core"],
                report["area_overhead_percent"],
            )
        )
    return format_table(
        ["topology", "effective pitch (um)", "TSVs per core", "area overhead (%)"],
        rows,
        title="Table 2: TSV configurations",
    )


class Table1Experiment(Experiment):
    name = "table1"
    description = "Table 1: PDN modeling parameters"

    def run(self, config: "Optional[ExperimentConfig]" = None) -> ExperimentResult:
        return ExperimentResult(name=self.name, table=table1_report())


class Table2Experiment(Experiment):
    name = "table2"
    description = "Table 2: TSV configurations"

    def run(self, config: "Optional[ExperimentConfig]" = None) -> ExperimentResult:
        return ExperimentResult(name=self.name, table=table2_report())
