"""N-k contingency analysis: PDN robustness under component failures.

The paper's EM study (Fig. 5) asks *when* conductors fail; this
experiment asks what the stack looks like *after* k of them have.  For
each failure fraction it draws a random set of failed-open TSVs (and,
for the voltage-stacked PDN, dead SC converter cells), rewrites the
netlist through :mod:`repro.faults`, and re-solves the damaged PDN on
the resilient path of :mod:`repro.grid.solver` — recording the worst
IR-drop fraction, the system efficiency and the solver's degradation
diagnostics.  A final deterministic row severs one layer completely,
the worst-case contingency, which must be detected as a floating
island rather than crash the solve.

Comparing the two arrangements quantifies a robustness trade-off the
steady-state figures hide: the regular PDN's paralleled tiers degrade
gracefully, while the voltage-stacked ladder funnels every rail's
current through single interfaces — but its SC banks re-regulate the
surviving rails.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_seed_argument,
    apply_common_args,
    resolve_engine,
    typed_float,
    typed_int,
)
from repro.faults import severed_layer_plan, uniform_fault_plan
from repro.runtime import PDNSpec, SweepEngine, SweepPoint
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.validation import check_positive_int

DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class ContingencyPoint:
    """One damaged design point of the sweep."""

    arrangement: str
    #: Failure fraction, or None for the severed-layer worst case.
    fraction: Optional[float]
    label: str
    #: Conductors/converter cells removed by the sampled plan.
    n_failed_conductors: int
    n_failed_converters: int
    #: Metrics of the damaged solve (None when the solve failed).
    max_droop_fraction: Optional[float]
    efficiency: Optional[float]
    #: Resilient-solver diagnostics counters.
    n_islands: int = 0
    n_dropped_nodes: int = 0
    shed_loads: int = 0
    fallback: str = "none"
    #: Typed error message when even the resilient path gave up.
    error: Optional[str] = None

    @property
    def survived(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ContingencyResult:
    """Degradation table of both arrangements under increasing damage."""

    n_layers: int
    grid_nodes: int
    seed: SeedLike
    points: List[ContingencyPoint]

    def arrangement_points(self, arrangement: str) -> List[ContingencyPoint]:
        return [p for p in self.points if p.arrangement == arrangement]

    def baseline(self, arrangement: str) -> ContingencyPoint:
        for p in self.arrangement_points(arrangement):
            if p.fraction == 0.0:
                return p
        raise KeyError(f"no pristine baseline for {arrangement!r}")

    def worst_surviving_droop(self, arrangement: str) -> float:
        """Worst IR-drop fraction over the points that solved."""
        droops = [
            p.max_droop_fraction
            for p in self.arrangement_points(arrangement)
            if p.survived and p.max_droop_fraction is not None
        ]
        if not droops:
            raise ValueError(f"no surviving solves for {arrangement!r}")
        return max(droops)

    def format(self) -> str:
        headers = [
            "arrangement", "damage", "failed cond.", "failed conv.",
            "max droop", "efficiency", "islands", "dropped", "shed",
            "fallback", "status",
        ]
        rows = []
        for p in self.points:
            rows.append([
                p.arrangement,
                p.label,
                p.n_failed_conductors,
                p.n_failed_converters,
                None if p.max_droop_fraction is None
                else f"{p.max_droop_fraction:.2%}",
                None if p.efficiency is None else f"{p.efficiency:.2%}",
                p.n_islands,
                p.n_dropped_nodes,
                p.shed_loads,
                p.fallback,
                "ok" if p.survived else f"FAILED: {p.error}",
            ])
        return format_table(
            headers, rows,
            title=(
                f"N-k contingency: {self.n_layers} layers, "
                f"{self.grid_nodes}x{self.grid_nodes} grid, seed {self.seed}"
            ),
        )


def _diag_fields(diag) -> dict:
    if diag is None:
        return {}
    return {
        "n_islands": diag.n_islands,
        "n_dropped_nodes": diag.n_dropped_nodes,
        "shed_loads": diag.shed_loads,
        "fallback": diag.fallback,
    }


def _uniform_plan_factory(pdn, fraction, rng, converter_fraction):
    """Sample the random damage plan from the built PDN (picklable)."""
    return uniform_fault_plan(
        pdn,
        fraction,
        rng=rng,
        prefixes=("tsv", "tvia"),
        converter_fraction=converter_fraction,
    )


def _severed_plan_factory(pdn):
    return severed_layer_plan(pdn)


def _contingency_extract(outcome) -> ContingencyPoint:
    """Turn one sweep outcome into a ContingencyPoint row."""
    arrangement, fraction, label = outcome.point.tag
    report = outcome.fault_report
    n_cond = report.n_failed_conductors if report is not None else 0
    n_conv = report.n_failed_converters if report is not None else 0
    if outcome.error is not None:
        exc = outcome.error
        diag = getattr(exc, "diagnostics", None)
        return ContingencyPoint(
            arrangement=arrangement,
            fraction=fraction,
            label=label,
            n_failed_conductors=n_cond,
            n_failed_converters=n_conv,
            max_droop_fraction=None,
            efficiency=None,
            error=f"{type(exc).__name__}: {exc}",
            **_diag_fields(diag),
        )
    result = outcome.result
    return ContingencyPoint(
        arrangement=arrangement,
        fraction=fraction,
        label=label,
        n_failed_conductors=n_cond,
        n_failed_converters=n_conv,
        max_droop_fraction=result.max_ir_drop_fraction(),
        efficiency=result.efficiency(),
        **_diag_fields(result.diagnostics),
    )


def run_contingency(
    n_layers: int = 4,
    grid_nodes: int = 16,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    converter_fraction: Optional[float] = None,
    converters_per_core: int = 8,
    seed: SeedLike = None,
    severed_layer: bool = True,
    engine: Optional[SweepEngine] = None,
) -> ContingencyResult:
    """Sweep both arrangements over increasing TSV failure fractions.

    At each fraction a fresh PDN is built and a random ``fraction`` of
    its TSVs (through-vias included) fails open; for the voltage-stacked
    PDN ``converter_fraction`` of the SC cells dies too (defaults to the
    TSV fraction).  ``severed_layer`` appends the deterministic
    worst-case row that cuts the top layer off completely.

    Every damaged point runs on the sweep engine's resilient path; a
    point whose solve fails end-to-end is captured as a FAILED row, not
    an exception.
    """
    check_positive_int("n_layers", n_layers)
    check_positive_int("grid_nodes", grid_nodes)
    engine = engine or SweepEngine()
    # Independent child seeds per sweep point keep the draws decoupled
    # from sweep order and arrangement.
    n_draws = len(fractions) * 2
    child_seeds = spawn_seeds(seed, n_draws)
    draw = 0
    sweep_points: List[SweepPoint] = []
    for arrangement, spec in (
        ("regular", PDNSpec.regular(n_layers, grid_nodes=grid_nodes)),
        (
            "voltage-stacked",
            PDNSpec.stacked(
                n_layers,
                converters_per_core=converters_per_core,
                grid_nodes=grid_nodes,
            ),
        ),
    ):
        for fraction in fractions:
            plan = None
            if fraction > 0:
                conv_frac = (
                    fraction if converter_fraction is None else converter_fraction
                )
                plan = partial(
                    _uniform_plan_factory,
                    fraction=fraction,
                    rng=child_seeds[draw],
                    converter_fraction=conv_frac,
                )
            sweep_points.append(
                SweepPoint(
                    spec=spec,
                    fault_plan=plan,
                    resilient=True,
                    tag=(arrangement, fraction, f"{fraction:.0%} TSVs"),
                )
            )
            draw += 1
        if severed_layer:
            sweep_points.append(
                SweepPoint(
                    spec=spec,
                    fault_plan=partial(_severed_plan_factory),
                    resilient=True,
                    tag=(arrangement, None, "severed top layer"),
                )
            )
    points = engine.run(sweep_points, extract=_contingency_extract).values
    return ContingencyResult(
        n_layers=n_layers, grid_nodes=grid_nodes, seed=seed, points=list(points)
    )


class ContingencyExperiment(Experiment):
    name = "contingency"
    description = "N-k contingency: robustness under TSV/converter failures"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_seed_argument(parser)
        parser.add_argument(
            "--layers", type=typed_int("--layers", minimum=1), default=4,
            help="stacked layer count (default 4)",
        )
        parser.add_argument(
            "--grid", type=typed_int("--grid", minimum=2), default=16,
            help="model-grid nodes per die side (default 16)",
        )
        parser.add_argument(
            "--fractions", type=str, default="0,0.05,0.1,0.2",
            help="comma-separated TSV failure fractions (default 0,0.05,0.1,0.2)",
        )
        parser.add_argument(
            "--converter-fraction",
            type=typed_float("--converter-fraction", minimum=0.0),
            default=None,
            help="SC-converter failure fraction (default: same as the TSV fraction)",
        )
        parser.add_argument(
            "--no-severed-layer", action="store_true",
            help="skip the worst-case severed-layer row",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = ExperimentConfig(
            grid_nodes=getattr(args, "grid", 16),
            n_layers=getattr(args, "layers", 4),
            seed=getattr(args, "seed", None),
        )
        config.options["fractions"] = tuple(
            float(f) for f in getattr(args, "fractions", "0,0.05,0.1,0.2").split(",")
            if f.strip()
        )
        config.options["converter_fraction"] = getattr(
            args, "converter_fraction", None
        )
        config.options["severed_layer"] = not getattr(
            args, "no_severed_layer", False
        )
        apply_common_args(config, args)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig(grid_nodes=16, n_layers=4)
        result = run_contingency(
            n_layers=config.n_layers,
            grid_nodes=config.grid_nodes,
            fractions=config.option("fractions", DEFAULT_FRACTIONS),
            converter_fraction=config.option("converter_fraction"),
            seed=config.seed,
            severed_layer=config.option("severed_layer", True),
            engine=resolve_engine(config),
        )
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "n_layers": result.n_layers,
                "grid_nodes": result.grid_nodes,
                "points": [
                    {
                        "arrangement": p.arrangement,
                        "label": p.label,
                        "n_failed_conductors": p.n_failed_conductors,
                        "n_failed_converters": p.n_failed_converters,
                        "max_droop_fraction": p.max_droop_fraction,
                        "efficiency": p.efficiency,
                        "survived": p.survived,
                        "error": p.error,
                    }
                    for p in result.points
                ],
            },
            raw=result,
        )
