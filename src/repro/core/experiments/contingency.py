"""N-k contingency analysis: PDN robustness under component failures.

The paper's EM study (Fig. 5) asks *when* conductors fail; this
experiment asks what the stack looks like *after* k of them have.  For
each failure fraction it draws a random set of failed-open TSVs (and,
for the voltage-stacked PDN, dead SC converter cells), rewrites the
netlist through :mod:`repro.faults`, and re-solves the damaged PDN on
the resilient path of :mod:`repro.grid.solver` — recording the worst
IR-drop fraction, the system efficiency and the solver's degradation
diagnostics.  A final deterministic row severs one layer completely,
the worst-case contingency, which must be detected as a floating
island rather than crash the solve.

Comparing the two arrangements quantifies a robustness trade-off the
steady-state figures hide: the regular PDN's paralleled tiers degrade
gracefully, while the voltage-stacked ladder funnels every rail's
current through single interfaces — but its SC banks re-regulate the
surviving rails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.errors import ReproError
from repro.faults import severed_layer_plan, uniform_fault_plan
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.validation import check_positive_int

DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class ContingencyPoint:
    """One damaged design point of the sweep."""

    arrangement: str
    #: Failure fraction, or None for the severed-layer worst case.
    fraction: Optional[float]
    label: str
    #: Conductors/converter cells removed by the sampled plan.
    n_failed_conductors: int
    n_failed_converters: int
    #: Metrics of the damaged solve (None when the solve failed).
    max_droop_fraction: Optional[float]
    efficiency: Optional[float]
    #: Resilient-solver diagnostics counters.
    n_islands: int = 0
    n_dropped_nodes: int = 0
    shed_loads: int = 0
    fallback: str = "none"
    #: Typed error message when even the resilient path gave up.
    error: Optional[str] = None

    @property
    def survived(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ContingencyResult:
    """Degradation table of both arrangements under increasing damage."""

    n_layers: int
    grid_nodes: int
    seed: SeedLike
    points: List[ContingencyPoint]

    def arrangement_points(self, arrangement: str) -> List[ContingencyPoint]:
        return [p for p in self.points if p.arrangement == arrangement]

    def baseline(self, arrangement: str) -> ContingencyPoint:
        for p in self.arrangement_points(arrangement):
            if p.fraction == 0.0:
                return p
        raise KeyError(f"no pristine baseline for {arrangement!r}")

    def worst_surviving_droop(self, arrangement: str) -> float:
        """Worst IR-drop fraction over the points that solved."""
        droops = [
            p.max_droop_fraction
            for p in self.arrangement_points(arrangement)
            if p.survived and p.max_droop_fraction is not None
        ]
        if not droops:
            raise ValueError(f"no surviving solves for {arrangement!r}")
        return max(droops)

    def format(self) -> str:
        headers = [
            "arrangement", "damage", "failed cond.", "failed conv.",
            "max droop", "efficiency", "islands", "dropped", "shed",
            "fallback", "status",
        ]
        rows = []
        for p in self.points:
            rows.append([
                p.arrangement,
                p.label,
                p.n_failed_conductors,
                p.n_failed_converters,
                None if p.max_droop_fraction is None
                else f"{p.max_droop_fraction:.2%}",
                None if p.efficiency is None else f"{p.efficiency:.2%}",
                p.n_islands,
                p.n_dropped_nodes,
                p.shed_loads,
                p.fallback,
                "ok" if p.survived else f"FAILED: {p.error}",
            ])
        return format_table(
            headers, rows,
            title=(
                f"N-k contingency: {self.n_layers} layers, "
                f"{self.grid_nodes}x{self.grid_nodes} grid, seed {self.seed}"
            ),
        )


def _diag_fields(diag) -> dict:
    if diag is None:
        return {}
    return {
        "n_islands": diag.n_islands,
        "n_dropped_nodes": diag.n_dropped_nodes,
        "shed_loads": diag.shed_loads,
        "fallback": diag.fallback,
    }


def _solve_point(pdn, arrangement: str, fraction, label, plan) -> ContingencyPoint:
    """Apply one plan to a fresh PDN and solve it resiliently."""
    n_cond = 0
    n_conv = 0
    if plan is not None:
        report = pdn.apply_faults(plan)
        n_cond = report.n_failed_conductors
        n_conv = report.n_failed_converters
    try:
        result = pdn.solve(resilient=True)
    except ReproError as exc:
        diag = getattr(exc, "diagnostics", None)
        return ContingencyPoint(
            arrangement=arrangement,
            fraction=fraction,
            label=label,
            n_failed_conductors=n_cond,
            n_failed_converters=n_conv,
            max_droop_fraction=None,
            efficiency=None,
            error=f"{type(exc).__name__}: {exc}",
            **_diag_fields(diag),
        )
    return ContingencyPoint(
        arrangement=arrangement,
        fraction=fraction,
        label=label,
        n_failed_conductors=n_cond,
        n_failed_converters=n_conv,
        max_droop_fraction=result.max_ir_drop_fraction(),
        efficiency=result.efficiency(),
        **_diag_fields(result.diagnostics),
    )


def run_contingency(
    n_layers: int = 4,
    grid_nodes: int = 16,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    converter_fraction: Optional[float] = None,
    converters_per_core: int = 8,
    seed: SeedLike = None,
    severed_layer: bool = True,
) -> ContingencyResult:
    """Sweep both arrangements over increasing TSV failure fractions.

    At each fraction a fresh PDN is built and a random ``fraction`` of
    its TSVs (through-vias included) fails open; for the voltage-stacked
    PDN ``converter_fraction`` of the SC cells dies too (defaults to the
    TSV fraction).  ``severed_layer`` appends the deterministic
    worst-case row that cuts the top layer off completely.
    """
    check_positive_int("n_layers", n_layers)
    check_positive_int("grid_nodes", grid_nodes)
    points: List[ContingencyPoint] = []
    # Independent child seeds per sweep point keep the draws decoupled
    # from sweep order and arrangement.
    n_draws = len(fractions) * 2
    child_seeds = spawn_seeds(seed, n_draws)
    draw = 0
    for arrangement, build in (
        ("regular", lambda: build_regular_pdn(n_layers, grid_nodes=grid_nodes)),
        (
            "voltage-stacked",
            lambda: build_stacked_pdn(
                n_layers,
                converters_per_core=converters_per_core,
                grid_nodes=grid_nodes,
            ),
        ),
    ):
        for fraction in fractions:
            pdn = build()
            plan = None
            if fraction > 0:
                conv_frac = (
                    fraction if converter_fraction is None else converter_fraction
                )
                plan = uniform_fault_plan(
                    pdn,
                    fraction,
                    rng=child_seeds[draw],
                    prefixes=("tsv", "tvia"),
                    converter_fraction=conv_frac,
                )
            points.append(
                _solve_point(
                    pdn, arrangement, fraction, f"{fraction:.0%} TSVs", plan
                )
            )
            draw += 1
        if severed_layer:
            pdn = build()
            plan = severed_layer_plan(pdn)
            points.append(
                _solve_point(pdn, arrangement, None, "severed top layer", plan)
            )
    return ContingencyResult(
        n_layers=n_layers, grid_nodes=grid_nodes, seed=seed, points=points
    )
