"""Fig. 6 — load-imbalance-induced voltage noise of the 8-layer stack.

The V-S PDN (Few TSV) is swept over the interleaved high-low workload
pattern at 0-100% imbalance for 2/4/6/8 converters per core; data points
whose converters exceed the 100 mA rating are skipped, exactly as the
paper does.  The regular PDN's worst case is all-layers-active and is
therefore a single horizontal line per TSV topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.workload.imbalance import interleaved_layer_activities

DEFAULT_IMBALANCES: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))
DEFAULT_CONVERTERS: Tuple[int, ...] = (2, 4, 6, 8)


@dataclass(frozen=True)
class Fig6Result:
    """IR-drop sweep results (fractions of Vdd)."""

    n_layers: int
    imbalances: Tuple[float, ...]
    #: converters/core -> IR drop per imbalance (None = rating violated).
    vs_series: Dict[int, List[Optional[float]]]
    #: TSV topology name -> flat regular-PDN worst-case IR drop.
    regular_lines: Dict[str, float]

    def vs_at(self, converters: int, imbalance: float) -> Optional[float]:
        idx = self.imbalances.index(imbalance)
        return self.vs_series[converters][idx]

    def crossover_imbalance(
        self, converters: int = 8, regular: str = "Dense"
    ) -> Optional[float]:
        """First swept imbalance where V-S noise exceeds the regular line."""
        threshold = self.regular_lines[regular]
        for imbalance, value in zip(self.imbalances, self.vs_series[converters]):
            if value is not None and value > threshold:
                return imbalance
        return None

    def format(self) -> str:
        headers = ["imbalance"] + [
            f"V-S {k} conv/core" for k in sorted(self.vs_series)
        ]
        rows = []
        for i, imbalance in enumerate(self.imbalances):
            row: List[object] = [f"{imbalance:.0%}"]
            for k in sorted(self.vs_series):
                value = self.vs_series[k][i]
                row.append(None if value is None else value * 100)
            rows.append(row)
        table = format_table(
            headers, rows,
            title=(
                f"Fig. 6: max on-chip IR drop (% Vdd), {self.n_layers}-layer V-S PDN "
                "(Few TSV; '-' = converter rating exceeded)"
            ),
        )
        lines = [
            f"Reg. PDN {name} TSV (worst case, any imbalance): {value * 100:.2f}% Vdd"
            for name, value in self.regular_lines.items()
        ]
        return table + "\n" + "\n".join(lines)


def run_fig6(
    n_layers: int = 8,
    imbalances: Sequence[float] = DEFAULT_IMBALANCES,
    converters_per_core: Sequence[int] = DEFAULT_CONVERTERS,
    grid_nodes: int = 20,
) -> Fig6Result:
    """Reproduce the Fig. 6 noise comparison."""
    imbalances = tuple(imbalances)
    vs_series: Dict[int, List[Optional[float]]] = {}
    for k in converters_per_core:
        pdn = build_stacked_pdn(
            n_layers, converters_per_core=k, topology="Few", grid_nodes=grid_nodes
        )
        values: List[Optional[float]] = []
        for imbalance in imbalances:
            activities = interleaved_layer_activities(n_layers, imbalance)
            result = pdn.solve(layer_activities=activities)
            if result.converters_within_rating():
                values.append(result.max_ir_drop_fraction())
            else:
                values.append(None)  # the paper skips these points
        vs_series[k] = values

    regular_lines: Dict[str, float] = {}
    for topology in ("Dense", "Sparse", "Few"):
        pdn = build_regular_pdn(n_layers, topology=topology, grid_nodes=grid_nodes)
        regular_lines[topology] = pdn.solve(
            layer_activities=np.ones(n_layers)
        ).max_ir_drop_fraction()

    return Fig6Result(
        n_layers=n_layers,
        imbalances=imbalances,
        vs_series=vs_series,
        regular_lines=regular_lines,
    )
