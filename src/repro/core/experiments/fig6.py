"""Fig. 6 — load-imbalance-induced voltage noise of the 8-layer stack.

The V-S PDN (Few TSV) is swept over the interleaved high-low workload
pattern at 0-100% imbalance for 2/4/6/8 converters per core; data points
whose converters exceed the 100 mA rating are skipped, exactly as the
paper does.  The regular PDN's worst case is all-layers-active and is
therefore a single horizontal line per TSV topology.

The sweep runs on the :class:`repro.runtime.engine.SweepEngine`: each
converter count is one topology group whose eleven imbalance points
share a single factorisation and one batched multi-RHS solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_grid_argument,
    add_layers_argument,
    degraded_notes,
    outcome_degraded,
    resolve_engine,
)
from repro.runtime import PDNSpec, SweepEngine, SweepPoint
from repro.workload.imbalance import interleaved_layer_activities

DEFAULT_IMBALANCES: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))
DEFAULT_CONVERTERS: Tuple[int, ...] = (2, 4, 6, 8)


def _extract_rated_ir_drop(outcome) -> Tuple[Optional[float], bool]:
    """(IR-drop fraction or None when rating-violated, degraded flag)."""
    result = outcome.unwrap()
    if result.converters_within_rating():
        return result.max_ir_drop_fraction(), outcome_degraded(outcome)
    return None, outcome_degraded(outcome)  # the paper skips these points


def _extract_ir_drop(outcome) -> Tuple[float, bool]:
    return outcome.unwrap().max_ir_drop_fraction(), outcome_degraded(outcome)


@dataclass(frozen=True)
class Fig6Result:
    """IR-drop sweep results (fractions of Vdd)."""

    n_layers: int
    imbalances: Tuple[float, ...]
    #: converters/core -> IR drop per imbalance (None = rating violated).
    vs_series: Dict[int, List[Optional[float]]]
    #: TSV topology name -> flat regular-PDN worst-case IR drop.
    regular_lines: Dict[str, float]
    #: converters/core -> per-imbalance degraded/unconverged flags.
    vs_degraded: Dict[int, List[bool]] = field(default_factory=dict)
    #: Total sweep points (V-S + regular) flagged degraded.
    degraded_points: int = 0

    def vs_at(self, converters: int, imbalance: float) -> Optional[float]:
        idx = self.imbalances.index(imbalance)
        return self.vs_series[converters][idx]

    def crossover_imbalance(
        self, converters: int = 8, regular: str = "Dense"
    ) -> Optional[float]:
        """First swept imbalance where V-S noise exceeds the regular line."""
        threshold = self.regular_lines[regular]
        for imbalance, value in zip(self.imbalances, self.vs_series[converters]):
            if value is not None and value > threshold:
                return imbalance
        return None

    def format(self) -> str:
        headers = ["imbalance"] + [
            f"V-S {k} conv/core" for k in sorted(self.vs_series)
        ]
        rows = []
        for i, imbalance in enumerate(self.imbalances):
            row: List[object] = [f"{imbalance:.0%}"]
            for k in sorted(self.vs_series):
                value = self.vs_series[k][i]
                row.append(None if value is None else value * 100)
            rows.append(row)
        table = format_table(
            headers, rows,
            title=(
                f"Fig. 6: max on-chip IR drop (% Vdd), {self.n_layers}-layer V-S PDN "
                "(Few TSV; '-' = converter rating exceeded)"
            ),
        )
        lines = [
            f"Reg. PDN {name} TSV (worst case, any imbalance): {value * 100:.2f}% Vdd"
            for name, value in self.regular_lines.items()
        ]
        return table + "\n" + "\n".join(lines)


def compute_fig6(
    n_layers: int = 8,
    imbalances: Sequence[float] = DEFAULT_IMBALANCES,
    converters_per_core: Sequence[int] = DEFAULT_CONVERTERS,
    grid_nodes: int = 20,
    engine: Optional[SweepEngine] = None,
) -> Fig6Result:
    """Reproduce the Fig. 6 noise comparison.

    The engine-backed implementation behind :class:`Fig6Experiment`.
    """
    engine = engine or SweepEngine()
    imbalances = tuple(imbalances)

    vs_points = [
        SweepPoint(
            spec=PDNSpec.stacked(
                n_layers, converters_per_core=k, topology="Few",
                grid_nodes=grid_nodes,
            ),
            layer_activities=tuple(
                interleaved_layer_activities(n_layers, imbalance)
            ),
        )
        for k in converters_per_core
        for imbalance in imbalances
    ]
    vs_flagged = engine.run(vs_points, extract=_extract_rated_ir_drop).values
    vs_series: Dict[int, List[Optional[float]]] = {}
    vs_degraded: Dict[int, List[bool]] = {}
    n_imb = len(imbalances)
    for i, k in enumerate(converters_per_core):
        chunk = vs_flagged[i * n_imb:(i + 1) * n_imb]
        vs_series[k] = [value for value, _ in chunk]
        vs_degraded[k] = [bool(flag) for _, flag in chunk]

    regular_points = [
        SweepPoint(
            spec=PDNSpec.regular(n_layers, topology=topology, grid_nodes=grid_nodes),
            layer_activities=(1.0,) * n_layers,
        )
        for topology in ("Dense", "Sparse", "Few")
    ]
    regular_flagged = engine.run(regular_points, extract=_extract_ir_drop).values
    regular_lines = dict(
        zip(("Dense", "Sparse", "Few"), (value for value, _ in regular_flagged))
    )
    degraded = sum(1 for _, flag in vs_flagged if flag) + sum(
        1 for _, flag in regular_flagged if flag
    )

    return Fig6Result(
        n_layers=n_layers,
        imbalances=imbalances,
        vs_series=vs_series,
        regular_lines=regular_lines,
        vs_degraded=vs_degraded,
        degraded_points=degraded,
    )


class Fig6Experiment(Experiment):
    name = "fig6"
    description = "Fig. 6: IR drop vs workload imbalance"

    @classmethod
    def configure_parser(cls, parser) -> None:
        add_grid_argument(parser)
        add_layers_argument(parser)
        parser.add_argument("--csv", type=str, default=None, help="also export to CSV")

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["csv"] = getattr(args, "csv", None)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        result = compute_fig6(
            n_layers=config.n_layers,
            grid_nodes=config.grid_nodes,
            engine=resolve_engine(config),
        )
        notes = degraded_notes(result.degraded_points)
        csv_path = config.option("csv")
        if csv_path:
            from repro.analysis.export import fig6_to_csv

            notes.append(f"wrote {fig6_to_csv(result, csv_path)}")
        return ExperimentResult(
            name=self.name,
            table=result.format(),
            data={
                "n_layers": result.n_layers,
                "imbalances": list(result.imbalances),
                "vs_series": {str(k): v for k, v in result.vs_series.items()},
                "regular_lines": result.regular_lines,
                "vs_degraded": {str(k): v for k, v in result.vs_degraded.items()},
                "degraded_points": result.degraded_points,
            },
            raw=result,
            notes=notes,
        )
