"""``repro serve`` / ``repro query`` / ``repro cache``: the service CLI.

``serve`` runs the resilient query front-end of
:mod:`repro.service.server` until SIGINT/SIGTERM (clean drain); several
``serve`` processes sharing one ``--cache-dir`` form an HA replica set,
and ``--fleet HOST:PORT`` additionally fans cache misses out to
``repro worker`` processes.  ``query`` is the matching one-shot client:
it builds a :class:`~repro.runtime.PDNSpec` from flags, submits it with
replica failover (and ``--retries`` shed-retries), and renders the
response envelope — including typed shed/deadline/degraded outcomes —
as a one-line table.  ``cache`` inspects and maintains a cache
directory offline (``stats | verify | invalidate``).  See
docs/SERVICE.md for the wire protocol and HA semantics.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    add_grid_argument,
    add_layers_argument,
    typed_float,
    typed_int,
)
from repro.errors import ReproError

__all__ = ["ServeExperiment", "QueryExperiment", "CacheExperiment"]


def _activities_list(flag: str) -> Callable[[str], List[float]]:
    """Comma-separated float-list converter (one-line errors, exit 2)."""

    def convert(text: str) -> List[float]:
        values = []
        for part in text.split(","):
            try:
                values.append(float(part))
            except (TypeError, ValueError):
                raise ReproError(
                    f"{flag} expects comma-separated numbers, got {part!r}"
                ) from None
        if not values:
            raise ReproError(f"{flag} needs at least one value")
        return values

    convert.__name__ = "floats"
    return convert


def _add_deadline_argument(parser, help_text: str) -> None:
    """The shared ``--deadline`` flag: strictly positive, finite.

    Reuses the same typed-converter path as ``--task-timeout``, so
    ``--deadline 0``, negatives and NaN all fail as one-line
    :class:`~repro.errors.ReproError` diagnostics (exit 2) on both
    ``repro serve`` and ``repro query``.
    """
    parser.add_argument(
        "--deadline",
        type=typed_float("--deadline", minimum=0.0, exclusive=True),
        default=None, metavar="SECONDS",
        help=help_text,
    )


class ServeExperiment(Experiment):
    name = "serve"
    description = (
        "Run the resilient exploration service (fingerprint cache, "
        "admission control, circuit breaker)"
    )

    @classmethod
    def configure_parser(cls, parser) -> None:
        parser.add_argument(
            "--bind", type=str, default="127.0.0.1:0", metavar="HOST:PORT",
            help="listen address (default 127.0.0.1:0; port 0 picks a free "
            "port, published in the cache dir's service.json)",
        )
        parser.add_argument(
            "--cache-dir", type=str, default="service-cache", metavar="DIR",
            help="persistent result-cache directory (default service-cache)",
        )
        parser.add_argument(
            "--cache-max-mb",
            type=typed_float("--cache-max-mb", minimum=0.0, exclusive=True),
            default=None, metavar="MB",
            help="LRU size cap for the cache directory (default: unbounded)",
        )
        parser.add_argument(
            "--cache-ttl",
            type=typed_float("--cache-ttl", minimum=0.0, exclusive=True),
            default=None, metavar="SECONDS",
            help="entry freshness window; expired entries serve only as "
            "breaker-open degraded answers (default: never stale)",
        )
        parser.add_argument(
            "--max-queue", type=typed_int("--max-queue", minimum=1),
            default=64, metavar="N",
            help="admission queue bound; a full queue sheds queries with a "
            "typed 429-style response (default 64)",
        )
        _add_deadline_argument(
            parser,
            "default per-query deadline when a request sets none "
            "(default: unbounded)",
        )
        parser.add_argument(
            "--breaker-threshold",
            type=typed_int("--breaker-threshold", minimum=1),
            default=5, metavar="K",
            help="consecutive solve failures that open the circuit breaker "
            "(default 5)",
        )
        parser.add_argument(
            "--breaker-cooldown",
            type=typed_float("--breaker-cooldown", minimum=0.0, exclusive=True),
            default=10.0, metavar="SECONDS",
            help="open-state cooldown before a half-open probe (default 10)",
        )
        parser.add_argument(
            "--coarse-grid",
            type=typed_int("--coarse-grid", minimum=2),
            default=6, metavar="NODES",
            help="grid resolution of breaker-open degraded answers "
            "(default 6)",
        )
        parser.add_argument(
            "--solve-workers",
            type=typed_int("--solve-workers", minimum=1),
            default=1, metavar="N",
            help="queue-draining solver workers (default 1)",
        )
        parser.add_argument(
            "--slo-latency",
            type=typed_float("--slo-latency", minimum=0.0, exclusive=True),
            default=None, metavar="SECONDS",
            help="per-query latency objective: slower (or non-200) "
            "answers burn SLO error budget in the metrics endpoint "
            "(default: SLO tracking off)",
        )
        parser.add_argument(
            "--flight-recorder",
            type=typed_int("--flight-recorder", minimum=0),
            default=256, metavar="N",
            help="ring buffer of recent query events, dumped atomically "
            "on any 5xx and at shutdown (default 256; 0 disables)",
        )
        parser.add_argument(
            "--replica-id", type=str, default=None, metavar="NAME",
            help="stable replica name in discovery, metrics and trace "
            "files (default replica-<pid>)",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        for key in (
            "bind", "cache_dir", "cache_max_mb", "cache_ttl", "max_queue",
            "deadline", "breaker_threshold", "breaker_cooldown",
            "coarse_grid", "solve_workers", "slo_latency", "flight_recorder",
            "replica_id",
        ):
            config.options[key] = getattr(args, key)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        import asyncio
        import signal
        from dataclasses import replace

        from repro.service.server import ExplorationService, ServiceConfig

        config = config or ExperimentConfig()
        # The common --fleet/--lease-timeout/--fleet-wait flags land in
        # the supervision config, but for `serve` the fleet belongs to
        # the *service* (a persistent ServiceFleet), not to any one
        # per-query supervised run — pull it out and strip it so a
        # supervised miss never spins up a one-run coordinator.
        supervision = config.option("supervision")
        fleet = None
        lease_timeout_s, fleet_wait_s = 60.0, 10.0
        if supervision is not None and getattr(supervision, "fleet", None):
            fleet = supervision.fleet
            lease_timeout_s = supervision.lease_timeout_s
            fleet_wait_s = supervision.fleet_wait_s
            supervision = replace(supervision, fleet=None)
        service_config = ServiceConfig(
            bind=str(config.option("bind", "127.0.0.1:0")),
            cache_dir=str(config.option("cache_dir", "service-cache")),
            cache_max_mb=config.option("cache_max_mb"),
            cache_ttl_s=config.option("cache_ttl"),
            max_queue=int(config.option("max_queue", 64)),
            default_deadline_s=config.option("deadline"),
            breaker_threshold=int(config.option("breaker_threshold", 5)),
            breaker_cooldown_s=float(config.option("breaker_cooldown", 10.0)),
            coarse_grid=int(config.option("coarse_grid", 6)),
            solve_workers=int(config.option("solve_workers", 1)),
            supervision=supervision,
            fleet=fleet,
            lease_timeout_s=lease_timeout_s,
            fleet_wait_s=fleet_wait_s,
            slo_latency_s=config.option("slo_latency"),
            flight_recorder=int(config.option("flight_recorder", 256)),
            replica_id=config.option("replica_id"),
        )
        service = ExplorationService(config=service_config)

        async def _serve() -> None:
            loop = asyncio.get_running_loop()
            address = await service.start()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        sig,
                        lambda: loop.create_task(service.shutdown(drain=True)),
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # platform without loop signal handlers
            fleet_note = (
                f", fleet on {service.fleet_address}" if service.fleet else ""
            )
            print(
                f"exploration service listening on {address} as "
                f"{service.replica_id} (cache {service_config.cache_dir}, "
                f"epoch {service.epoch}{fleet_note}; "
                "Ctrl-C drains and stops)",
                flush=True,
            )
            await service.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            pass  # signal handler already drained; belt and braces
        counters = service.counters()
        table = (
            f"service stopped after {counters['uptime_s']:.1f}s: "
            f"{counters['requests'].get('query', 0)} query(ies), "
            f"{counters['cache']['hits']} cache hit(s), "
            f"{counters['admission']['shed']} shed, "
            f"breaker {counters['breaker']['state']}"
        )
        return ExperimentResult(name=self.name, table=table, data=counters)


class QueryExperiment(Experiment):
    name = "query"
    description = "Submit one design-point query to a running service"

    @classmethod
    def configure_parser(cls, parser) -> None:
        parser.add_argument(
            "--connect", type=str, default=None, metavar="HOST:PORT",
            help="service address (default: discover from the cache dir's "
            "service.json)",
        )
        parser.add_argument(
            "--cache-dir", type=str, default="service-cache", metavar="DIR",
            help="server cache directory used for address discovery "
            "(default service-cache)",
        )
        parser.add_argument(
            "--arrangement", type=str, default="regular",
            choices=["regular", "voltage-stacked"],
            help="PDN arrangement to query (default regular)",
        )
        add_layers_argument(parser, default=8)
        add_grid_argument(parser, default=20)
        parser.add_argument(
            "--topology", type=str, default="Few",
            help="TSV topology name (default Few)",
        )
        parser.add_argument(
            "--pad-fraction",
            type=typed_float("--pad-fraction", minimum=0.0, exclusive=True),
            default=0.25, metavar="FRACTION",
            help="power-pad fraction (default 0.25)",
        )
        parser.add_argument(
            "--converters", type=typed_int("--converters", minimum=0),
            default=0, metavar="N",
            help="SC converters per core (voltage-stacked only)",
        )
        parser.add_argument(
            "--vdd-pads", type=typed_int("--vdd-pads", minimum=0),
            default=0, metavar="N",
            help="V-S through-via pad override (0 = by pad fraction)",
        )
        parser.add_argument(
            "--activities", type=_activities_list("--activities"),
            default=None, metavar="A1,A2,...",
            help="per-layer activity factors (comma separated; default: "
            "the balanced workload)",
        )
        _add_deadline_argument(
            parser, "per-query deadline budget (default: the server's)"
        )
        parser.add_argument(
            "--client-timeout",
            type=typed_float("--client-timeout", minimum=0.0, exclusive=True),
            default=120.0, metavar="SECONDS",
            help="socket timeout waiting for the response (default 120)",
        )
        parser.add_argument(
            "--retries", type=typed_int("--retries", minimum=0),
            default=0, metavar="N",
            help="retry typed 429/503 sheds up to N times, honouring the "
            "server's retry_after_s hint and never sleeping past "
            "--deadline (default 0)",
        )
        probe = parser.add_mutually_exclusive_group()
        probe.add_argument(
            "--health", action="store_true",
            help="probe liveness instead of querying",
        )
        probe.add_argument(
            "--ready", action="store_true",
            help="probe readiness instead of querying",
        )
        probe.add_argument(
            "--service-metrics", action="store_true",
            help="dump the service counters instead of querying",
        )
        probe.add_argument(
            "--stop", action="store_true",
            help="ask the service to drain and shut down",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        for key in (
            "connect", "cache_dir", "arrangement", "topology",
            "pad_fraction", "converters", "vdd_pads", "activities",
            "deadline", "client_timeout", "retries", "health", "ready",
            "service_metrics", "stop",
        ):
            config.options[key] = getattr(args, key)
        return config

    # ------------------------------------------------------------------
    def _spec(self, config: ExperimentConfig):
        from repro.runtime.spec import PDNSpec

        try:
            return PDNSpec(
                arrangement=str(config.option("arrangement", "regular")),
                n_layers=config.n_layers,
                topology=str(config.option("topology", "Few")),
                power_pad_fraction=float(config.option("pad_fraction", 0.25)),
                vdd_pads_per_core=int(config.option("vdd_pads", 0)),
                grid_nodes=config.grid_nodes,
                converters_per_core=int(config.option("converters", 0)),
            )
        except ValueError as exc:
            raise ReproError(f"invalid query spec: {exc}") from None

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.service.client import (
            connect_any,
            discover_addresses,
            robust_query,
        )

        config = config or ExperimentConfig()
        timeout_s = float(config.option("client_timeout", 120.0))
        connect = config.option("connect")
        if connect:
            path, addresses = None, [str(connect)]
        else:
            path, addresses = discover_addresses(
                config.option("cache_dir", "service-cache")
            )
        display = (
            addresses[0]
            if len(addresses) == 1
            else f"{len(addresses)} replica(s) {addresses}"
        )
        if (
            config.option("health")
            or config.option("ready")
            or config.option("service_metrics")
            or config.option("stop")
        ):
            with connect_any(addresses, timeout_s=timeout_s, path=path) as client:
                if config.option("health"):
                    response = client.health()
                elif config.option("ready"):
                    response = client.ready()
                elif config.option("service_metrics"):
                    response = client.metrics()
                    response.pop("prometheus", None)  # table stays readable
                else:
                    response = client.shutdown(drain=True)
                display = client.address
        else:
            response = robust_query(
                self._spec(config),
                addresses=addresses,
                activities=config.option("activities"),
                deadline_s=config.option("deadline"),
                retries=int(config.option("retries", 0)),
                client_timeout_s=timeout_s,
                discovery_path=path,
            )
        return self._render(response, display)

    def _render(self, response: dict, address: str) -> ExperimentResult:
        kind = response.get("kind")
        if kind == "error":
            # Typed error envelope -> typed one-line CLI failure (exit 2),
            # keeping shed/deadline/unavailable distinguishable by text.
            raise ReproError(
                f"service at {address} answered {response.get('code')} "
                f"{response.get('status')}: {response.get('error_type')}: "
                f"{response.get('error')}"
            )
        notes: List[str] = []
        if kind == "result":
            result = response.get("result", {})
            flags = []
            if response.get("cached"):
                flags.append("cached")
            if response.get("coalesced"):
                flags.append("coalesced")
            if response.get("degraded"):
                flags.append(f"degraded:{response.get('degraded_mode')}")
                notes.append(
                    "warning: degraded answer "
                    f"({response.get('degraded_mode')}) — the solve backend "
                    "is unhealthy; values are best-effort"
                )
            table = (
                f"query {response.get('fingerprint')} "
                f"[{' '.join(flags) or 'solved'}]: "
                f"max IR drop {result.get('max_ir_drop_v', float('nan')):.6g} V "
                f"({100 * result.get('max_ir_drop_fraction', float('nan')):.3g}% "
                f"of rail), efficiency "
                f"{100 * result.get('efficiency', float('nan')):.4g}%"
            )
        else:
            table = f"{kind}: {json.dumps(response, sort_keys=True)}"
        return ExperimentResult(
            name=self.name, table=table, data=response, notes=notes
        )


class CacheExperiment(Experiment):
    name = "cache"
    description = (
        "Inspect or maintain a service result cache "
        "(stats | verify | invalidate)"
    )

    @classmethod
    def configure_parser(cls, parser) -> None:
        parser.add_argument(
            "action", type=str, choices=("stats", "verify", "invalidate"),
            help="stats: directory summary with per-epoch histogram; "
            "verify: integrity-check every entry, evicting corrupt ones; "
            "invalidate: remove entries by code epoch (--epoch)",
        )
        parser.add_argument(
            "--cache-dir", type=str, default="service-cache", metavar="DIR",
            help="cache directory to operate on (default service-cache)",
        )
        parser.add_argument(
            "--epoch", type=str, default=None, metavar="TOKEN",
            help="for invalidate: the epoch generation to remove, or "
            "'stale' for every entry not at the current code epoch",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        config.options["action"] = args.action
        config.options["cache_dir"] = args.cache_dir
        config.options["epoch"] = getattr(args, "epoch", None)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        import pathlib

        from repro.service.cache import ResultCache

        config = config or ExperimentConfig()
        action = str(config.option("action", "stats"))
        directory = pathlib.Path(
            str(config.option("cache_dir", "service-cache"))
        )
        if not directory.is_dir():
            raise ReproError(
                f"no cache directory at {directory}; pass the --cache-dir a "
                "server was started with"
            )
        cache = ResultCache(directory).open()
        if action == "stats":
            data = cache.stats()
            epochs = ", ".join(
                f"{epoch}:{count}"
                for epoch, count in sorted(data["by_epoch"].items())
            )
            table = (
                f"cache {data['directory']}: {data['entries']} entry(ies), "
                f"{data['size_bytes']} bytes, current epoch {data['epoch']} "
                f"(by epoch: {epochs or 'empty'})"
            )
        elif action == "verify":
            data = cache.verify()
            data["corrupt"] = cache.corrupt
            table = (
                f"cache verify: {data['checked']} checked, {data['ok']} ok, "
                f"{data['evicted']} evicted ({cache.corrupt} corrupt), "
                f"current epoch {data['epoch']}"
            )
        else:  # invalidate
            token = config.option("epoch")
            if not token:
                raise ReproError(
                    "cache invalidate needs --epoch TOKEN (a generation to "
                    "remove) or --epoch stale (everything not at the "
                    "current code epoch)"
                )
            target = None if str(token) == "stale" else str(token)
            removed = cache.invalidate(epoch=target)
            data = {
                "removed": removed,
                "epoch": target or "stale",
                "current_epoch": cache.epoch,
            }
            table = (
                f"cache invalidate: removed {removed} entry(ies) "
                f"({'not at current epoch ' + cache.epoch if target is None else 'epoch ' + target})"
            )
        return ExperimentResult(name=self.name, table=table, data=data)
