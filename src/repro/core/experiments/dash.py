"""``repro dash``: one live view over every replica in the fleet.

Scrapes each replica named by the shared cache directory's
``service.json`` (the same discovery file ``repro query`` fails over
with), folds the per-replica metric registries into one fleet-wide
registry (:mod:`repro.service.dash`), and renders a single table:
a row per replica plus merged totals, outcome counts, and latency
quantiles computed from the *combined* histogram buckets.

One-shot by default; ``--watch SECONDS`` re-scrapes on an interval
until interrupted.  ``--out`` additionally writes the merged registry
as a Prometheus textfile, so one node_exporter textfile collector can
publish fleet-wide series without per-replica scrape configs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

from repro.core.experiments.base import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    typed_float,
)

__all__ = ["DashExperiment"]


class DashExperiment(Experiment):
    name = "dash"
    description = "Fleet-wide service dashboard: merged replica telemetry"

    @classmethod
    def configure_parser(cls, parser) -> None:
        parser.add_argument(
            "--cache-dir", type=str, default="service-cache", metavar="DIR",
            help="cache directory whose service.json names the replicas "
            "(default service-cache)",
        )
        parser.add_argument(
            "--watch", type=typed_float("--watch", minimum=0.1),
            default=None, metavar="SECONDS",
            help="re-scrape and re-render every SECONDS until interrupted",
        )
        parser.add_argument(
            "--out", type=str, default=None, metavar="PATH",
            help="also write the merged fleet registry as a Prometheus "
            "textfile to PATH (refreshed each watch tick)",
        )
        parser.add_argument(
            "--timeout", type=typed_float("--timeout", minimum=0.1),
            default=5.0, metavar="SECONDS",
            help="per-replica scrape timeout (default 5)",
        )

    @classmethod
    def config_from_args(cls, args) -> ExperimentConfig:
        config = super().config_from_args(args)
        for key in ("cache_dir", "watch", "out", "timeout"):
            config.options[key] = getattr(args, key, None)
        return config

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        from repro.service.dash import (
            fleet_summary,
            merge_scrapes,
            render_dashboard,
            scrape_fleet,
        )

        config = config or ExperimentConfig()
        cache_dir = str(config.option("cache_dir", "service-cache"))
        timeout_s = float(config.option("timeout", 5.0) or 5.0)
        watch = config.option("watch")
        out = config.option("out")

        notes = []
        ticks = 0
        while True:
            scrapes = scrape_fleet(cache_dir, timeout_s=timeout_s)
            merged = merge_scrapes(scrapes)
            table = render_dashboard(scrapes, merged)
            if out:
                path = Path(out)
                tmp = path.with_suffix(path.suffix + ".tmp")
                tmp.write_text(merged.to_prometheus())
                tmp.replace(path)
            ticks += 1
            if not watch:
                break
            # Watch mode renders every tick itself (the final table is
            # still returned for the CLI's normal printing on exit).
            print(table, flush=True)
            print(f"-- refreshing every {watch}s (Ctrl-C to stop) --\n")
            try:
                time.sleep(float(watch))
            except KeyboardInterrupt:
                notes.append(f"watch stopped after {ticks} scrapes")
                break

        if out:
            notes.append(f"wrote merged Prometheus textfile {out}")
        unreachable = [s.address for s in scrapes if not s.ok]
        if unreachable:
            notes.append(
                "unreachable replicas: " + ", ".join(unreachable)
            )
        summary = fleet_summary(merged)
        return ExperimentResult(
            name=self.name,
            table=table,
            data={
                "replicas": [
                    {
                        "address": s.address,
                        "ok": s.ok,
                        "error": s.error,
                        "replica_id": s.replica_id,
                        "counters": s.counters,
                    }
                    for s in scrapes
                ],
                "fleet": json.loads(json.dumps(summary)),
                "scrapes": ticks,
            },
            raw=merged,
            notes=notes,
        )
