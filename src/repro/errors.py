"""Typed exception hierarchy for the repro library.

Every anticipated failure mode raises a :class:`ReproError` subclass, so
callers (and the CLI) can distinguish "the model told you something about
your design" from a genuine bug.  The hierarchy is deliberately shallow:

``ReproError``
    Base class; also the catch-all the CLI traps to exit cleanly.
``SingularCircuitError``
    The MNA system has no unique DC solution — classically a floating
    subnetwork.  Carries the :class:`repro.grid.solver.SolveDiagnostics`
    of the failed attempt in :attr:`diagnostics` when the resilient
    solve path produced one.
``ConvergenceError``
    An iterative fallback (Jacobi-preconditioned GMRES, closed-loop
    outer iterations, ...) ran out of iterations without meeting its
    tolerance.
``FaultInjectionError``
    A :class:`repro.faults.FaultPlan` could not be applied: unknown
    element tag, branch index out of range, more conductors failed than
    the bundle holds, or the target circuit was already frozen.
``TaskTimeoutError``
    A supervised sweep task (one topology group) exceeded its
    ``--task-timeout`` deadline; the hung worker was killed and the
    task retried or quarantined.
``QuarantinedTopologyError``
    A topology exhausted its retry budget under the run supervisor and
    was quarantined; the rest of the run continued without it.
``ResumeMismatchError``
    A ``--resume`` run directory does not match the requested sweep: a
    missing or corrupted journal line, a different run fingerprint, or
    a journal written by an incompatible schema.
``FleetTransportError``
    A fleet worker could not reach (or lost) its coordinator beyond its
    patience window; see docs/DISTRIBUTED.md.
``WorkerLostError``
    A fleet worker died while holding a task lease; the task is
    re-leased or quarantined under the normal retry policy.
``TraceDataError``
    ``repro trace`` was pointed at a run directory with no trace, an
    empty trace, or a torn/unparsable trace file.
``ContractViolationError``
    A physics contract (KCL residual, passivity, voltage bounds,
    efficiency range, finite fields, ...) failed at severity ``raise``.
    Carries the full machine-readable
    :class:`repro.contracts.ContractReport` in :attr:`report`.
``SolverBackendError``
    An unknown solver backend was requested (``--solver``,
    ``REPRO_SOLVER`` or the registry API); see docs/SOLVERS.md.
``ServiceOverloadError``
    The exploration service's bounded admission queue was full; the
    query was shed with a 429-style response instead of growing memory
    without bound.  See docs/SERVICE.md.
``DeadlineExceededError``
    A service query overran its per-request deadline (queued too long,
    or the solve outlived the remaining budget).  Subclasses
    :class:`TaskTimeoutError` so supervisor-side timeout handling treats
    the two identically.
``CircuitOpenError``
    The service's circuit breaker is open (the solve backend failed
    repeatedly) and no degraded answer — stale cache entry or
    coarse-grid solve — could be produced either.
``ServiceProtocolError``
    A service request line was malformed: unparsable JSON, an unknown
    request kind, or an invalid query payload (400-style).
``ServiceUnavailableError``
    No live exploration-service replica could be reached: the discovery
    file is missing, or it exists but every address it names is dead
    (a crashed server leaves ``service.json`` behind).  Carries the
    discovery file path so the one-line CLI error names the stale file.
``NotSPDError``
    An ``spd_only`` solver backend (cholesky) was handed a system that
    is not symmetric positive definite.  Inside the escalation ladder
    this is a failed rung, not a fatal error.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(RuntimeError):
    """Base class for all anticipated repro failures."""


class SingularCircuitError(ReproError):
    """The MNA system is singular (typically a floating subnetwork)."""

    def __init__(self, message: str, diagnostics: Optional[Any] = None):
        super().__init__(message)
        #: ``SolveDiagnostics`` of the failed attempt, when available.
        self.diagnostics = diagnostics


class ConvergenceError(ReproError):
    """An iterative solve failed to converge within its budget."""

    def __init__(self, message: str, diagnostics: Optional[Any] = None):
        super().__init__(message)
        self.diagnostics = diagnostics


class FaultInjectionError(ReproError):
    """A fault plan references elements the circuit does not have."""


class TaskTimeoutError(ReproError):
    """A supervised sweep task overran its per-task deadline."""

    def __init__(self, message: str, task: Optional[str] = None,
                 timeout_s: Optional[float] = None):
        super().__init__(message)
        #: Fingerprint/label of the task that timed out, when known.
        self.task = task
        #: The deadline that was exceeded, in seconds.
        self.timeout_s = timeout_s


class QuarantinedTopologyError(ReproError):
    """A topology exhausted its retries and was quarantined."""

    def __init__(self, message: str, task: Optional[str] = None,
                 attempts: int = 0, last_error: Optional[BaseException] = None):
        super().__init__(message)
        #: Fingerprint/label of the quarantined task, when known.
        self.task = task
        #: Attempts consumed before the quarantine decision.
        self.attempts = attempts
        #: The final attempt's exception, when one was captured.
        self.last_error = last_error


class ContractViolationError(ReproError):
    """A physics contract failed at severity ``raise``.

    ``report`` is the :class:`repro.contracts.ContractReport` with every
    check that was evaluated, not just the one that tripped.
    """

    def __init__(self, message: str, report: Optional[Any] = None):
        super().__init__(message)
        self.report = report


class ResumeMismatchError(ReproError):
    """A resume journal does not match the requested run.

    Carries the 1-based ``line`` of the offending journal record when
    the mismatch is a corrupted or truncated line.
    """

    def __init__(self, message: str, line: Optional[int] = None):
        super().__init__(message)
        self.line = line


class FleetTransportError(ReproError):
    """The fleet coordinator/worker transport failed.

    Raised on the *worker* side when the coordinator cannot be reached
    (or stops responding) beyond the worker's patience window.  The
    coordinator side never raises this: transport trouble there degrades
    the run to the in-process execution path instead.
    """

    def __init__(self, message: str, address: Optional[str] = None):
        super().__init__(message)
        #: The "host:port" the worker was talking to, when known.
        self.address = address


class WorkerLostError(ReproError):
    """A fleet worker died mid-task (socket drop or missed heartbeats).

    Recorded as the failing attempt's error for the task whose lease the
    dead worker held; the task is retried elsewhere or quarantined by
    the normal policy.
    """

    def __init__(self, message: str, worker: Optional[str] = None,
                 task: Optional[str] = None):
        super().__init__(message)
        #: Id of the worker that was lost, when known.
        self.worker = worker
        #: Fingerprint of the leased task charged with the failure.
        self.task = task


class SolverBackendError(ReproError):
    """An unknown (or unregistered) solver backend was requested."""


class ServiceOverloadError(ReproError):
    """The service admission queue is full; the query was shed.

    ``queue_depth``/``limit`` describe the queue at shed time, and
    ``retry_after_s`` is the server's backoff hint to the client.
    """

    def __init__(self, message: str, queue_depth: Optional[int] = None,
                 limit: Optional[int] = None,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class DeadlineExceededError(TaskTimeoutError):
    """A service query ran out of its per-request deadline.

    Inherits :class:`TaskTimeoutError` (``task`` holds the query
    fingerprint, ``timeout_s`` the deadline) so callers that already
    handle supervised timeouts handle service deadlines for free.
    """


class CircuitOpenError(ReproError):
    """The breaker is open and no degraded answer was possible.

    ``failures`` is the consecutive-failure count that opened the
    breaker; ``retry_after_s`` how long until the next half-open probe.
    """

    def __init__(self, message: str, failures: Optional[int] = None,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.failures = failures
        self.retry_after_s = retry_after_s


class ServiceProtocolError(ReproError):
    """A malformed service request (bad JSON, kind, or query payload)."""


class ServiceUnavailableError(ReproError):
    """No live service replica answered (stale or missing discovery).

    ``path`` is the ``service.json`` discovery file consulted (when
    any), ``addresses`` the replica addresses that were tried and found
    dead.  A stale file is the classic cause: a SIGKILLed server never
    deregisters, so clients must probe liveness instead of trusting it.
    """

    def __init__(self, message: str, path: Optional[str] = None,
                 addresses: Optional[Any] = None):
        super().__init__(message)
        self.path = path
        self.addresses = list(addresses) if addresses else []


class NotSPDError(ReproError):
    """An ``spd_only`` backend was given a non-SPD system.

    ``reason`` is the short screen verdict ("complex-valued system",
    "non-positive diagonal entry", "asymmetric stamps ...").
    """

    def __init__(self, message: str, reason: Optional[str] = None):
        super().__init__(message)
        self.reason = reason


class TraceDataError(ReproError):
    """A trace file required by ``repro trace`` is missing, empty, or
    torn (unparsable JSONL); carries the offending path."""

    def __init__(self, message: str, path: Optional[str] = None):
        super().__init__(message)
        self.path = path


__all__ = [
    "ReproError",
    "SingularCircuitError",
    "ConvergenceError",
    "FaultInjectionError",
    "TaskTimeoutError",
    "QuarantinedTopologyError",
    "ResumeMismatchError",
    "FleetTransportError",
    "WorkerLostError",
    "TraceDataError",
    "ContractViolationError",
    "SolverBackendError",
    "NotSPDError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "ServiceProtocolError",
    "ServiceUnavailableError",
]
