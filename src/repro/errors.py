"""Typed exception hierarchy for the repro library.

Every anticipated failure mode raises a :class:`ReproError` subclass, so
callers (and the CLI) can distinguish "the model told you something about
your design" from a genuine bug.  The hierarchy is deliberately shallow:

``ReproError``
    Base class; also the catch-all the CLI traps to exit cleanly.
``SingularCircuitError``
    The MNA system has no unique DC solution — classically a floating
    subnetwork.  Carries the :class:`repro.grid.solver.SolveDiagnostics`
    of the failed attempt in :attr:`diagnostics` when the resilient
    solve path produced one.
``ConvergenceError``
    An iterative fallback (Jacobi-preconditioned GMRES, closed-loop
    outer iterations, ...) ran out of iterations without meeting its
    tolerance.
``FaultInjectionError``
    A :class:`repro.faults.FaultPlan` could not be applied: unknown
    element tag, branch index out of range, more conductors failed than
    the bundle holds, or the target circuit was already frozen.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(RuntimeError):
    """Base class for all anticipated repro failures."""


class SingularCircuitError(ReproError):
    """The MNA system is singular (typically a floating subnetwork)."""

    def __init__(self, message: str, diagnostics: Optional[Any] = None):
        super().__init__(message)
        #: ``SolveDiagnostics`` of the failed attempt, when available.
        self.diagnostics = diagnostics


class ConvergenceError(ReproError):
    """An iterative solve failed to converge within its budget."""

    def __init__(self, message: str, diagnostics: Optional[Any] = None):
        super().__init__(message)
        self.diagnostics = diagnostics


class FaultInjectionError(ReproError):
    """A fault plan references elements the circuit does not have."""


__all__ = [
    "ReproError",
    "SingularCircuitError",
    "ConvergenceError",
    "FaultInjectionError",
]
