"""repro — charge-recycled power delivery for many-layer 3D-ICs.

A full reproduction of "A Cross-Layer Design Exploration of
Charge-Recycled Power-Delivery in Many-Layer 3D-IC" (Zhang, Mazumdar,
Meyer, Wang, Skadron, Stan — DAC 2015), including every substrate the
study depends on: a sparse MNA circuit engine, a VoltSpot-style 3D PDN
model with regular and voltage-stacked topologies, Seeman-style SC
converter compact models validated against a transient switched-cap
simulator, Black's-equation EM array lifetimes, McPAT-lite power,
ArchFP-lite floorplanning, PARSEC-like workload statistics, and a
HotSpot-lite thermal screen.

Typical entry points::

    from repro import build_stacked_pdn, build_regular_pdn
    pdn = build_stacked_pdn(n_layers=8, converters_per_core=8)
    result = pdn.solve()
    print(result.max_ir_drop_fraction())

    from repro.core.experiments import compute_fig6
    print(compute_fig6().format())

or, from a shell, ``python -m repro fig6`` (see ``python -m repro -h``).
"""

from repro.config import (
    C4Technology,
    CapacitorTechnology,
    EMParameters,
    OnChipMetal,
    PackageModel,
    PadAllocation,
    ProcessorSpec,
    SCConverterSpec,
    StackConfig,
    TSVTechnology,
    TSVTopology,
    TSV_TOPOLOGIES,
)
from repro.core.scenarios import (
    build_regular_pdn,
    build_stacked_pdn,
    regular_stack,
    stacked_stack,
)
from repro.em import expected_em_lifetime, median_lifetimes_from_currents
from repro.errors import (
    ConvergenceError,
    FaultInjectionError,
    ReproError,
    SingularCircuitError,
)
from repro.faults import (
    FaultPlan,
    FaultReport,
    em_fault_plan,
    severed_layer_plan,
    uniform_fault_plan,
)
from repro.grid import Circuit, SolveDiagnostics
from repro.pdn import PDNResult, RegularPDN3D, StackedPDN3D
from repro.power import CorePowerModel, PowerMap, layer_power_map
from repro.runtime import (
    PDNSpec,
    SweepEngine,
    SweepOutcome,
    SweepPoint,
    SweepResult,
)
from repro.regulator import (
    ClosedLoopControl,
    OpenLoopControl,
    SCCompactModel,
    SwitchCapSimulator,
)
from repro.thermal import HotSpotLite, max_feasible_layers
from repro.workload import (
    PARSEC_APPLICATIONS,
    interleaved_layer_activities,
    sample_suite,
)

__version__ = "1.0.0"

__all__ = [
    "C4Technology",
    "CapacitorTechnology",
    "EMParameters",
    "OnChipMetal",
    "PackageModel",
    "PadAllocation",
    "ProcessorSpec",
    "SCConverterSpec",
    "StackConfig",
    "TSVTechnology",
    "TSVTopology",
    "TSV_TOPOLOGIES",
    "build_regular_pdn",
    "build_stacked_pdn",
    "regular_stack",
    "stacked_stack",
    "expected_em_lifetime",
    "median_lifetimes_from_currents",
    "ReproError",
    "SingularCircuitError",
    "ConvergenceError",
    "FaultInjectionError",
    "FaultPlan",
    "FaultReport",
    "em_fault_plan",
    "severed_layer_plan",
    "uniform_fault_plan",
    "Circuit",
    "SolveDiagnostics",
    "PDNResult",
    "RegularPDN3D",
    "StackedPDN3D",
    "PDNSpec",
    "SweepEngine",
    "SweepPoint",
    "SweepOutcome",
    "SweepResult",
    "CorePowerModel",
    "PowerMap",
    "layer_power_map",
    "ClosedLoopControl",
    "OpenLoopControl",
    "SCCompactModel",
    "SwitchCapSimulator",
    "HotSpotLite",
    "max_feasible_layers",
    "PARSEC_APPLICATIONS",
    "interleaved_layer_activities",
    "sample_suite",
    "__version__",
]
