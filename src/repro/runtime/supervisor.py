"""Resilient run supervision for long sweeps.

:class:`RunSupervisor` wraps a :class:`repro.runtime.engine.SweepEngine`
in a fault-tolerant run lifecycle while keeping the engine's calling
convention (``run(points, extract, bench_name)``), so every experiment
and the design-space explorer can be supervised without code changes:

* Each topology group becomes a *task* with a content fingerprint
  (spec key + fault-plan description + member activities).  A
  write-ahead journal (:mod:`repro.runtime.journal`) records every
  finished task with its pickled values, so ``--resume <run_dir>``
  restores completed tasks bit-for-bit and only re-runs the remainder.

* Failing tasks are retried with exponential backoff and jitter.  A
  task that exhausts ``max_retries`` is *quarantined*: the run keeps
  going, the task's points come back as ``None`` (or as outcomes
  carrying a :class:`repro.errors.QuarantinedTopologyError`), and the
  final :class:`RunReport` names the quarantined fingerprints.

* In process mode, worker crashes (``BrokenProcessPool``) and hung
  workers (``task_timeout`` deadlines) are detected; the pool is
  killed and rebuilt transparently, the victim task is charged an
  attempt, and innocent in-flight tasks are requeued for free.

Task state machine::

    pending -> running -> done
                 |  ^        \\-> (journaled, restored on resume)
                 v  |
              retrying -> quarantined

The supervisor degrades gracefully: unless ``fail_fast`` is set, a run
always returns a partial result set plus a machine-readable
:class:`RunReport` (also written as ``report-<fingerprint>.json`` into
the run directory) instead of raising.
"""

from __future__ import annotations

import hashlib
import json
import logging
import pathlib
import pickle
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    QuarantinedTopologyError,
    ReproError,
    ResumeMismatchError,
    TaskTimeoutError,
)
from repro.grid.backends import default_backend_name, resolve_backend
from repro.obs.logs import get_logger
from repro.obs.trace import get_tracer
from repro.runtime.engine import (
    GroupKey,
    SweepEngine,
    SweepOutcome,
    SweepPoint,
    SweepResult,
    _run_group_remote,
    group_points,
)
from repro.runtime.fingerprint import (
    _plan_description,  # noqa: F401  (re-exported for compatibility)
    _stable_repr,  # noqa: F401
    run_fingerprint,
    task_fingerprint,
)
from repro.runtime.journal import (
    RunJournal,
    atomic_write_text,
    clean_stale_tmp,
    decode_payload,
    encode_payload,
)
from repro.runtime.metrics import (
    GroupMetrics,
    SweepMetrics,
    maybe_write_bench_json,
)

__all__ = [
    "SupervisorConfig",
    "TaskRecord",
    "RunReport",
    "SupervisedResult",
    "RunSupervisor",
    "task_fingerprint",
    "run_fingerprint",
]

#: Schema version of the emitted report-<fp>.json files.
#: v2 added the physics-contract histogram ("contracts").
#: v3 added the fleet counters (leases_expired, worker_deaths,
#: reassignments) and the per-worker accounting list ("workers") —
#: additive, so v2 readers keep working.
REPORT_SCHEMA = 3


#: Module logger (JSON-line records via repro.obs.logs).
_log = get_logger(__name__)


# ----------------------------------------------------------------------
# Fingerprints live in repro.runtime.fingerprint (shared with the engine
# and the trace exporters); task_fingerprint / run_fingerprint are
# re-exported here for compatibility.
# ----------------------------------------------------------------------
# Configuration and reporting dataclasses
# ----------------------------------------------------------------------

@dataclass
class SupervisorConfig:
    """Knobs of the supervised run lifecycle (all CLI-settable)."""

    #: Retries per task after its first attempt (so a task gets
    #: ``max_retries + 1`` attempts before quarantine).
    max_retries: int = 2
    #: Per-task wall-clock deadline in seconds; None disables deadline
    #: monitoring.  Enforcement requires process mode (a hung in-process
    #: solve cannot be interrupted).
    task_timeout: Optional[float] = None
    #: Abort the run on the first task failure instead of retrying.
    fail_fast: bool = False
    #: Directory for the write-ahead journal and run report; None
    #: disables journaling (retry/quarantine still work).
    run_dir: Optional[str] = None
    #: Replay an existing journal in ``run_dir`` before running.
    resume: bool = False
    #: With ``resume``: truncate the journal at its first corrupted
    #: record (logged) instead of refusing with ResumeMismatchError.
    salvage: bool = False
    #: Process fan-out width; None inherits the wrapped engine's.
    workers: Optional[int] = None
    #: Coordinator bind address ("host:port") for the distributed sweep
    #: fleet; None keeps everything in-process.  With an address set,
    #: tasks are leased to connected ``repro worker`` processes and the
    #: run degrades transparently to the in-process path when no worker
    #: ever connects (or the transport cannot be brought up).
    fleet: Optional[str] = None
    #: Per-lease deadline; an expired lease is reassigned (the frozen
    #: worker's late result is dropped by the idempotent commit).
    lease_timeout_s: float = 60.0
    #: How long the coordinator waits for a first worker before falling
    #: back to the in-process execution path.
    fleet_wait_s: float = 10.0
    #: Worker heartbeat period; a worker silent for
    #: ``heartbeat_grace * heartbeat_s`` is declared dead.
    heartbeat_s: float = 2.0
    heartbeat_grace: float = 4.0
    #: Failed attempts a single worker may accumulate before the
    #: coordinator stops leasing to it (its own quarantine).
    worker_max_failures: int = 3
    #: Exponential backoff: base * 2**(attempt-1), capped, jittered.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0
    backoff_jitter: float = 0.25
    #: Future-wait granularity (also bounds deadline-check latency).
    poll_interval_s: float = 0.05
    #: Print the one-line run summary to stderr after each run.
    verbose: bool = False


@dataclass
class TaskRecord:
    """Public per-task accounting, embedded in the run report."""

    fingerprint: str
    label: str
    status: str = "pending"  # pending|running|retrying|done|quarantined|resumed
    attempts: int = 0
    timeouts: int = 0
    wall_s: float = 0.0
    n_points: int = 0
    error: Optional[str] = None


@dataclass
class RunReport:
    """Machine-readable outcome of one supervised run."""

    run_fingerprint: str
    n_points: int
    tasks: List[TaskRecord] = field(default_factory=list)
    mode: str = "serial"
    wall_s: float = 0.0
    pool_rebuilds: int = 0
    escalation_histogram: Dict[str, int] = field(default_factory=dict)
    #: Physics-contract status counts over the run's points (check
    #: statuses plus "degraded_points"); see BENCH schema v3.
    contract_histogram: Dict[str, int] = field(default_factory=dict)
    #: Fleet robustness counters (zero for in-process runs).
    leases_expired: int = 0
    worker_deaths: int = 0
    reassignments: int = 0
    #: Per-worker accounting dicts from the fleet coordinator
    #: (worker id, tasks done, failures, clean shutdown vs death).
    workers: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[TaskRecord]:
        return [t for t in self.tasks if t.status in ("done", "resumed")]

    @property
    def resumed(self) -> List[TaskRecord]:
        return [t for t in self.tasks if t.status == "resumed"]

    @property
    def retried(self) -> List[TaskRecord]:
        return [t for t in self.tasks if t.status != "resumed" and t.attempts > 1]

    @property
    def quarantined(self) -> List[TaskRecord]:
        return [t for t in self.tasks if t.status == "quarantined"]

    def quarantined_fingerprints(self) -> List[str]:
        return [t.fingerprint for t in self.quarantined]

    @property
    def n_timeouts(self) -> int:
        return sum(t.timeouts for t in self.tasks)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA,
            "run_fingerprint": self.run_fingerprint,
            "mode": self.mode,
            "wall_s": round(self.wall_s, 6),
            "n_points": self.n_points,
            "n_tasks": len(self.tasks),
            "completed": len(self.completed),
            "resumed": len(self.resumed),
            "retried": len(self.retried),
            "timeouts": self.n_timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": self.quarantined_fingerprints(),
            "escalations": dict(self.escalation_histogram),
            "contracts": dict(self.contract_histogram),
            "fleet": {
                "leases_expired": self.leases_expired,
                "worker_deaths": self.worker_deaths,
                "reassignments": self.reassignments,
                "workers": [dict(w) for w in self.workers],
            },
            "tasks": [asdict(t) for t in self.tasks],
        }

    def summary(self) -> str:
        fleet = ""
        if self.leases_expired or self.worker_deaths or self.reassignments:
            fleet = (
                f", {self.worker_deaths} worker death(s), "
                f"{self.leases_expired} lease(s) expired, "
                f"{self.reassignments} reassignment(s)"
            )
        return (
            f"run {self.run_fingerprint}: {len(self.completed)}/"
            f"{len(self.tasks)} task(s) done "
            f"({len(self.resumed)} resumed, {len(self.retried)} retried, "
            f"{len(self.quarantined)} quarantined, "
            f"{self.pool_rebuilds} pool rebuild(s){fleet}) "
            f"in {self.wall_s:.2f}s"
        )


@dataclass
class SupervisedResult(SweepResult):
    """A SweepResult plus the supervisor's run report."""

    report: Optional[RunReport] = None


@dataclass
class _Task:
    """Internal mutable task state tracked across attempts."""

    fingerprint: str
    label: str
    key: GroupKey
    members: List[Tuple[int, SweepPoint]]
    attempts: int = 0
    timeouts: int = 0
    ready_at: float = 0.0
    started_at: float = 0.0
    wall_s: float = 0.0
    last_error: Optional[BaseException] = None


@dataclass
class _RunState:
    """Shared mutable state of one supervised run.

    Every execution backend — serial, process pool, and the distributed
    fleet coordinator — routes its outcomes through the same commit /
    retry / quarantine core by mutating one of these.  ``queue`` holds
    tasks awaiting (re-)execution; ``_handle_failure`` pushes retries
    back onto it with their backoff ``ready_at`` stamped.
    """

    values: List[Any]
    metrics: SweepMetrics
    records: Dict[str, TaskRecord]
    journal: Optional[RunJournal]
    extract: Optional[Callable[[SweepOutcome], Any]]
    queue: List[_Task] = field(default_factory=list)
    #: Per-worker accounting dicts filled in by the fleet coordinator.
    fleet_workers: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, task: _Task) -> TaskRecord:
        return self.records[task.fingerprint]

    def committed(self, task: _Task) -> bool:
        """True once the task's result landed (idempotence guard)."""
        return self.records[task.fingerprint].status in ("done", "resumed")


def _pool_worker_init() -> None:
    """Detach inherited signal plumbing in pool worker processes.

    Forked workers inherit the parent's Python signal handlers *and*
    its signal wakeup fd — asyncio's self-pipe when the parent runs an
    event loop (``repro serve``).  Without this reset, terminating a
    worker (``_kill_pool``, deadline teardown) makes the *worker's*
    inherited C handler write the signal number into the shared pipe,
    which the parent's loop then dispatches as if the parent itself had
    been signalled — a clean pool shutdown would drain the service.
    """
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------

class RunSupervisor:
    """Fault-tolerant wrapper around a :class:`SweepEngine`.

    Duck-types the engine surface (``run`` / ``cache_info`` /
    ``clear_cache`` / ``workers``) so it can be dropped anywhere an
    engine is accepted — experiments, the explorer, tools.
    """

    def __init__(
        self,
        engine: Optional[SweepEngine] = None,
        config: Optional[SupervisorConfig] = None,
        **overrides: Any,
    ):
        if config is None:
            config = SupervisorConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.engine = engine or SweepEngine(workers=config.workers)
        #: Report of the most recent run (headline-style multi-run
        #: callers find all of them in :attr:`reports`).
        self.last_report: Optional[RunReport] = None
        self.reports: List[RunReport] = []

    # ------------------------------------------------------------------
    # Engine-compatible surface
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        if self.config.workers is not None:
            return max(1, int(self.config.workers))
        return self.engine.workers

    def cache_info(self) -> Dict[str, int]:
        return self.engine.cache_info()

    def clear_cache(self) -> None:
        self.engine.clear_cache()

    def deadline_scoped(self, remaining_s: float) -> "RunSupervisor":
        """A supervisor for one deadline-bounded run over the same engine.

        The exploration service (:mod:`repro.service`) threads each
        query's remaining deadline budget into the supervisor's
        task-timeout machinery through this hook: the clone shares the
        engine (so structure-cache reuse survives) but clamps
        ``task_timeout`` to ``remaining_s`` — an already-tighter
        configured timeout wins.  In process mode that makes the
        deadline *enforced* (the hung worker is killed), not just
        observed.  Journaling and resume are disabled on the clone: a
        per-query run is request-scoped, not a checkpointed sweep.
        """
        remaining_s = max(0.001, float(remaining_s))
        timeout = self.config.task_timeout
        clamped = remaining_s if timeout is None else min(timeout, remaining_s)
        config = replace(
            self.config,
            task_timeout=clamped,
            run_dir=None,
            resume=False,
            salvage=False,
            verbose=False,
            # A per-query clone must never spin up its own one-run fleet
            # coordinator: the service fans misses out through its own
            # persistent ServiceFleet instead.
            fleet=None,
        )
        clone = RunSupervisor(engine=self.engine, config=config)
        # Share report history so service callers see per-query reports.
        clone.reports = self.reports
        return clone

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[SweepPoint],
        extract: Optional[Callable[[SweepOutcome], Any]] = None,
        bench_name: Optional[str] = None,
    ) -> SupervisedResult:
        """Evaluate every point under the supervised lifecycle.

        Same contract as :meth:`SweepEngine.run`, except that task
        failures are retried/quarantined rather than raised (unless
        ``fail_fast``) and the result carries a :class:`RunReport`.
        """
        t_start = time.perf_counter()
        points = list(points)
        solver = resolve_backend(default_backend_name()).name
        groups = group_points(points, solver)
        tasks = [
            _Task(
                fingerprint=task_fingerprint(key, members),
                label=self.engine._key_label(key),
                key=key,
                members=members,
            )
            for key, members in groups.items()
        ]
        run_fp = run_fingerprint([t.fingerprint for t in tasks], len(points))
        tracer = get_tracer()
        if tracer.enabled and tracer.trace_id is None:
            tracer.set_trace_id(run_fp)

        metrics = SweepMetrics(
            workers=self.workers, run_fingerprint=run_fp, solver=solver
        )
        values: List[Any] = [None] * len(points)
        records: Dict[str, TaskRecord] = {
            task.fingerprint: TaskRecord(
                fingerprint=task.fingerprint,
                label=task.label,
                n_points=len(task.members),
            )
            for task in tasks
        }

        with tracer.span(
            "sweep",
            run_fingerprint=run_fp,
            n_points=len(points),
            n_groups=len(tasks),
            workers=self.workers,
            supervised=True,
        ) as sweep_span:
            journal, journaled = self._open_journal(run_fp, tasks, len(points))
            state = _RunState(
                values=values,
                metrics=metrics,
                records=records,
                journal=journal,
                extract=extract,
            )
            pending = self._restore(tasks, journaled, state)

            if pending and self.config.fleet is not None:
                # Distributed path; returns whatever it could not place
                # on workers (everything, when the transport is down or
                # no worker ever connected) for the in-process paths.
                from repro.runtime.fleet import execute_fleet

                pending = execute_fleet(self, pending, state)
            if pending:
                if self._use_processes(pending, extract):
                    if metrics.mode == "serial":
                        metrics.mode = "process"
                    self._execute_process(pending, state)
                else:
                    self._execute_serial(pending, state)
            sweep_span.set(mode=metrics.mode, resumed=metrics.resumed)

        # Stable first-appearance ordering, matching the plain engine.
        order = {task.label: i for i, task in enumerate(tasks)}
        metrics.groups.sort(key=lambda g: order.get(g.key, len(order)))

        info = self.cache_info()
        metrics.cache_hits = info["hits"]
        metrics.cache_misses = info["misses"]
        metrics.cache_rebuilds = info["rebuilds"]
        metrics.retries = sum(
            max(0, r.attempts - 1)
            for r in records.values()
            if r.status != "resumed"
        )
        metrics.quarantined = len(
            [r for r in records.values() if r.status == "quarantined"]
        )
        metrics.timeouts = sum(r.timeouts for r in records.values())
        metrics.wall_s = time.perf_counter() - t_start

        report = RunReport(
            run_fingerprint=run_fp,
            n_points=len(points),
            tasks=[records[task.fingerprint] for task in tasks],
            mode=metrics.mode,
            wall_s=metrics.wall_s,
            pool_rebuilds=metrics.pool_rebuilds,
            escalation_histogram=metrics.escalation_histogram(),
            contract_histogram=metrics.contract_histogram(),
            leases_expired=metrics.leases_expired,
            worker_deaths=metrics.worker_deaths,
            reassignments=metrics.reassignments,
            workers=state.fleet_workers,
        )
        self.last_report = report
        self.reports.append(report)
        if self.config.run_dir is not None:
            path = pathlib.Path(self.config.run_dir) / f"report-{run_fp}.json"
            atomic_write_text(
                path, json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
            )
        maybe_write_bench_json(bench_name, metrics.to_json())
        if tracer.enabled:
            from repro.obs.export import flush_spans

            flush_spans(tracer.drain(), run_fp, trace_id=tracer.trace_id)
        if self.config.verbose:
            # --verbose promises the summary on stderr regardless of the
            # configured log level, so lift the logger floor to INFO.
            root = logging.getLogger("repro")
            if root.level > logging.INFO:
                root.setLevel(logging.INFO)
            _log.info(
                report.summary(),
                extra={
                    "run_fingerprint": run_fp,
                    "mode": metrics.mode,
                    "quarantined": len(report.quarantined),
                    "retried": len(report.retried),
                },
            )
        return SupervisedResult(values=values, metrics=metrics, report=report)

    # ------------------------------------------------------------------
    # Journal / resume
    # ------------------------------------------------------------------
    def _open_journal(
        self, run_fp: str, tasks: List[_Task], n_points: int
    ) -> Tuple[Optional[RunJournal], Dict[str, Dict]]:
        config = self.config
        if config.run_dir is None:
            if config.resume:
                raise ResumeMismatchError(
                    "--resume requires a run directory"
                )
            return None, {}
        run_dir = pathlib.Path(config.run_dir)
        path = run_dir / f"journal-{run_fp}.jsonl"
        header = {
            "run_fingerprint": run_fp,
            "n_points": n_points,
            "n_tasks": len(tasks),
        }
        if config.resume:
            if not run_dir.exists():
                raise ResumeMismatchError(
                    f"resume directory {run_dir} does not exist"
                )
            # A crash mid-atomic-write strands a *.tmp beside the real
            # artifact (journal, trace, report — durable or not); the
            # stranded bytes are superseded and must not be read.
            clean_stale_tmp(run_dir)
            if not path.exists():
                # This sub-run never started before the interruption
                # (multi-run experiments journal each run separately):
                # nothing to replay, start a fresh journal.
                return RunJournal.start(path, header), {}
            journal, loaded, records = RunJournal.open_existing(
                path, salvage=config.salvage
            )
            if loaded.get("run_fingerprint") != run_fp:
                raise ResumeMismatchError(
                    f"journal {path} was written for run "
                    f"{loaded.get('run_fingerprint')!r}, not {run_fp}",
                    line=1,
                )
            if loaded.get("n_points") != n_points:
                raise ResumeMismatchError(
                    f"journal {path} covers {loaded.get('n_points')} "
                    f"point(s) but this sweep has {n_points}",
                    line=1,
                )
            known = {task.fingerprint for task in tasks}
            for fingerprint in records:
                if fingerprint not in known:
                    raise ResumeMismatchError(
                        f"journal {path} records task {fingerprint} which "
                        "is not part of this sweep"
                    )
            return journal, records
        run_dir.mkdir(parents=True, exist_ok=True)
        return RunJournal.start(path, header), {}

    def _restore(
        self,
        tasks: List[_Task],
        journaled: Dict[str, Dict],
        state: _RunState,
    ) -> List[_Task]:
        """Replay journaled tasks; return the tasks still to run."""
        values = state.values
        metrics = state.metrics
        records = state.records
        pending: List[_Task] = []
        for task in tasks:
            entry = journaled.get(task.fingerprint)
            payload = entry.get("payload") if entry else None
            if entry is None or entry.get("status") != "done" or not payload:
                # Unknown, quarantined, or journaled without a picklable
                # payload: run (or re-run) it.
                pending.append(task)
                continue
            try:
                task_values = decode_payload(payload)
            except Exception as exc:
                raise ResumeMismatchError(
                    f"journal payload of task {task.fingerprint} is "
                    f"unreadable: {exc}"
                ) from None
            if len(task_values) != len(task.members):
                raise ResumeMismatchError(
                    f"journal payload of task {task.fingerprint} holds "
                    f"{len(task_values)} value(s) for {len(task.members)} "
                    "point(s)"
                )
            for (index, _), value in zip(task.members, task_values):
                values[index] = value
            group = entry.get("metrics")
            if isinstance(group, dict):
                try:
                    metrics.groups.append(GroupMetrics(**group))
                except TypeError:
                    metrics.groups.append(
                        GroupMetrics(key=task.label, n_points=len(task.members))
                    )
            record = records[task.fingerprint]
            record.status = "resumed"
            record.attempts = int(entry.get("attempts", 1))
            record.timeouts = int(entry.get("timeouts", 0))
            record.wall_s = float(entry.get("wall_s", 0.0))
            metrics.resumed += 1
        return pending

    def _journal_task(
        self,
        journal: Optional[RunJournal],
        task: _Task,
        record: TaskRecord,
        group_metrics: Optional[GroupMetrics],
        task_values: Optional[List[Any]],
    ) -> None:
        if journal is None:
            return
        journal.append(
            {
                "kind": "task",
                "fingerprint": task.fingerprint,
                "label": task.label,
                "status": record.status,
                "attempts": record.attempts,
                "timeouts": record.timeouts,
                "wall_s": round(record.wall_s, 6),
                "indices": [index for index, _ in task.members],
                "error": record.error,
                "metrics": asdict(group_metrics) if group_metrics else None,
                "payload": (
                    encode_payload(task_values)
                    if task_values is not None
                    else None
                ),
            }
        )

    # ------------------------------------------------------------------
    # Failure bookkeeping shared by every execution path (serial,
    # process pool, distributed fleet)
    # ------------------------------------------------------------------
    def _backoff_delay(self, attempts: int, fingerprint: str = "") -> float:
        """Exponential backoff with *deterministic* jitter.

        The jitter is a pure function of (task fingerprint, attempt):
        two runs of the same sweep produce identical retry schedules, so
        supervised timing behaviour is reproducible and never depends on
        how many times any global RNG was consumed beforehand.  Distinct
        tasks still spread out (different fingerprints, different
        jitter), which is all the jitter is for.
        """
        config = self.config
        if config.backoff_base_s <= 0:
            return 0.0
        delay = min(
            config.backoff_cap_s,
            config.backoff_base_s * (2 ** max(0, attempts - 1)),
        )
        digest = hashlib.sha256(
            f"{fingerprint}:{attempts}".encode("ascii", "backslashreplace")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        return delay * (1.0 + config.backoff_jitter * unit)

    @staticmethod
    def _record_task_span(task: _Task, status: str) -> None:
        """Synthesise a "task" span covering the task's attempts.

        Worker-side spans only come home on success, so this parent-side
        record is what keeps retried and quarantined attempts visible in
        the trace (``repro trace`` attributes retries from it).
        """
        get_tracer().record(
            "task",
            task.wall_s,
            fingerprint=task.fingerprint,
            key=task.label,
            attempts=task.attempts,
            timeouts=task.timeouts,
            status=status,
            error=(
                type(task.last_error).__name__
                if status != "done" and task.last_error is not None
                else None
            ),
        )

    def _commit(
        self,
        task: _Task,
        group_values: List[Any],
        group_metrics: GroupMetrics,
        state: _RunState,
    ) -> bool:
        """Land one finished task's values; idempotent by fingerprint.

        At-least-once backends (the fleet reassigns expired leases, so a
        frozen worker's late result can race its replacement's) call
        this for every delivery; only the first per fingerprint commits.
        Returns True when the commit landed, False for a duplicate.
        """
        if state.committed(task):
            return False
        for (index, _), value in zip(task.members, group_values):
            state.values[index] = value
        state.metrics.groups.append(group_metrics)
        record = state.record(task)
        record.status = "done"
        record.attempts = task.attempts
        record.timeouts = task.timeouts
        record.wall_s = task.wall_s
        self._record_task_span(task, "done")
        self._journal_task(
            state.journal, task, record, group_metrics, group_values
        )
        return True

    def _quarantine(self, task: _Task, state: _RunState) -> None:
        record = state.record(task)
        record.status = "quarantined"
        record.attempts = task.attempts
        record.timeouts = task.timeouts
        record.wall_s = task.wall_s
        if task.last_error is not None:
            record.error = (
                f"{type(task.last_error).__name__}: {task.last_error}"
            )
        error = QuarantinedTopologyError(
            f"topology {task.label} ({task.fingerprint}) quarantined after "
            f"{task.attempts} attempt(s): {record.error or 'unknown error'}",
            task=task.fingerprint,
            attempts=task.attempts,
            last_error=task.last_error,
        )
        self._record_task_span(task, "quarantined")
        _log.warning(
            "task quarantined",
            extra={
                "task": task.fingerprint,
                "key": task.label,
                "attempts": task.attempts,
                "error": record.error,
            },
        )
        if state.extract is None:
            # Raw-outcome callers still get one entry per point, each
            # carrying the typed quarantine error.
            for index, point in task.members:
                state.values[index] = SweepOutcome(point=point, error=error)
        self._journal_task(state.journal, task, record, None, None)

    def _handle_failure(self, task: _Task, state: _RunState) -> None:
        """Route one failed attempt: fail-fast, retry, or quarantine."""
        if self.config.fail_fast:
            error = task.last_error
            if isinstance(error, ReproError):
                raise error
            raise ReproError(
                f"fail-fast: task {task.label} ({task.fingerprint}) "
                f"failed on attempt {task.attempts}: {error}"
            ) from error
        if task.attempts > self.config.max_retries:
            self._quarantine(task, state)
            return
        state.record(task).status = "retrying"
        task.ready_at = time.monotonic() + self._backoff_delay(
            task.attempts, task.fingerprint
        )
        state.queue.append(task)

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------
    def _execute_serial(self, tasks: List[_Task], state: _RunState) -> None:
        queue = state.queue
        queue.extend(tasks)
        while queue:
            task = queue.pop(0)
            delay = task.ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            state.record(task).status = "running"
            task.attempts += 1
            t0 = time.perf_counter()
            try:
                group_metrics = self.engine._run_group_local(
                    task.key, task.members, state.extract, state.values
                )
            except Exception as exc:
                task.wall_s += time.perf_counter() - t0
                task.last_error = exc
                self._handle_failure(task, state)
                continue
            task.wall_s += time.perf_counter() - t0
            group_values = [state.values[index] for index, _ in task.members]
            # _run_group_local already wrote the values; record the
            # commit bookkeeping (it cannot be a duplicate here).
            record = state.record(task)
            record.status = "done"
            record.attempts = task.attempts
            record.timeouts = task.timeouts
            record.wall_s = task.wall_s
            state.metrics.groups.append(group_metrics)
            self._record_task_span(task, "done")
            self._journal_task(
                state.journal, task, record, group_metrics, group_values
            )

    # ------------------------------------------------------------------
    # Process execution (crash + deadline monitoring)
    # ------------------------------------------------------------------
    def _use_processes(
        self, tasks: List[_Task], extract: Optional[Callable]
    ) -> bool:
        if extract is None:
            return False
        if self.workers <= 1 and self.config.task_timeout is None:
            return False
        try:
            pickle.dumps(extract)
            for task in tasks:
                pickle.dumps(task.members[0][1].fault_plan)
        except Exception:
            return False
        return True

    def _new_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers, initializer=_pool_worker_init
        )

    @staticmethod
    def _kill_pool(pool) -> None:
        """Tear a pool down hard, terminating hung workers."""
        try:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        except Exception:
            pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _rebuild_pool(self, pool, metrics: SweepMetrics):
        self._kill_pool(pool)
        metrics.pool_rebuilds += 1
        return self._new_pool()

    def _execute_process(self, tasks: List[_Task], state: _RunState) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        config = self.config
        extract = state.extract
        metrics = state.metrics
        records = state.records
        queue = state.queue
        queue.extend(tasks)
        inflight: Dict[Any, Tuple[_Task, Optional[float]]] = {}
        tracer = get_tracer()
        trace_ctx = tracer.worker_context()
        pool = self._new_pool()
        try:
            while queue or inflight:
                now = time.monotonic()
                # Launch every ready task while worker capacity remains.
                for task in [t for t in queue if t.ready_at <= now]:
                    if len(inflight) >= self.workers:
                        break
                    queue.remove(task)
                    records[task.fingerprint].status = "running"
                    task.attempts += 1
                    task.started_at = time.monotonic()
                    plan = task.members[0][1].fault_plan
                    try:
                        future = pool.submit(
                            _run_group_remote,
                            task.key[0],
                            plan,
                            tuple(point for _, point in task.members),
                            task.key[2],
                            extract,
                            task.label,
                            trace_ctx,
                            task.key[3] if len(task.key) > 3 else None,
                        )
                    except Exception:
                        # Pool already broken before the submit landed:
                        # not the task's fault, rebuild and requeue free.
                        task.attempts -= 1
                        queue.append(task)
                        pool = self._rebuild_pool(pool, metrics)
                        break
                    deadline = (
                        None
                        if config.task_timeout is None
                        else task.started_at + config.task_timeout
                    )
                    inflight[future] = (task, deadline)

                if not inflight:
                    if not queue:
                        break
                    # Everything queued is backing off: sleep until the
                    # earliest ready_at (bounded for responsiveness).
                    wake = min(t.ready_at for t in queue)
                    time.sleep(
                        max(0.0, min(wake - time.monotonic(), 0.2))
                    )
                    continue

                done, _ = wait(
                    set(inflight),
                    timeout=config.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    task, _deadline = inflight.pop(future)
                    task.wall_s += time.monotonic() - task.started_at
                    try:
                        group_values, group_metrics, spans = future.result()
                        tracer.adopt(spans)
                    except BrokenProcessPool as exc:
                        # Worker crash: the task on the crashed worker is
                        # charged an attempt; the pool must be rebuilt.
                        task.last_error = exc
                        broken = True
                        self._handle_failure(task, state)
                    except Exception as exc:
                        task.last_error = exc
                        self._handle_failure(task, state)
                    else:
                        self._commit(task, group_values, group_metrics, state)
                if broken:
                    # Innocent in-flight siblings are requeued for free.
                    for future, (task, _d) in list(inflight.items()):
                        task.wall_s += time.monotonic() - task.started_at
                        task.attempts -= 1
                        task.ready_at = 0.0
                        records[task.fingerprint].status = "pending"
                        queue.append(task)
                    inflight.clear()
                    pool = self._rebuild_pool(pool, metrics)
                    continue

                # Deadline scan: a hung worker cannot be cancelled, so an
                # expired task forces a pool kill; victims sharing the
                # pool are requeued without an attempt charge.
                now = time.monotonic()
                expired = {
                    future
                    for future, (_t, deadline) in inflight.items()
                    if deadline is not None and now > deadline
                }
                expired = {f for f in expired if not f.done()}
                if expired:
                    for future, (task, _d) in list(inflight.items()):
                        task.wall_s += time.monotonic() - task.started_at
                        if future in expired:
                            task.timeouts += 1
                            metrics.timeouts += 1
                            task.last_error = TaskTimeoutError(
                                f"task {task.label} ({task.fingerprint}) "
                                f"exceeded its {config.task_timeout:g}s "
                                "deadline",
                                task=task.fingerprint,
                                timeout_s=config.task_timeout,
                            )
                            self._handle_failure(task, state)
                        else:
                            task.attempts -= 1
                            task.ready_at = 0.0
                            records[task.fingerprint].status = "pending"
                            queue.append(task)
                    inflight.clear()
                    pool = self._rebuild_pool(pool, metrics)
        finally:
            self._kill_pool(pool)
