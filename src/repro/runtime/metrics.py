"""Stage-level instrumentation of the sweep engine.

Every :meth:`repro.runtime.engine.SweepEngine.run` produces a
:class:`SweepMetrics`: wall time and solve counts per topology group
(build, factorise, batched solve, per-point post-processing) plus run
totals.  Metrics serialise to a stable machine-readable JSON layout so
``BENCH_*.json`` files are diffable across PRs and the performance
trajectory of the hot paths finally has data behind it.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

#: Schema version of the emitted JSON; bump on layout changes.
#: v2 added the robustness counters (retries, quarantined,
#: pool_rebuilds, escalation histogram) and per-group executed/escalations.
#: v3 added the physics-contract histogram ("contracts": per-run check
#: status counts + degraded-point count) and per-group contract timing
#: ("contracts_s"), so contract-checking overhead is tracked in BENCH.
#: v4 added "run_fingerprint" (joins BENCH files with report-<fp>.json /
#: journal-<fp>.jsonl / trace-<fp>.jsonl from the same run) and made the
#: aggregate fields views over a typed repro.obs.metrics registry.
#: v5 added the distributed-fleet counters to "totals" (leases_expired,
#: worker_deaths, reassignments) and the "fleet" run mode — additive,
#: so v4 readers keep working.
#: v6 added the solver-backend fields: run-level "solver" (the registry
#: name the sweep ran under) and per-group "backend" — additive, so v5
#: readers keep working.
#: v7 added the exploration-service counter block: ``BENCH_service*.json``
#: files written by :mod:`repro.service` share this schema number and
#: carry a "service" section (cache hit/miss/evict, shed, coalesced,
#: solve and breaker-transition counters plus the breaker state).
#: Sweep-level BENCH files are unchanged — additive, v6 readers keep
#: working.
#: v8 extended the "service" section with typed-telemetry views:
#: "latency" (per-query histogram count/sum, outcome breakdown and
#: p50/p95/p99 bucket estimates) and "slo" (latency objective, ok vs
#: breached counts, error-budget burn fraction) — additive, v7 readers
#: keep working.
BENCH_SCHEMA = 8

#: Environment variable naming a directory to auto-write BENCH files to.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


@dataclass
class GroupMetrics:
    """Timings for one topology group (one build + one factorisation)."""

    #: Human-readable group identity (spec label + fault-plan marker).
    key: str
    n_points: int = 0
    #: Netlist construction (and fault-plan application) time.
    build_s: float = 0.0
    #: MNA assembly + LU factorisation time.
    factorize_s: float = 0.0
    #: Batched (or fallback per-point) solve time.
    solve_s: float = 0.0
    #: Per-point extraction / post-processing time.
    post_s: float = 0.0
    #: Linear-system solve calls issued (1 for a clean batched group).
    n_solve_calls: int = 0
    #: True when the group was served from the structure cache.
    cached: bool = False
    #: True when a batch error forced the per-point sequential fallback.
    sequential_fallback: bool = False
    #: Where the group ran: "local" (in-process) or "remote" (worker
    #: process).  Both paths emit the same schema either way.
    executed: str = "local"
    #: Solver backend the group's factorisation/solves ran under (a
    #: registry name from repro.grid.backends).
    backend: str = "lu"
    #: Solver escalation-ladder rung counts over the group's points
    #: (e.g. {"lu": 4, "refine": 1}); "failed" counts captured errors.
    escalations: Dict[str, int] = field(default_factory=dict)
    #: Physics-contract status counts over the group's points: check
    #: statuses ("pass"/"record"/"warn"), "raise" for points aborted by
    #: a ContractViolationError, and "degraded_points" for results
    #: flagged degraded (pruned/fallback solves, contract violations).
    contracts: Dict[str, int] = field(default_factory=dict)
    #: Wall time spent evaluating contracts over the group's points (s).
    contracts_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.build_s + self.factorize_s + self.solve_s + self.post_s

    def count_escalation(self, rung: str, n: int = 1) -> None:
        self.escalations[rung] = self.escalations.get(rung, 0) + n

    def count_contract(self, status: str, n: int = 1) -> None:
        self.contracts[status] = self.contracts.get(status, 0) + n


@dataclass
class SweepMetrics:
    """Aggregated instrumentation of one sweep run."""

    groups: List[GroupMetrics] = field(default_factory=list)
    wall_s: float = 0.0
    #: "serial" or "process" (ProcessPoolExecutor fan-out).
    mode: str = "serial"
    workers: int = 1
    #: Solver backend the run was requested under (repro.grid.backends
    #: registry name; per-group "backend" can differ on mixed runs).
    solver: str = "lu"
    #: Content fingerprint of the run (see repro.runtime.fingerprint) —
    #: the join key across BENCH / report / journal / trace artifacts.
    run_fingerprint: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    cache_rebuilds: int = 0
    #: Supervisor robustness counters (zero for unsupervised runs, so
    #: the perf trajectory also tracks robustness overhead).
    retries: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    resumed: int = 0
    #: Distributed-fleet counters (zero for in-process runs): leases
    #: that overran their deadline, workers that died mid-run (socket
    #: drop or missed heartbeats without a clean goodbye), and tasks
    #: re-leased after their previous lease expired or its holder died.
    leases_expired: int = 0
    worker_deaths: int = 0
    reassignments: int = 0

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return sum(g.n_points for g in self.groups)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def n_solve_calls(self) -> int:
        return sum(g.n_solve_calls for g in self.groups)

    def registry(self) -> MetricsRegistry:
        """The run's tallies as a typed :class:`MetricsRegistry`.

        This is the authoritative store since BENCH schema v4: the
        legacy aggregate accessors below (``stage_totals`` /
        ``escalation_histogram`` / ``contract_histogram`` /
        ``contracts_s``) are views computed from it, and its Prometheus
        rendering is what ``metrics-<fp>.prom`` snapshots export.
        """
        registry = MetricsRegistry()
        stage = registry.histogram(
            "stage", "wall time per sweep stage, per topology group"
        )
        escalations = registry.counter(
            "escalations_total", "solver escalation-ladder rung executions"
        )
        contracts = registry.counter(
            "contract_status_total", "physics-contract check statuses"
        )
        contract_time = registry.histogram(
            "contracts", "wall time spent evaluating physics contracts"
        )
        points = registry.counter("points_total", "sweep points evaluated")
        solve_calls = registry.counter(
            "solve_calls_total", "linear-system solve calls issued"
        )
        for group in self.groups:
            stage.observe(group.build_s, stage="build", group=group.key)
            stage.observe(group.factorize_s, stage="factorize", group=group.key)
            stage.observe(group.solve_s, stage="solve", group=group.key)
            stage.observe(group.post_s, stage="post", group=group.key)
            contract_time.observe(group.contracts_s, group=group.key)
            points.inc(group.n_points, group=group.key)
            solve_calls.inc(group.n_solve_calls, group=group.key)
            for rung, count in group.escalations.items():
                escalations.inc(count, rung=rung, group=group.key)
            for status, count in group.contracts.items():
                contracts.inc(count, status=status, group=group.key)
        gauge = registry.gauge("run", "run-level counters")
        gauge.set(self.wall_s, field="wall_s")
        gauge.set(self.workers, field="workers")
        for name in ("cache_hits", "cache_misses", "cache_rebuilds",
                     "retries", "quarantined", "pool_rebuilds",
                     "timeouts", "resumed", "leases_expired",
                     "worker_deaths", "reassignments"):
            gauge.set(getattr(self, name), field=name)
        return registry

    def stage_totals(self) -> Dict[str, float]:
        sums = self.registry().get("stage").sum_by_label("stage")
        return {
            "build_s": sums.get("build", 0.0),
            "factorize_s": sums.get("factorize", 0.0),
            "solve_s": sums.get("solve", 0.0),
            "post_s": sums.get("post", 0.0),
        }

    def escalation_histogram(self) -> Dict[str, int]:
        """Solver escalation-ladder rung counts over the whole run."""
        by_rung = self.registry().get("escalations_total").by_label("rung")
        return {rung: int(count) for rung, count in by_rung.items()}

    def contract_histogram(self) -> Dict[str, int]:
        """Physics-contract status counts over the whole run."""
        by_status = self.registry().get("contract_status_total").by_label(
            "status"
        )
        return {status: int(count) for status, count in by_status.items()}

    @property
    def contracts_s(self) -> float:
        """Total wall time spent on contract checks (s)."""
        return self.registry().get("contracts").total_sum()

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        """Stable, machine-readable rendering of the whole run."""
        return {
            "schema": BENCH_SCHEMA,
            "run_fingerprint": self.run_fingerprint,
            "mode": self.mode,
            "workers": self.workers,
            "solver": self.solver,
            "wall_s": round(self.wall_s, 6),
            "totals": {
                "n_points": self.n_points,
                "n_groups": self.n_groups,
                "n_solve_calls": self.n_solve_calls,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_rebuilds": self.cache_rebuilds,
                "retries": self.retries,
                "quarantined": self.quarantined,
                "pool_rebuilds": self.pool_rebuilds,
                "timeouts": self.timeouts,
                "resumed": self.resumed,
                "leases_expired": self.leases_expired,
                "worker_deaths": self.worker_deaths,
                "reassignments": self.reassignments,
                "contracts_s": round(self.contracts_s, 6),
                **{k: round(v, 6) for k, v in self.stage_totals().items()},
            },
            "escalations": self.escalation_histogram(),
            "contracts": self.contract_histogram(),
            "groups": [
                {**asdict(g), **{
                    k: round(getattr(g, k), 6)
                    for k in ("build_s", "factorize_s", "solve_s", "post_s",
                              "contracts_s")
                }}
                for g in self.groups
            ],
        }

    def summary(self) -> str:
        totals = self.stage_totals()
        robustness = ""
        if self.retries or self.quarantined or self.resumed:
            robustness = (
                f", {self.retries} retried, {self.quarantined} quarantined, "
                f"{self.resumed} resumed"
            )
        contracts = self.contract_histogram()
        flagged = sum(v for k, v in contracts.items() if k != "pass")
        if flagged:
            robustness += f", {flagged} contract flag(s)"
        if self.worker_deaths or self.leases_expired or self.reassignments:
            robustness += (
                f", {self.worker_deaths} worker death(s), "
                f"{self.leases_expired} expired lease(s), "
                f"{self.reassignments} reassignment(s)"
            )
        return (
            f"{self.n_points} point(s) in {self.n_groups} group(s), "
            f"{self.n_solve_calls} solve call(s), mode={self.mode}{robustness}: "
            f"build {totals['build_s']:.3f}s, factorize "
            f"{totals['factorize_s']:.3f}s, solve {totals['solve_s']:.3f}s, "
            f"post {totals['post_s']:.3f}s (wall {self.wall_s:.3f}s)"
        )


def write_bench_json(
    name: str,
    payload: Dict,
    directory: Union[str, pathlib.Path, None] = None,
) -> pathlib.Path:
    """Persist a ``BENCH_<name>.json`` file and return its path.

    ``directory`` defaults to the ``REPRO_BENCH_DIR`` environment
    variable, then the current directory.  The payload is written with
    sorted keys and a trailing newline so successive runs diff cleanly.
    """
    if directory is None:
        directory = os.environ.get(BENCH_DIR_ENV, ".")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def maybe_write_bench_json(name: Optional[str], payload: Dict) -> Optional[pathlib.Path]:
    """Write a BENCH file only when a name is given and the env opts in.

    The engine calls this after every run: with ``bench_name`` set the
    file is always written; otherwise nothing happens unless
    ``REPRO_BENCH_DIR`` is exported, which turns on fleet-wide metric
    collection without touching call sites.
    """
    if name is None:
        return None
    return write_bench_json(name, payload)
