"""The batched multi-RHS sweep engine.

Every figure reproduction and the design-space explorer used to rebuild
and re-factorise the MNA system for each sweep point, even though points
sharing a topology differ only in their right-hand side.
:class:`SweepEngine` restores the amortisation the solver was designed
for, at sweep scope:

1. requested :class:`SweepPoint`\\ s are grouped by circuit topology —
   the :class:`repro.runtime.spec.PDNSpec` plus the fault-plan
   fingerprint — and each topology's PDN is built and LU-factorised
   exactly once, through a keyed structure cache that survives across
   ``run()`` calls (and invalidates itself on netlist revision bumps);
2. all of a topology's load vectors are stacked into one dense RHS
   matrix and solved in a single batched
   :meth:`repro.grid.solver.AssembledCircuit.solve_batch` call;
3. independent topologies fan out across a
   :class:`concurrent.futures.ProcessPoolExecutor` with deterministic
   result ordering and a serial fallback when the pool is unavailable
   (or when results cannot be shipped between processes).

Every stage is instrumented (:mod:`repro.runtime.metrics`); pass
``bench_name`` to emit a machine-readable ``BENCH_<name>.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ContractViolationError, ReproError
from repro.grid.backends import default_backend_name, resolve_backend
from repro.obs.trace import activate_worker_context, get_tracer
from repro.runtime.fingerprint import run_fingerprint, task_fingerprint
from repro.runtime.metrics import (
    GroupMetrics,
    SweepMetrics,
    maybe_write_bench_json,
)
from repro.runtime.spec import PDNSpec

__all__ = [
    "SweepPoint",
    "SweepOutcome",
    "SweepResult",
    "SweepEngine",
    "group_points",
]

#: Environment knob for the default process fan-out width.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True)
class SweepPoint:
    """One requested design-point evaluation.

    Points with equal ``spec`` (and the same fault plan) share one
    netlist build and one factorisation; their ``layer_activities``
    become columns of a single batched right-hand-side solve.
    """

    spec: PDNSpec
    #: Per-layer activity factors; None = all layers fully active.
    layer_activities: Optional[Tuple[float, ...]] = None
    #: A :class:`repro.faults.FaultPlan`, or a picklable callable
    #: ``pdn -> FaultPlan`` for plans that must be sampled from the
    #: built PDN (seeded samplers).  None = pristine.
    fault_plan: Any = None
    #: Force the resilient solve path; None = automatic (faulted PDNs).
    resilient: Optional[bool] = None
    #: Opaque caller label, passed through to the outcome/extractor.
    tag: Any = None

    def activities_tuple(self) -> Optional[Tuple[float, ...]]:
        if self.layer_activities is None:
            return None
        return tuple(float(a) for a in self.layer_activities)


@dataclass
class SweepOutcome:
    """What happened to one point: a result, or a typed solver error."""

    point: SweepPoint
    result: Any = None  # PDNResult when the solve succeeded
    error: Optional[ReproError] = None
    #: FaultReport of the applied plan (None for pristine points).
    fault_report: Any = None

    @property
    def survived(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The PDNResult, re-raising the captured solver error if any."""
        if self.error is not None:
            raise self.error
        return self.result


@dataclass
class SweepResult:
    """Ordered sweep values plus the run's stage metrics."""

    #: One entry per requested point, in input order: the extractor's
    #: return value, or the raw :class:`SweepOutcome` with no extractor.
    values: List[Any]
    metrics: SweepMetrics

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class _CachedStructure:
    """One cache entry: a built PDN and its factorisation revision."""

    pdn: Any
    fault_report: Any
    revision: int
    build_s: float
    factorize_s: float


GroupKey = Tuple[PDNSpec, Any, bool, str]


def _plan_key(plan: Any) -> Any:
    """Hashable identity of a fault plan for topology grouping."""
    if plan is None:
        return None
    fingerprint = getattr(plan, "fingerprint", None)
    if fingerprint is not None:
        return ("plan", fingerprint())
    # Plan factories are opaque: give each its own topology group.
    return ("factory", id(plan))


def _group_resilient(point: SweepPoint) -> bool:
    if point.resilient is not None:
        return bool(point.resilient)
    return point.fault_plan is not None


def group_points(
    points: Sequence[SweepPoint],
    solver: Optional[str] = None,
) -> Dict[GroupKey, List[Tuple[int, SweepPoint]]]:
    """Group points by topology, keeping each point's input index.

    The grouping key is ``(spec, fault-plan identity, resilient, solver
    backend)`` — the engine's structure-cache key — in first-appearance
    order.  ``solver`` defaults to the process-wide backend (so a
    ``--solver`` switch between runs is a cache miss, never a stale
    factorisation).  The run supervisor uses the same grouping so its
    task boundaries, journal fingerprints and retry units match the
    engine's solve batches.
    """
    if solver is None:
        solver = resolve_backend(default_backend_name()).name
    groups: Dict[GroupKey, List[Tuple[int, SweepPoint]]] = {}
    for index, point in enumerate(points):
        key = (
            point.spec,
            _plan_key(point.fault_plan),
            _group_resilient(point),
            solver,
        )
        groups.setdefault(key, []).append((index, point))
    return groups


def _build_group(spec: PDNSpec, plan: Any, solver: Optional[str] = None):
    """Build one topology's PDN, apply its plan, factorise eagerly.

    Returns ``(pdn, fault_report, build_s, factorize_s)``.  With tracing
    enabled the "build"/"factorize" span durations *are* the returned
    stage timings, so BENCH stage totals and span totals agree exactly.
    ``solver`` picks the factorisation backend; a non-``lu`` backend
    that cannot factorise warms its lu fallback here too, so the
    degraded cost lands in the factorise stage, not the first solve.
    """
    tracer = get_tracer()
    with tracer.span("build") as build_span:
        t0 = time.perf_counter()
        pdn = spec.build()
        report = None
        if plan is not None:
            actual = plan(pdn) if callable(plan) else plan
            report = pdn.apply_faults(actual)
        t1 = time.perf_counter()
    with tracer.span("factorize") as factorize_span:
        assembled = pdn.assembled(backend=solver)
        factorize_span.set(backend=assembled.backend.name)
        # A faulted system may be singular; factorize() then reports False
        # and the resilient solve path deals with it per batch.
        assembled.factorize()
        t2 = time.perf_counter()
    if tracer.enabled:
        return pdn, report, build_span.duration_s, factorize_span.duration_s
    return pdn, report, t1 - t0, t2 - t1


def _execute_group(
    pdn,
    points: Sequence[SweepPoint],
    resilient: bool,
    extract: Optional[Callable[[SweepOutcome], Any]],
    fault_report: Any,
    metrics: GroupMetrics,
) -> List[Any]:
    """Solve one topology group (batched, with per-point fallback)."""
    tracer = get_tracer()
    activity_sets = [p.activities_tuple() for p in points]
    t0 = time.perf_counter()
    outcomes: List[SweepOutcome]
    with tracer.span(
        "solve", n_points=len(points), resilient=bool(resilient)
    ) as solve_span:
        try:
            results = pdn.solve_batch(activity_sets, resilient=resilient)
            metrics.n_solve_calls += 1
            outcomes = [
                SweepOutcome(point=p, result=r, fault_report=fault_report)
                for p, r in zip(points, results)
            ]
        except ReproError:
            # One bad point must not sink its batch siblings: fall back to
            # per-point solves and capture each point's typed error.
            metrics.sequential_fallback = True
            solve_span.set(sequential_fallback=True)
            outcomes = []
            for p, activities in zip(points, activity_sets):
                metrics.n_solve_calls += 1
                try:
                    result = pdn.solve(
                        layer_activities=activities, resilient=resilient
                    )
                    outcomes.append(
                        SweepOutcome(point=p, result=result, fault_report=fault_report)
                    )
                except ReproError as exc:
                    outcomes.append(
                        SweepOutcome(point=p, error=exc, fault_report=fault_report)
                    )
    metrics.solve_s += (
        solve_span.duration_s if tracer.enabled else time.perf_counter() - t0
    )

    # Tally the solver escalation ladder: resilient solves report the
    # rungs they climbed; strict direct solves count as a clean "lu".
    # Alongside, roll the per-point physics-contract reports into the
    # group's contract histogram (BENCH schema v3) and count degraded
    # points so runs surface them instead of averaging them in.
    for outcome in outcomes:
        if outcome.error is not None:
            metrics.count_escalation("failed")
            if isinstance(outcome.error, ContractViolationError):
                metrics.count_contract("raise")
            continue
        diagnostics = getattr(outcome.result, "diagnostics", None)
        rungs = getattr(diagnostics, "escalations", None) or [metrics.backend]
        for rung in rungs:
            metrics.count_escalation(rung)
        if diagnostics is not None and diagnostics.degraded:
            metrics.count_contract("degraded_points")
        report = getattr(outcome.result, "contracts", None)
        if report is not None:
            for status, count in report.histogram().items():
                metrics.count_contract(status, count)
            metrics.contracts_s += report.elapsed_s

    t0 = time.perf_counter()
    with tracer.span("post", n_points=len(points)) as post_span:
        values = [extract(o) if extract is not None else o for o in outcomes]
    metrics.post_s += (
        post_span.duration_s if tracer.enabled else time.perf_counter() - t0
    )
    metrics.n_points = len(points)
    return values


def _run_group_remote(
    spec: PDNSpec,
    plan: Any,
    points: Tuple[SweepPoint, ...],
    resilient: bool,
    extract: Callable[[SweepOutcome], Any],
    key_label: str,
    trace_ctx: Optional[Dict[str, Any]] = None,
    solver: Optional[str] = None,
) -> Tuple[List[Any], GroupMetrics, List[Any]]:
    """Worker-process entry point: build, solve and extract one group.

    ``trace_ctx`` (from :meth:`Tracer.worker_context`) re-arms tracing in
    the worker with the coordinator's trace id and parent span, so the
    returned spans slot into the parent's tree on :meth:`Tracer.adopt`.
    ``solver`` is the coordinator's backend choice; workers honour it so
    a distributed run solves with one backend fleet-wide.
    """
    tracing = activate_worker_context(trace_ctx)
    tracer = get_tracer()
    metrics = GroupMetrics(
        key=key_label, executed="remote", backend=solver or "lu"
    )
    with tracer.span(
        "group", key=key_label, n_points=len(points), executed="remote"
    ):
        pdn, report, build_s, factorize_s = _build_group(spec, plan, solver)
        metrics.build_s = build_s
        metrics.factorize_s = factorize_s
        values = _execute_group(pdn, points, resilient, extract, report, metrics)
    spans = tracer.drain() if tracing else []
    return values, metrics, spans


class SweepEngine:
    """Batched, cached, optionally process-parallel design-point sweeps.

    Parameters
    ----------
    workers:
        Process fan-out width for independent topologies.  ``None``
        reads the ``REPRO_SWEEP_WORKERS`` environment variable and
        defaults to 1 (serial).  Parallel mode needs a picklable
        ``extract`` callable — raw PDN results hold SuperLU handles and
        cannot cross process boundaries — and silently degrades to the
        serial path when the pool cannot be used.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = int(os.environ.get(WORKERS_ENV, "1") or "1")
        self.workers = max(1, int(workers))
        self._cache: Dict[GroupKey, _CachedStructure] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_rebuilds = 0

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Structure-cache counters (for tests and metrics)."""
        return {
            "entries": len(self._cache),
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "rebuilds": self._cache_rebuilds,
        }

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[SweepPoint],
        extract: Optional[Callable[[SweepOutcome], Any]] = None,
        bench_name: Optional[str] = None,
    ) -> SweepResult:
        """Evaluate every point; values come back in input order.

        ``extract(outcome) -> value`` runs once per point after its
        group's batched solve (use :meth:`SweepOutcome.unwrap` inside it
        to re-raise captured solver errors).  Without an extractor the
        raw outcomes are returned and the run is forced serial.
        ``bench_name`` writes the stage metrics to
        ``BENCH_<bench_name>.json`` (see :mod:`repro.runtime.metrics`).
        """
        t_start = time.perf_counter()
        points = list(points)
        solver = resolve_backend(default_backend_name()).name
        groups = group_points(points, solver)
        run_fp = run_fingerprint(
            [task_fingerprint(key, members) for key, members in groups.items()],
            len(points),
        )
        tracer = get_tracer()
        if tracer.enabled and tracer.trace_id is None:
            tracer.set_trace_id(run_fp)

        metrics = SweepMetrics(
            workers=self.workers, run_fingerprint=run_fp, solver=solver
        )
        values: List[Any] = [None] * len(points)

        with tracer.span(
            "sweep",
            run_fingerprint=run_fp,
            n_points=len(points),
            n_groups=len(groups),
            workers=self.workers,
        ) as sweep_span:
            parallel_keys: List[GroupKey] = []
            if self.workers > 1 and extract is not None and len(groups) > 1:
                parallel_keys = list(groups)

            done = set()
            if parallel_keys:
                done = self._run_parallel(
                    groups, parallel_keys, extract, values, metrics
                )
                if done:
                    metrics.mode = "process"

            for key, members in groups.items():
                if key in done:
                    continue
                group_metrics = self._run_group_local(
                    key, members, extract, values
                )
                metrics.groups.append(group_metrics)
            sweep_span.set(mode=metrics.mode)

        # Re-order group metrics to first-appearance order for stable
        # BENCH output regardless of which groups ran remotely.
        order = {key: i for i, key in enumerate(groups)}
        labels = {self._key_label(k): order[k] for k in groups}
        metrics.groups.sort(key=lambda g: labels.get(g.key, len(labels)))

        info = self.cache_info()
        metrics.cache_hits = info["hits"]
        metrics.cache_misses = info["misses"]
        metrics.cache_rebuilds = info["rebuilds"]
        metrics.wall_s = time.perf_counter() - t_start
        maybe_write_bench_json(bench_name, metrics.to_json())
        if tracer.enabled:
            from repro.obs.export import flush_spans

            flush_spans(
                tracer.drain(), run_fp, trace_id=tracer.trace_id
            )
        return SweepResult(values=values, metrics=metrics)

    # ------------------------------------------------------------------
    def _key_label(self, key: GroupKey) -> str:
        spec, plan_key, resilient = key[0], key[1], key[2]
        solver = key[3] if len(key) > 3 else "lu"
        label = spec.label()
        if plan_key is not None:
            label += "+faults"
        if resilient:
            label += "/resilient"
        if solver != "lu":
            label += f"@{solver}"
        return label

    def _cacheable(self, key: GroupKey) -> bool:
        # Factory-sampled plans may be stochastic; never reuse them.
        plan_key = key[1]
        return not (isinstance(plan_key, tuple) and plan_key[0] == "factory")

    def _obtain_structure(
        self, key: GroupKey, plan: Any, metrics: GroupMetrics
    ) -> _CachedStructure:
        spec = key[0]
        cached = self._cache.get(key) if self._cacheable(key) else None
        if cached is not None:
            if cached.pdn.circuit.revision != cached.revision:
                # The netlist mutated behind our back (a fault plan was
                # applied out of band): rebuild rather than serve a
                # stale factorisation.
                self._cache_rebuilds += 1
            else:
                self._cache_hits += 1
                metrics.cached = True
                return cached
        else:
            self._cache_misses += 1
        solver = key[3] if len(key) > 3 else None
        pdn, report, build_s, factorize_s = _build_group(spec, plan, solver)
        entry = _CachedStructure(
            pdn=pdn,
            fault_report=report,
            revision=pdn.circuit.revision,
            build_s=build_s,
            factorize_s=factorize_s,
        )
        if self._cacheable(key):
            self._cache[key] = entry
        return entry

    def _run_group_local(
        self,
        key: GroupKey,
        members: List[Tuple[int, SweepPoint]],
        extract: Optional[Callable[[SweepOutcome], Any]],
        values: List[Any],
    ) -> GroupMetrics:
        group_metrics = GroupMetrics(
            key=self._key_label(key),
            backend=key[3] if len(key) > 3 else "lu",
        )
        plan = members[0][1].fault_plan
        with get_tracer().span(
            "group",
            key=group_metrics.key,
            n_points=len(members),
            executed="local",
        ) as group_span:
            entry = self._obtain_structure(key, plan, group_metrics)
            if not group_metrics.cached:
                group_metrics.build_s = entry.build_s
                group_metrics.factorize_s = entry.factorize_s
            group_span.set(cached=group_metrics.cached)
            group_values = _execute_group(
                entry.pdn,
                [point for _, point in members],
                key[2],
                extract,
                entry.fault_report,
                group_metrics,
            )
        for (index, _), value in zip(members, group_values):
            values[index] = value
        return group_metrics

    def _run_parallel(
        self,
        groups: Dict[GroupKey, List[Tuple[int, SweepPoint]]],
        keys: List[GroupKey],
        extract: Callable[[SweepOutcome], Any],
        values: List[Any],
        metrics: SweepMetrics,
    ) -> set:
        """Fan groups out over processes; returns the keys completed.

        Any group the pool cannot handle — unpicklable plans or
        extractors, a broken pool, a sandbox that forbids forking —
        simply stays unfinished and is re-run on the serial path by the
        caller.  Determinism is unaffected: values land by index.
        """
        done: set = set()
        try:
            from concurrent.futures import ProcessPoolExecutor
        except ImportError:  # pragma: no cover - stdlib always has it
            return done
        tracer = get_tracer()
        trace_ctx = tracer.worker_context()
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {}
                for key in keys:
                    members = groups[key]
                    plan = members[0][1].fault_plan
                    try:
                        futures[key] = pool.submit(
                            _run_group_remote,
                            key[0],
                            plan,
                            tuple(point for _, point in members),
                            key[2],
                            extract,
                            self._key_label(key),
                            trace_ctx,
                            key[3] if len(key) > 3 else None,
                        )
                    except Exception:
                        continue
                for key, future in futures.items():
                    try:
                        group_values, group_metrics, spans = future.result()
                    except Exception:
                        continue  # serial fallback picks this group up
                    for (index, _), value in zip(groups[key], group_values):
                        values[index] = value
                    metrics.groups.append(group_metrics)
                    tracer.adopt(spans)
                    done.add(key)
        except Exception:
            return done
        return done
