"""Deterministic fault injection for the distributed sweep fleet.

A :class:`ChaosPlan` names, exactly, the faults a ``repro worker``
process must inflict on itself: die by SIGKILL just before reporting a
given task, freeze past the lease deadline before reporting another,
and drop or duplicate specific fire-and-forget protocol messages.  The
plan travels to the worker through the ``REPRO_CHAOS`` environment
variable as JSON, so the chaos harness (``scripts/chaos_fleet_check.py``)
can orchestrate multi-process failure scenarios without any code hooks
in the happy path — a worker with no ``REPRO_CHAOS`` set pays one dict
lookup at startup and nothing else.

Determinism is the whole point: :meth:`ChaosPlan.seeded` derives every
fault choice from a seed, so a chaos run is exactly replayable and the
harness can assert bit-identical results against a serial baseline run.

Only fire-and-forget message kinds (``result``, ``failure``,
``heartbeat``, ``goodbye``) may be dropped or duplicated — the
request/reply pairs of the protocol are how the worker stays in sync
with the coordinator, and losing one would model a broken client, not a
lossy network.  See docs/DISTRIBUTED.md for the failure matrix each
fault exercises.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.logs import get_logger

__all__ = [
    "CHAOS_ENV",
    "DROPPABLE_KINDS",
    "ChaosPlan",
    "ChaosMonkey",
]

_log = get_logger(__name__)

#: Environment variable carrying a ChaosPlan as JSON to worker processes.
CHAOS_ENV = "REPRO_CHAOS"

#: Message kinds chaos may drop/duplicate: exactly the fire-and-forget
#: ones.  Request/reply kinds are exempt (see module docstring).
DROPPABLE_KINDS = ("result", "failure", "heartbeat", "goodbye")


@dataclass
class ChaosPlan:
    """A worker's fault schedule, derived from a seed or given explicitly.

    Task indices count the leases a worker *finished executing*, 0-based
    — ``kill_on_task=1`` means the worker solves its second task and is
    SIGKILLed before the result leaves the process.  Message indices
    count sends per kind, 0-based, after the fault hooks ran.
    """

    #: SIGKILL the worker right before it reports this (0-based) task.
    kill_on_task: Optional[int] = None
    #: Sleep ``freeze_s`` before reporting this task — long enough past
    #: the lease deadline, the coordinator reassigns the lease and the
    #: thawed worker's late result exercises the idempotent commit.
    freeze_on_task: Optional[int] = None
    freeze_s: float = 0.0
    #: Per-kind 0-based send indices to swallow (never sent).
    drop: Dict[str, List[int]] = field(default_factory=dict)
    #: Per-kind 0-based send indices to send twice (duplicate delivery).
    dup: Dict[str, List[int]] = field(default_factory=dict)
    #: Provenance: the seed this plan was derived from, if any.
    seed: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        n_tasks: int,
        kill: bool = False,
        freeze: bool = False,
        freeze_s: float = 5.0,
        drop_result: bool = False,
        dup_result: bool = False,
    ) -> "ChaosPlan":
        """Derive a plan's fault positions deterministically from ``seed``.

        Each requested fault lands on a pseudo-random (but seed-stable)
        task/message index within the first ``n_tasks`` units of work,
        so harness scenarios replay exactly.
        """
        rng = random.Random(seed)
        span = max(1, n_tasks)
        plan = cls(seed=seed)
        if kill:
            plan.kill_on_task = rng.randrange(span)
        if freeze:
            plan.freeze_on_task = rng.randrange(span)
            plan.freeze_s = freeze_s
            if plan.freeze_on_task == plan.kill_on_task:
                # A dead worker cannot also freeze; shift the freeze.
                plan.freeze_on_task = (plan.freeze_on_task + 1) % span
        if drop_result:
            plan.drop = {"result": [rng.randrange(span)]}
        if dup_result:
            plan.dup = {"result": [rng.randrange(span)]}
        return plan

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "kill_on_task": self.kill_on_task,
            "freeze_on_task": self.freeze_on_task,
            "freeze_s": self.freeze_s,
            "drop": {k: list(v) for k, v in self.drop.items()},
            "dup": {k: list(v) for k, v in self.dup.items()},
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "ChaosPlan":
        return cls(
            kill_on_task=payload.get("kill_on_task"),
            freeze_on_task=payload.get("freeze_on_task"),
            freeze_s=float(payload.get("freeze_s", 0.0) or 0.0),
            drop={
                str(k): [int(i) for i in v]
                for k, v in (payload.get("drop") or {}).items()
            },
            dup={
                str(k): [int(i) for i in v]
                for k, v in (payload.get("dup") or {}).items()
            },
            seed=payload.get("seed"),
        )

    def to_env(self) -> str:
        """The ``REPRO_CHAOS`` value that ships this plan to a worker."""
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_env(cls) -> Optional["ChaosPlan"]:
        """The plan in ``REPRO_CHAOS``, or None (malformed JSON is None
        too, with a warning — chaos must never break a production run)."""
        raw = os.environ.get(CHAOS_ENV, "").strip()
        if not raw:
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("not a JSON object")
            return cls.from_json(payload)
        except (ValueError, TypeError) as exc:
            _log.warning(
                "ignoring malformed REPRO_CHAOS plan",
                extra={"error": str(exc)},
            )
            return None


class ChaosMonkey:
    """Stateful applier of a :class:`ChaosPlan` inside one worker.

    A ``None`` plan makes every hook a no-op, so the worker calls the
    hooks unconditionally.
    """

    def __init__(self, plan: Optional[ChaosPlan]):
        self.plan = plan
        self._tasks_finished = 0
        self._sent: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def on_task_executed(self) -> None:
        """Fault hook between finishing a solve and reporting it.

        Called once per executed lease, in order.  May never return
        (SIGKILL) or may block past the lease deadline (freeze).
        """
        index = self._tasks_finished
        self._tasks_finished += 1
        if self.plan is None:
            return
        if self.plan.freeze_on_task == index and self.plan.freeze_s > 0:
            _log.warning(
                "chaos: freezing worker past its lease",
                extra={"task_index": index, "freeze_s": self.plan.freeze_s},
            )
            time.sleep(self.plan.freeze_s)
        if self.plan.kill_on_task == index:
            _log.warning(
                "chaos: SIGKILLing worker mid-task",
                extra={"task_index": index},
            )
            os.kill(os.getpid(), signal.SIGKILL)

    def copies(self, kind: str) -> int:
        """How many copies of this send to emit: 0 (drop), 1, or 2 (dup).

        Only consults the plan for :data:`DROPPABLE_KINDS`; request/reply
        messages always go out exactly once.
        """
        index = self._sent.get(kind, 0)
        self._sent[kind] = index + 1
        if self.plan is None or kind not in DROPPABLE_KINDS:
            return 1
        if index in self.plan.drop.get(kind, ()):
            _log.warning(
                "chaos: dropping message",
                extra={"kind": kind, "send_index": index},
            )
            return 0
        if index in self.plan.dup.get(kind, ()):
            _log.warning(
                "chaos: duplicating message",
                extra={"kind": kind, "send_index": index},
            )
            return 2
        return 1
