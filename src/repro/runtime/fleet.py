"""Distributed sweep fleet: a socket coordinator and its workers.

The fleet shards the *same* content-fingerprinted topology tasks the
:class:`repro.runtime.supervisor.RunSupervisor` journals across worker
processes — on this host or any other — over a deliberately small
newline-delimited-JSON TCP protocol:

==============  =====================================================
worker sends    coordinator replies
==============  =====================================================
``hello``       ``welcome`` (run fingerprint, heartbeat period)
``request``     ``lease`` (a task), ``idle`` (retry later), or
                ``done`` (run over / worker quarantined — exit)
``result``      *nothing* (fire-and-forget)
``failure``     *nothing*
``heartbeat``   *nothing*
``goodbye``     *nothing* (clean-shutdown marker)
==============  =====================================================

Only ``hello`` and ``request`` have replies; everything else is
fire-and-forget.  That asymmetry is what makes the fleet *at-least-once*
by construction: a dropped ``result`` simply lets the lease expire and
the task is re-leased, a duplicated (or late, post-expiry) ``result`` is
swallowed by the supervisor's fingerprint-keyed idempotent commit, and
the write-ahead journal records each task exactly once.  Delivery
faults therefore cost wall time, never correctness — the chaos harness
(:mod:`repro.runtime.chaos`, ``scripts/chaos_fleet_check.py``) asserts
results stay bit-identical to a serial run under SIGKILL, freezes and
message loss.

The coordinator embeds in the supervisor's run (``--fleet HOST:PORT``):
:func:`execute_fleet` leases tasks while workers are attached and
returns whatever it could not finish, so the supervisor's in-process
paths (and thus every CLI subcommand) degrade transparently when no
worker ever connects, every worker dies, or the transport cannot even
bind.  Failure accounting flows into the *same* retry/backoff/
quarantine core as local execution — a worker death or an expired lease
charges the task one attempt, exactly like a crashed pool worker.

See docs/DISTRIBUTED.md for the lease lifecycle and failure matrix.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    FleetTransportError,
    ReproError,
    TaskTimeoutError,
    WorkerLostError,
)
from repro.obs.logs import get_logger
from repro.obs.trace import activate_worker_context, get_tracer
from repro.runtime.chaos import ChaosMonkey, ChaosPlan
from repro.runtime.engine import SweepPoint, _run_group_remote
from repro.runtime.journal import (
    atomic_write_text,
    decode_payload,
    encode_payload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.runtime.supervisor import RunSupervisor, _RunState, _Task

__all__ = [
    "PROTOCOL_VERSION",
    "FleetCoordinator",
    "ServiceFleet",
    "execute_fleet",
    "parse_address",
    "run_worker",
]

_log = get_logger(__name__)

#: Bumped on any wire-format change; hello/welcome carry it and a
#: mismatched worker is refused instead of mis-parsed.
#: v2 appended the coordinator's solver-backend name to the lease
#: payload tuple, so workers factorise with the coordinator's choice.
PROTOCOL_VERSION = 2

#: Name of the discovery file a coordinator writes into its run dir.
FLEET_FILE = "fleet.json"


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------

def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (or bare ``"port"``, meaning loopback)."""
    text = (address or "").strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    elif not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except (TypeError, ValueError):
        raise FleetTransportError(
            f"--fleet expects HOST:PORT, got {address!r}", address=address
        ) from None
    if not 0 <= port <= 65535:
        raise FleetTransportError(
            f"--fleet port must be 0..65535, got {port}", address=address
        )
    return host, port


def _send(
    sock: socket.socket,
    message: Dict[str, Any],
    lock: Optional[threading.Lock] = None,
    copies: int = 1,
) -> None:
    """Ship ``copies`` framed copies of one message (0 = chaos drop)."""
    if copies <= 0:
        return
    data = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
    if lock is None:
        for _ in range(copies):
            sock.sendall(data)
        return
    with lock:
        for _ in range(copies):
            sock.sendall(data)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

@dataclass
class _WorkerInfo:
    """Registry entry for one connected (or once-connected) worker."""

    id: str
    address: str
    conn: socket.socket
    last_seen: float
    #: active | quarantined | dead | gone (clean goodbye)
    status: str = "active"
    tasks_done: int = 0
    failures: int = 0

    def leasable(self) -> bool:
        return self.status == "active"

    def accounting(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "address": self.address,
            "tasks_done": self.tasks_done,
            "failures": self.failures,
            "shutdown": {
                "gone": "clean",
                "dead": "died",
                "quarantined": "quarantined",
            }.get(self.status, "attached"),
        }


@dataclass
class _Lease:
    """One task currently out on a worker, with its reassignment deadline."""

    task: "_Task"
    worker_id: str
    deadline: float


class FleetCoordinator:
    """Leases a supervised run's tasks to ``repro worker`` processes.

    All protocol handling runs in per-connection threads; every piece of
    shared state (lease table, worker registry, the supervisor's run
    state and journal) is mutated under one re-entrant lock.  Exceptions
    escaping the commit/retry core in a handler thread — ``fail_fast``
    aborts, journal I/O errors — are stashed and re-raised from
    :meth:`poll` on the supervisor's own thread.
    """

    def __init__(
        self,
        supervisor: "RunSupervisor",
        tasks: List["_Task"],
        state: "_RunState",
    ):
        self.supervisor = supervisor
        self.state = state
        self.config = supervisor.config
        self._tasks: Dict[str, "_Task"] = {t.fingerprint: t for t in tasks}
        self._order = [t.fingerprint for t in tasks]
        self._queue: List["_Task"] = list(tasks)
        self._leases: Dict[str, _Lease] = {}
        self._workers: Dict[str, _WorkerInfo] = {}
        #: Fingerprints whose previous lease expired or whose holder
        #: died; their next grant counts as a reassignment.
        self._lost: set = set()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._ever_connected = False
        self._last_activity = time.monotonic()
        self._trace_ctx = get_tracer().worker_context()
        self._run_fp = state.metrics.run_fingerprint

    # ------------------------------------------------------------------
    # Transport lifecycle
    # ------------------------------------------------------------------
    def start(self) -> str:
        """Bind, listen and start accepting; returns ``host:port`` bound."""
        host, port = parse_address(self.config.fleet or "")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((host, port))
            server.listen(16)
        except OSError as exc:
            server.close()
            raise FleetTransportError(
                f"cannot bind fleet coordinator on {host}:{port}: {exc}",
                address=f"{host}:{port}",
            ) from None
        server.settimeout(0.25)
        self._server = server
        bound = f"{server.getsockname()[0]}:{server.getsockname()[1]}"
        self._last_activity = time.monotonic()
        accept = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        _log.info(
            "fleet coordinator listening",
            extra={"address": bound, "run_fingerprint": self._run_fp},
        )
        return bound

    def write_discovery(self, bound: str) -> None:
        """Drop ``fleet.json`` into the run dir so workers find the port."""
        if self.config.run_dir is None:
            return
        path = os.path.join(self.config.run_dir, FLEET_FILE)
        atomic_write_text(
            path,
            json.dumps(
                {
                    "address": bound,
                    "run_fingerprint": self._run_fp,
                    "protocol": PROTOCOL_VERSION,
                },
                sort_keys=True,
            )
            + "\n",
            durable=False,
        )

    def close(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"fleet-conn-{peer[1]}",
                daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _serve_connection(self, conn: socket.socket, peer: str) -> None:
        worker: Optional[_WorkerInfo] = None
        reader = conn.makefile("r", encoding="utf-8")
        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    _log.warning(
                        "fleet: unparsable message, closing connection",
                        extra={"peer": peer},
                    )
                    break
                try:
                    worker, keep = self._dispatch(conn, peer, worker, message)
                except OSError:
                    # Reply could not be sent: the worker is dying, not
                    # the run.  Drop the connection; the finally-block
                    # death handling requeues any leases it held.
                    break
                except Exception as exc:
                    # fail-fast aborts and commit-core errors land here;
                    # surface them on the supervisor's thread via poll().
                    with self._lock:
                        if self._error is None:
                            self._error = exc
                    self._stop.set()
                    break
                if not keep:
                    break
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:
                pass
            if worker is not None:
                with self._lock:
                    if worker.status == "active" and not self._stop.is_set():
                        self._declare_dead(worker, "connection lost")

    def _dispatch(
        self,
        conn: socket.socket,
        peer: str,
        worker: Optional[_WorkerInfo],
        message: Dict[str, Any],
    ) -> Tuple[Optional[_WorkerInfo], bool]:
        """Handle one message; returns (worker, keep_connection)."""
        kind = message.get("kind")
        with self._lock:
            self._last_activity = time.monotonic()
            if kind == "hello":
                if message.get("protocol") != PROTOCOL_VERSION:
                    _send(conn, {
                        "kind": "refused",
                        "reason": (
                            f"protocol {message.get('protocol')!r} != "
                            f"{PROTOCOL_VERSION}"
                        ),
                    })
                    return None, False
                worker_id = str(message.get("worker") or peer)
                existing = self._workers.get(worker_id)
                if existing is not None:
                    # A reconnecting worker keeps its accounting (and a
                    # quarantined one stays quarantined).
                    existing.conn = conn
                    existing.address = peer
                    existing.last_seen = time.monotonic()
                    if existing.status in ("dead", "gone"):
                        existing.status = "active"
                    worker = existing
                else:
                    worker = _WorkerInfo(
                        id=worker_id,
                        address=peer,
                        conn=conn,
                        last_seen=time.monotonic(),
                    )
                    self._workers[worker_id] = worker
                self._ever_connected = True
                _send(conn, {
                    "kind": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "run_fingerprint": self._run_fp,
                    "heartbeat_s": self.config.heartbeat_s,
                })
                _log.info(
                    "fleet: worker joined",
                    extra={"worker": worker_id, "peer": peer},
                )
                return worker, True
            if worker is None:
                # Anything before hello is a protocol violation.
                return None, False
            worker.last_seen = time.monotonic()
            if kind == "heartbeat":
                return worker, True
            if kind == "request":
                reply = self._grant(worker)
                if reply.get("kind") == "done" and worker.status == "active":
                    # The closing handshake is ours, not a death: mark
                    # the worker released before the connection drops.
                    worker.status = "gone"
                _send(conn, reply)
                return worker, reply.get("kind") != "done"
            if kind == "result":
                self._on_result(worker, message)
                return worker, True
            if kind == "failure":
                self._on_failure(worker, message)
                return worker, True
            if kind == "goodbye":
                worker.status = "gone"
                self._release_worker_leases(worker, "worker shut down")
                _log.info(
                    "fleet: worker left cleanly", extra={"worker": worker.id}
                )
                return worker, False
        return worker, True

    # ------------------------------------------------------------------
    # Lease management (all callers hold the lock)
    # ------------------------------------------------------------------
    def _drain_retries(self) -> None:
        """Pull backoff-stamped retries the shared core queued for us."""
        while self.state.queue:
            task = self.state.queue.pop(0)
            if task.fingerprint in self._tasks:
                self._queue.append(task)

    def _grant(self, worker: _WorkerInfo) -> Dict[str, Any]:
        if self._stop.is_set() or self._error is not None:
            return {"kind": "done"}
        if not worker.leasable():
            return {"kind": "done"}
        self._drain_retries()
        now = time.monotonic()
        self._queue = [
            t for t in self._queue if not self.state.committed(t)
        ]
        ready = [t for t in self._queue if t.ready_at <= now]
        if not ready:
            if not self._queue and not self._leases and self._complete():
                return {"kind": "done"}
            wait = 0.25
            if self._queue:
                wait = max(
                    0.05, min(t.ready_at for t in self._queue) - now
                )
            return {"kind": "idle", "wait_s": round(min(wait, 1.0), 3)}
        task = ready[0]
        self._queue.remove(task)
        if task.fingerprint in self._lost:
            self._lost.discard(task.fingerprint)
            self.state.metrics.reassignments += 1
        task.attempts += 1
        task.started_at = now
        self.state.record(task).status = "running"
        self._leases[task.fingerprint] = _Lease(
            task=task,
            worker_id=worker.id,
            deadline=now + self.config.lease_timeout_s,
        )
        plan = task.members[0][1].fault_plan
        payload = encode_payload((
            task.key[0],
            plan,
            tuple(point for _, point in task.members),
            task.key[2],
            self.state.extract,
            task.label,
            self._trace_ctx,
            task.key[3] if len(task.key) > 3 else None,
        ))
        _log.info(
            "fleet: leased task",
            extra={
                "task": task.fingerprint,
                "key": task.label,
                "worker": worker.id,
                "attempt": task.attempts,
            },
        )
        return {
            "kind": "lease",
            "task": task.fingerprint,
            "label": task.label,
            "attempt": task.attempts,
            "lease_timeout_s": self.config.lease_timeout_s,
            "payload": payload,
        }

    def _on_result(self, worker: _WorkerInfo, message: Dict[str, Any]) -> None:
        fingerprint = str(message.get("task"))
        task = self._tasks.get(fingerprint)
        if task is None:
            return
        lease = self._leases.get(fingerprint)
        if lease is not None and lease.worker_id == worker.id:
            del self._leases[fingerprint]
        if self.state.committed(task):
            # Duplicate delivery (chaos dup, or a thawed worker racing
            # its replacement): the first commit won, drop this one.
            _log.info(
                "fleet: dropped duplicate result",
                extra={"task": fingerprint, "worker": worker.id},
            )
            return
        task.wall_s += float(message.get("wall_s", 0.0) or 0.0)
        try:
            values, group_metrics, spans = decode_payload(
                message.get("payload") or ""
            )
        except Exception as exc:
            task.last_error = WorkerLostError(
                f"worker {worker.id} returned an unreadable payload for "
                f"task {task.label}: {exc}",
                worker=worker.id,
                task=fingerprint,
            )
            worker.failures += 1
            self._maybe_quarantine_worker(worker)
            self.supervisor._handle_failure(task, self.state)
            return
        group_metrics.executed = "fleet"
        get_tracer().adopt(spans)
        if self.supervisor._commit(task, values, group_metrics, self.state):
            worker.tasks_done += 1
            if self.state.metrics.mode == "serial":
                self.state.metrics.mode = "fleet"

    def _on_failure(self, worker: _WorkerInfo, message: Dict[str, Any]) -> None:
        fingerprint = str(message.get("task"))
        task = self._tasks.get(fingerprint)
        if task is None:
            return
        lease = self._leases.get(fingerprint)
        if lease is not None and lease.worker_id == worker.id:
            del self._leases[fingerprint]
        if self.state.committed(task):
            return
        task.wall_s += float(message.get("wall_s", 0.0) or 0.0)
        task.last_error = ReproError(
            f"{message.get('error_type', 'Error')}: "
            f"{message.get('error', 'worker-side failure')}"
        )
        worker.failures += 1
        self._maybe_quarantine_worker(worker)
        self.supervisor._handle_failure(task, self.state)

    def _maybe_quarantine_worker(self, worker: _WorkerInfo) -> None:
        if (
            worker.status == "active"
            and worker.failures >= self.config.worker_max_failures
        ):
            worker.status = "quarantined"
            _log.warning(
                "fleet: worker quarantined",
                extra={"worker": worker.id, "failures": worker.failures},
            )

    def _release_worker_leases(
        self, worker: _WorkerInfo, reason: str, charge: bool = False
    ) -> None:
        """Requeue every lease the worker holds (optionally as failures)."""
        held = [
            lease for lease in self._leases.values()
            if lease.worker_id == worker.id
        ]
        for lease in held:
            task = lease.task
            del self._leases[task.fingerprint]
            if self.state.committed(task):
                continue
            self._lost.add(task.fingerprint)
            if charge:
                task.last_error = WorkerLostError(
                    f"worker {worker.id} lost while running task "
                    f"{task.label}: {reason}",
                    worker=worker.id,
                    task=task.fingerprint,
                )
                worker.failures += 1
                self._maybe_quarantine_worker(worker)
                self.supervisor._handle_failure(task, self.state)
            else:
                # Clean shutdown mid-lease: requeue without an attempt
                # charge, mirroring innocent pool-sibling requeues.
                task.attempts -= 1
                task.ready_at = 0.0
                self.state.record(task).status = "pending"
                self._queue.append(task)

    def _declare_dead(self, worker: _WorkerInfo, reason: str) -> None:
        worker.status = "dead"
        self.state.metrics.worker_deaths += 1
        _log.warning(
            "fleet: worker died",
            extra={"worker": worker.id, "reason": reason},
        )
        try:
            worker.conn.close()
        except OSError:
            pass
        self._release_worker_leases(worker, reason, charge=True)

    def _expire_leases(self, now: float) -> None:
        expired = [
            lease for lease in self._leases.values() if now > lease.deadline
        ]
        for lease in expired:
            task = lease.task
            del self._leases[task.fingerprint]
            self.state.metrics.leases_expired += 1
            holder = self._workers.get(lease.worker_id)
            _log.warning(
                "fleet: lease expired",
                extra={
                    "task": task.fingerprint,
                    "key": task.label,
                    "worker": lease.worker_id,
                },
            )
            if self.state.committed(task):
                continue
            self._lost.add(task.fingerprint)
            task.last_error = TaskTimeoutError(
                f"lease on task {task.label} ({task.fingerprint}) held by "
                f"worker {lease.worker_id} exceeded its "
                f"{self.config.lease_timeout_s:g}s deadline",
                task=task.fingerprint,
                timeout_s=self.config.lease_timeout_s,
            )
            if holder is not None:
                holder.failures += 1
                self._maybe_quarantine_worker(holder)
            self.supervisor._handle_failure(task, self.state)

    def _scan_heartbeats(self, now: float) -> None:
        grace = self.config.heartbeat_s * self.config.heartbeat_grace
        for worker in list(self._workers.values()):
            if worker.status != "active":
                continue
            if now - worker.last_seen > grace:
                self._declare_dead(
                    worker,
                    f"no heartbeat for {now - worker.last_seen:.1f}s",
                )

    def _complete(self) -> bool:
        return all(
            self.state.records[fp].status in ("done", "resumed", "quarantined")
            for fp in self._order
        )

    def _leasable_workers(self) -> int:
        return sum(1 for w in self._workers.values() if w.leasable())

    # ------------------------------------------------------------------
    def poll(self) -> List["_Task"]:
        """Drive the run to completion or fall back; supervisor thread.

        Returns the tasks the fleet could not finish (empty on full
        completion) for the supervisor's in-process execution paths.
        """
        while True:
            with self._lock:
                if self._error is not None:
                    error = self._error
                    raise error
                now = time.monotonic()
                self._expire_leases(now)
                self._scan_heartbeats(now)
                self._drain_retries()
                if self._complete():
                    return []
                if not self._leases and self._leasable_workers() == 0:
                    # Nobody to lease to and nothing in flight: give the
                    # fleet a grace window (first worker still starting,
                    # or a reconnect after a death), then degrade to the
                    # in-process paths with whatever is left.
                    if now - self._last_activity > self.config.fleet_wait_s:
                        return self._leftovers()
            time.sleep(self.config.poll_interval_s)

    def _leftovers(self) -> List["_Task"]:
        leftovers: List["_Task"] = []
        for fingerprint in self._order:
            record = self.state.records[fingerprint]
            if record.status in ("done", "resumed", "quarantined"):
                continue
            record.status = "pending"
            leftovers.append(self._tasks[fingerprint])
        if leftovers:
            _log.warning(
                "fleet: degrading to in-process execution",
                extra={
                    "leftover_tasks": len(leftovers),
                    "ever_connected": self._ever_connected,
                },
            )
        return leftovers

    def linger(self, timeout_s: float = 3.0) -> None:
        """Give attached workers a beat to pick up their ``done`` reply.

        Without this, closing right after the last commit races the
        workers' request loops: they would observe a dropped connection
        (and exit through their reconnect/patience path) instead of the
        clean shutdown handshake.  Costs nothing when no worker is
        attached.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not any(
                    w.status == "active" for w in self._workers.values()
                ):
                    return
            time.sleep(self.config.poll_interval_s)

    def accounting(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [w.accounting() for w in self._workers.values()]


def execute_fleet(
    supervisor: "RunSupervisor",
    tasks: List["_Task"],
    state: "_RunState",
) -> List["_Task"]:
    """Run ``tasks`` on the fleet; return what must run in-process.

    Every degradation path funnels here: unleasable work (no extractor,
    or an unpicklable one), a transport that cannot bind, zero workers
    within the grace window, or a mid-run loss of every worker.  The
    caller treats the returned tasks exactly like a fleet-less run.
    """
    import pickle

    extract = state.extract
    if extract is None:
        _log.warning(
            "fleet: raw-outcome sweeps are not leasable; running in-process"
        )
        return tasks
    try:
        pickle.dumps(extract)
        for task in tasks:
            pickle.dumps(task.members[0][1].fault_plan)
    except Exception:
        _log.warning(
            "fleet: unpicklable extractor or fault plan; running in-process"
        )
        return tasks

    coordinator = FleetCoordinator(supervisor, tasks, state)
    try:
        bound = coordinator.start()
    except FleetTransportError as exc:
        _log.warning(
            "fleet: transport unavailable; running in-process",
            extra={"error": str(exc)},
        )
        return tasks
    try:
        coordinator.write_discovery(bound)
        leftovers = coordinator.poll()
        coordinator.linger()
    finally:
        coordinator.close()
        state.fleet_workers.extend(coordinator.accounting())
    return leftovers


# ----------------------------------------------------------------------
# Service fleet (persistent coordinator for the exploration service)
# ----------------------------------------------------------------------

class _ServiceTask:
    """One service cache-miss waiting on (or out to) a fleet worker."""

    def __init__(
        self,
        task_id: str,
        spec: Any,
        activities: Optional[Tuple[float, ...]],
        solver: Optional[str],
        label: str,
        trace_ctx: Optional[Dict[str, Any]] = None,
    ):
        self.id = task_id
        self.spec = spec
        self.activities = activities
        self.solver = solver
        self.label = label
        #: Per-query trace context (the replica's in-request span chain);
        #: forwarded to whichever worker leases this task so its spans
        #: attach under the query's span tree, not the fleet's startup.
        self.trace_ctx = trace_ctx
        self.attempts = 0
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.cancelled = False

    def complete(self, value: Any) -> None:
        if not self.done.is_set():
            self.value = value
            self.done.set()

    def fail(self, error: BaseException) -> None:
        if not self.done.is_set():
            self.error = error
            self.done.set()


class ServiceFleet:
    """A long-lived lease coordinator for ``repro serve --fleet``.

    :class:`FleetCoordinator` is bound to one supervised *run*: it leases
    a fixed task list, then tells every worker ``done``.  A service has
    no such end — queries arrive forever — so this variant keeps the
    exact worker-facing wire protocol (``hello``/``request``/``result``/
    ``failure``/``heartbeat``/``goodbye``, protocol v2; a stock
    ``repro worker`` attaches to either without knowing which) but runs
    an open-ended queue: :meth:`solve` blocks one server thread until a
    worker returns the answer, a lease expires too many times, or the
    query's deadline passes.  ``done`` is sent only at :meth:`close`,
    so attached workers exit through their clean-shutdown path.

    At-least-once semantics carry over: an expired lease or a dead
    worker charges the task one attempt and requeues it; the *caller*
    (the service's solver worker) owns idempotency, which it gets for
    free from the fingerprint-keyed cache write.  When no worker is
    attached for longer than ``wait_s``, queued solves fail with
    :class:`~repro.errors.FleetTransportError` — the server catches
    that and falls back to its local executor, so a fleet-less
    ``--fleet`` server degrades to a plain one instead of hanging.
    """

    def __init__(
        self,
        bind: str,
        extract: Any,
        lease_timeout_s: float = 60.0,
        heartbeat_s: float = 2.0,
        heartbeat_grace: float = 4.0,
        max_attempts: int = 3,
        wait_s: float = 10.0,
        worker_max_failures: int = 3,
    ):
        self.bind_address = bind
        self._extract = extract
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_s = heartbeat_s
        self.heartbeat_grace = heartbeat_grace
        self.max_attempts = max(1, int(max_attempts))
        self.wait_s = wait_s
        self.worker_max_failures = worker_max_failures
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._queue: List[_ServiceTask] = []
        self._leases: Dict[str, _Lease] = {}
        self._workers: Dict[str, _WorkerInfo] = {}
        self._threads: List[threading.Thread] = []
        self._server: Optional[socket.socket] = None
        self._seq = 0
        self._trace_ctx = get_tracer().worker_context()
        self._run_fp = f"service-{os.getpid()}"
        self._last_worker_seen = time.monotonic()
        self.address: Optional[str] = None
        # Counters (read by the server's metrics endpoint).
        self.tasks_done = 0
        self.task_failures = 0
        self.leases_expired = 0
        self.worker_deaths = 0

    # ------------------------------------------------------------------
    def start(self) -> str:
        """Bind, listen, start accept + reaper threads; returns address."""
        host, port = parse_address(self.bind_address)
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((host, port))
            server.listen(16)
        except OSError as exc:
            server.close()
            raise FleetTransportError(
                f"cannot bind service fleet on {host}:{port}: {exc}",
                address=f"{host}:{port}",
            ) from None
        server.settimeout(0.25)
        self._server = server
        self.address = f"{server.getsockname()[0]}:{server.getsockname()[1]}"
        self._last_worker_seen = time.monotonic()
        for name, target in (
            ("service-fleet-accept", self._accept_loop),
            ("service-fleet-reaper", self._reaper_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        _log.info(
            "service fleet listening",
            extra={"address": self.address, "run_fingerprint": self._run_fp},
        )
        return self.address

    def close(self) -> None:
        """Stop leasing: fail queued work, release workers, close sockets."""
        self._stop.set()
        with self._lock:
            pending = list(self._queue) + [l.task for l in self._leases.values()]
            self._queue.clear()
            self._leases.clear()
            workers = list(self._workers.values())
        for task in pending:
            task.fail(
                FleetTransportError(
                    "service fleet is shutting down", address=self.address
                )
            )
        # Let attached workers pick up their "done" reply before the
        # sockets drop (mirrors FleetCoordinator.linger, shortened).
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            with self._lock:
                if not any(w.status == "active" for w in workers):
                    break
            time.sleep(0.05)
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def workers_connected(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.leasable())

    def counters(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "address": self.address,
                "workers": sum(
                    1 for w in self._workers.values() if w.leasable()
                ),
                "workers_ever": len(self._workers),
                "queue_depth": len(self._queue),
                "leased": len(self._leases),
                "tasks_done": self.tasks_done,
                "task_failures": self.task_failures,
                "leases_expired": self.leases_expired,
                "worker_deaths": self.worker_deaths,
            }

    # ------------------------------------------------------------------
    def solve(
        self,
        spec: Any,
        activities: Optional[Tuple[float, ...]] = None,
        timeout_s: Optional[float] = None,
        solver: Optional[str] = None,
        label: Optional[str] = None,
        trace_ctx: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Fan one query out to the fleet; blocks the calling thread.

        ``trace_ctx`` (a :meth:`Tracer.worker_context` dict) rides the
        lease to the worker, so worker-side spans join the query's
        distributed trace rather than the fleet-construction context.

        Raises :class:`FleetTransportError` when no worker is attached
        within ``wait_s`` (the server's cue to solve locally instead)
        and :class:`~repro.errors.DeadlineExceededError` when
        ``timeout_s`` runs out first.
        """
        if self._stop.is_set():
            raise FleetTransportError(
                "service fleet is not running", address=self.address
            )
        with self._lock:
            self._seq += 1
            task = _ServiceTask(
                task_id=f"svc-{os.getpid()}-{self._seq}",
                spec=spec,
                activities=activities,
                solver=solver,
                label=label or f"query-{self._seq}",
                trace_ctx=trace_ctx,
            )
            self._queue.append(task)
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        try:
            while not task.done.wait(0.05):
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    self._abandon(task)
                    raise DeadlineExceededError(
                        f"fleet solve of {task.label} exceeded its "
                        f"{timeout_s:g}s budget",
                        task=task.id,
                        timeout_s=timeout_s,
                    )
                with self._lock:
                    leased = task.id in self._leases
                    starved = (
                        not leased
                        and not any(
                            w.leasable() for w in self._workers.values()
                        )
                        and now - max(
                            task.enqueued_at, self._last_worker_seen
                        ) > self.wait_s
                    )
                if starved:
                    self._abandon(task)
                    raise FleetTransportError(
                        f"no fleet worker attached within "
                        f"{self.wait_s:g}s; falling back",
                        address=self.address,
                    )
                if self._stop.is_set() and not task.done.is_set():
                    raise FleetTransportError(
                        "service fleet stopped mid-solve",
                        address=self.address,
                    )
        finally:
            if not task.done.is_set():
                self._abandon(task)
        if task.error is not None:
            raise task.error
        return task.value

    def _abandon(self, task: _ServiceTask) -> None:
        """Stop tracking a task whose caller gave up (late results drop)."""
        with self._lock:
            task.cancelled = True
            if task in self._queue:
                self._queue.remove(task)
            self._leases.pop(task.id, None)

    # ------------------------------------------------------------------
    # Transport (mirrors FleetCoordinator's loops on simpler state)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"service-fleet-conn-{peer[1]}",
                daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _reaper_loop(self) -> None:
        while not self._stop.wait(0.25):
            with self._lock:
                now = time.monotonic()
                self._expire_leases(now)
                self._scan_heartbeats(now)

    def _serve_connection(self, conn: socket.socket, peer: str) -> None:
        worker: Optional[_WorkerInfo] = None
        reader = conn.makefile("r", encoding="utf-8")
        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    break
                try:
                    worker, keep = self._dispatch(conn, peer, worker, message)
                except OSError:
                    break
                if not keep:
                    break
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:
                pass
            if worker is not None:
                with self._lock:
                    if worker.status == "active" and not self._stop.is_set():
                        self._declare_dead(worker, "connection lost")

    def _dispatch(
        self,
        conn: socket.socket,
        peer: str,
        worker: Optional[_WorkerInfo],
        message: Dict[str, Any],
    ) -> Tuple[Optional[_WorkerInfo], bool]:
        kind = message.get("kind")
        with self._lock:
            if kind == "hello":
                if message.get("protocol") != PROTOCOL_VERSION:
                    _send(conn, {
                        "kind": "refused",
                        "reason": (
                            f"protocol {message.get('protocol')!r} != "
                            f"{PROTOCOL_VERSION}"
                        ),
                    })
                    return None, False
                worker_id = str(message.get("worker") or peer)
                existing = self._workers.get(worker_id)
                if existing is not None:
                    existing.conn = conn
                    existing.address = peer
                    existing.last_seen = time.monotonic()
                    if existing.status in ("dead", "gone"):
                        existing.status = "active"
                    worker = existing
                else:
                    worker = _WorkerInfo(
                        id=worker_id,
                        address=peer,
                        conn=conn,
                        last_seen=time.monotonic(),
                    )
                    self._workers[worker_id] = worker
                self._last_worker_seen = time.monotonic()
                _send(conn, {
                    "kind": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "run_fingerprint": self._run_fp,
                    "heartbeat_s": self.heartbeat_s,
                })
                _log.info(
                    "service fleet: worker joined",
                    extra={"worker": worker_id, "peer": peer},
                )
                return worker, True
            if worker is None:
                return None, False
            worker.last_seen = time.monotonic()
            self._last_worker_seen = worker.last_seen
            if kind == "heartbeat":
                return worker, True
            if kind == "request":
                reply = self._grant(worker)
                if reply.get("kind") == "done" and worker.status == "active":
                    worker.status = "gone"
                _send(conn, reply)
                return worker, reply.get("kind") != "done"
            if kind == "result":
                self._on_result(worker, message)
                return worker, True
            if kind == "failure":
                self._on_failure(worker, message)
                return worker, True
            if kind == "goodbye":
                worker.status = "gone"
                self._release_worker_leases(worker, "worker shut down")
                return worker, False
        return worker, True

    # ------------------------------------------------------------------
    # Lease management (callers hold the lock)
    # ------------------------------------------------------------------
    def _grant(self, worker: _WorkerInfo) -> Dict[str, Any]:
        if self._stop.is_set() or not worker.leasable():
            return {"kind": "done"}
        if not self._queue:
            return {"kind": "idle", "wait_s": 0.25}
        task = self._queue.pop(0)
        task.attempts += 1
        now = time.monotonic()
        self._leases[task.id] = _Lease(
            task=task,  # type: ignore[arg-type]
            worker_id=worker.id,
            deadline=now + self.lease_timeout_s,
        )
        points = (
            SweepPoint(spec=task.spec, layer_activities=task.activities),
        )
        payload = encode_payload((
            task.spec,
            None,
            points,
            False,
            self._extract,
            task.label,
            task.trace_ctx if task.trace_ctx is not None else self._trace_ctx,
            task.solver,
        ))
        return {
            "kind": "lease",
            "task": task.id,
            "label": task.label,
            "attempt": task.attempts,
            "lease_timeout_s": self.lease_timeout_s,
            "payload": payload,
        }

    def _take_lease(
        self, worker: _WorkerInfo, message: Dict[str, Any]
    ) -> Optional[_ServiceTask]:
        lease = self._leases.get(str(message.get("task")))
        if lease is None or lease.worker_id != worker.id:
            return None  # late reply after expiry/abandon: drop it
        del self._leases[lease.task.id]  # type: ignore[union-attr]
        return lease.task  # type: ignore[return-value]

    def _on_result(self, worker: _WorkerInfo, message: Dict[str, Any]) -> None:
        task = self._take_lease(worker, message)
        if task is None or task.cancelled:
            return
        try:
            values, _group_metrics, spans = decode_payload(
                message.get("payload") or ""
            )
        except Exception as exc:
            self._charge(
                task,
                worker,
                WorkerLostError(
                    f"worker {worker.id} returned an unreadable payload "
                    f"for {task.label}: {exc}",
                    worker=worker.id,
                    task=task.id,
                ),
            )
            return
        get_tracer().adopt(spans)
        worker.tasks_done += 1
        self.tasks_done += 1
        task.complete(values[0])

    def _on_failure(self, worker: _WorkerInfo, message: Dict[str, Any]) -> None:
        task = self._take_lease(worker, message)
        if task is None or task.cancelled:
            return
        self._charge(
            task,
            worker,
            ReproError(
                f"{message.get('error_type', 'Error')}: "
                f"{message.get('error', 'worker-side failure')}"
            ),
        )

    def _charge(
        self,
        task: _ServiceTask,
        worker: Optional[_WorkerInfo],
        error: BaseException,
    ) -> None:
        """One failed attempt: requeue, or fail out at max_attempts."""
        if worker is not None:
            worker.failures += 1
            if (
                worker.status == "active"
                and worker.failures >= self.worker_max_failures
            ):
                worker.status = "quarantined"
                _log.warning(
                    "service fleet: worker quarantined",
                    extra={"worker": worker.id, "failures": worker.failures},
                )
        if task.cancelled:
            return
        if task.attempts >= self.max_attempts:
            self.task_failures += 1
            task.fail(error)
            return
        self._queue.append(task)

    def _release_worker_leases(
        self, worker: _WorkerInfo, reason: str, charge: bool = False
    ) -> None:
        held = [
            lease for lease in self._leases.values()
            if lease.worker_id == worker.id
        ]
        for lease in held:
            task: _ServiceTask = lease.task  # type: ignore[assignment]
            del self._leases[task.id]
            if charge:
                self._charge(
                    task,
                    worker,
                    WorkerLostError(
                        f"worker {worker.id} lost while solving "
                        f"{task.label}: {reason}",
                        worker=worker.id,
                        task=task.id,
                    ),
                )
            elif not task.cancelled:
                # Clean goodbye mid-lease: requeue without a charge.
                task.attempts -= 1
                self._queue.append(task)

    def _declare_dead(self, worker: _WorkerInfo, reason: str) -> None:
        worker.status = "dead"
        self.worker_deaths += 1
        _log.warning(
            "service fleet: worker died",
            extra={"worker": worker.id, "reason": reason},
        )
        try:
            worker.conn.close()
        except OSError:
            pass
        self._release_worker_leases(worker, reason, charge=True)

    def _expire_leases(self, now: float) -> None:
        expired = [
            lease for lease in self._leases.values() if now > lease.deadline
        ]
        for lease in expired:
            task: _ServiceTask = lease.task  # type: ignore[assignment]
            del self._leases[task.id]
            self.leases_expired += 1
            holder = self._workers.get(lease.worker_id)
            self._charge(
                task,
                holder,
                TaskTimeoutError(
                    f"fleet lease on {task.label} held by worker "
                    f"{lease.worker_id} exceeded its "
                    f"{self.lease_timeout_s:g}s deadline",
                    task=task.id,
                    timeout_s=self.lease_timeout_s,
                ),
            )

    def _scan_heartbeats(self, now: float) -> None:
        grace = self.heartbeat_s * self.heartbeat_grace
        for worker in list(self._workers.values()):
            if worker.status != "active":
                continue
            if now - worker.last_seen > grace:
                self._declare_dead(
                    worker,
                    f"no heartbeat for {now - worker.last_seen:.1f}s",
                )


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------

def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _WorkerSession:
    """One worker's connection state (socket + reader + send lock)."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.reader = sock.makefile("r", encoding="utf-8")
        self.send_lock = threading.Lock()

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def _connect(
    address: str, patience_s: float
) -> _WorkerSession:
    """Dial the coordinator, retrying within the patience window."""
    host, port = parse_address(address)
    deadline = time.monotonic() + patience_s
    last: Optional[Exception] = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.settimeout(15.0)
            return _WorkerSession(sock)
        except OSError as exc:
            last = exc
            if time.monotonic() >= deadline:
                raise FleetTransportError(
                    f"cannot reach fleet coordinator at {host}:{port} "
                    f"within {patience_s:g}s: {last}",
                    address=f"{host}:{port}",
                ) from None
            time.sleep(0.25)


def _read_reply(session: _WorkerSession) -> Dict[str, Any]:
    line = session.reader.readline()
    if not line:
        raise OSError("coordinator closed the connection")
    return json.loads(line)


def _heartbeat_loop(
    session: _WorkerSession,
    worker_id: str,
    period_s: float,
    stop: threading.Event,
    chaos: ChaosMonkey,
) -> None:
    while not stop.wait(period_s):
        try:
            _send(
                session.sock,
                {"kind": "heartbeat", "worker": worker_id},
                lock=session.send_lock,
                copies=chaos.copies("heartbeat"),
            )
        except OSError:
            return


def run_worker(
    address: str,
    worker_id: Optional[str] = None,
    patience_s: float = 30.0,
) -> Dict[str, Any]:
    """Join the fleet at ``address`` and work until the run completes.

    Registers, then loops ``request`` → solve → ``result`` until the
    coordinator says ``done`` (clean exit, preceded by ``goodbye``).
    Transport trouble triggers reconnects inside a ``patience_s`` window
    per outage; a coordinator that stays unreachable raises
    :class:`repro.errors.FleetTransportError`.  Returns the worker's own
    accounting summary.

    Chaos faults (``REPRO_CHAOS``, see :mod:`repro.runtime.chaos`) are
    applied between solving and reporting, so an induced death always
    models "worker died mid-task" from the coordinator's viewpoint.
    """
    worker_id = worker_id or _default_worker_id()
    chaos = ChaosMonkey(ChaosPlan.from_env())
    tasks_done = 0
    failures = 0
    reconnects = -1  # first connect is not a reconnect
    run_fp: Optional[str] = None

    while True:
        session = _connect(address, patience_s)
        reconnects += 1
        stop_heartbeat = threading.Event()
        heartbeat: Optional[threading.Thread] = None
        try:
            _send(
                session.sock,
                {
                    "kind": "hello",
                    "worker": worker_id,
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                },
                lock=session.send_lock,
            )
            welcome = _read_reply(session)
            if welcome.get("kind") != "welcome":
                raise FleetTransportError(
                    f"coordinator refused worker {worker_id}: "
                    f"{welcome.get('reason', welcome.get('kind'))}",
                    address=address,
                )
            run_fp = welcome.get("run_fingerprint")
            heartbeat = threading.Thread(
                target=_heartbeat_loop,
                args=(
                    session,
                    worker_id,
                    float(welcome.get("heartbeat_s", 2.0) or 2.0),
                    stop_heartbeat,
                    chaos,
                ),
                name="fleet-heartbeat",
                daemon=True,
            )
            heartbeat.start()
            _log.info(
                "worker joined fleet",
                extra={
                    "worker": worker_id,
                    "address": address,
                    "run_fingerprint": run_fp,
                },
            )

            while True:
                _send(
                    session.sock,
                    {"kind": "request", "worker": worker_id},
                    lock=session.send_lock,
                )
                reply = _read_reply(session)
                kind = reply.get("kind")
                if kind == "done":
                    _send(
                        session.sock,
                        {"kind": "goodbye", "worker": worker_id},
                        lock=session.send_lock,
                        copies=chaos.copies("goodbye"),
                    )
                    return {
                        "worker": worker_id,
                        "address": address,
                        "run_fingerprint": run_fp,
                        "tasks_done": tasks_done,
                        "failures": failures,
                        "reconnects": reconnects,
                    }
                if kind == "idle":
                    time.sleep(float(reply.get("wait_s", 0.25) or 0.25))
                    continue
                if kind != "lease":
                    raise FleetTransportError(
                        f"unexpected coordinator reply {kind!r}",
                        address=address,
                    )

                fingerprint = reply["task"]
                t0 = time.perf_counter()
                try:
                    spec, plan, points, resilient, extract, label, ctx, solver = (
                        decode_payload(reply["payload"])
                    )
                    tracing = activate_worker_context(ctx)
                    tracer = get_tracer()
                    # Label the TCP hop: one `fleet.task` span per lease,
                    # re-parenting the solve's `group` span under it so
                    # the reassembled tree shows coordinator → worker.
                    with tracer.span(
                        "fleet.task",
                        worker=worker_id,
                        task=fingerprint,
                        attempt=int(reply.get("attempt", 1) or 1),
                    ) as task_span:
                        if task_span.span_id is not None:
                            ctx = dict(ctx)
                            ctx["parent_id"] = task_span.span_id
                        values, group_metrics, spans = _run_group_remote(
                            spec, plan, points, resilient, extract, label,
                            ctx, solver,
                        )
                    if tracing:
                        spans = list(spans) + tracer.drain()
                except Exception as exc:
                    failures += 1
                    _log.warning(
                        "worker: task failed",
                        extra={
                            "task": fingerprint,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                    _send(
                        session.sock,
                        {
                            "kind": "failure",
                            "worker": worker_id,
                            "task": fingerprint,
                            "error": str(exc),
                            "error_type": type(exc).__name__,
                            "wall_s": round(time.perf_counter() - t0, 6),
                        },
                        lock=session.send_lock,
                        copies=chaos.copies("failure"),
                    )
                    continue
                # Chaos window: a planned SIGKILL/freeze lands after the
                # solve and before the report — the coordinator sees a
                # mid-task death or an expiring lease.
                chaos.on_task_executed()
                tasks_done += 1
                _send(
                    session.sock,
                    {
                        "kind": "result",
                        "worker": worker_id,
                        "task": fingerprint,
                        "payload": encode_payload(
                            (values, group_metrics, spans)
                        ),
                        "wall_s": round(time.perf_counter() - t0, 6),
                    },
                    lock=session.send_lock,
                    copies=chaos.copies("result"),
                )
        except FleetTransportError:
            raise
        except (OSError, socket.timeout, json.JSONDecodeError) as exc:
            _log.warning(
                "worker: transport trouble, reconnecting",
                extra={"worker": worker_id, "error": str(exc)},
            )
            time.sleep(0.25)
            continue
        finally:
            stop_heartbeat.set()
            session.close()
            if heartbeat is not None:
                heartbeat.join(timeout=1.0)
