"""Batched sweep runtime: PDNSpec, SweepEngine, supervision, fleet, metrics."""

from repro.runtime.spec import (
    PDNSpec,
    REGULAR,
    VOLTAGE_STACKED,
    DEFAULT_GRID_NODES,
)
from repro.runtime.metrics import (
    BENCH_DIR_ENV,
    BENCH_SCHEMA,
    GroupMetrics,
    SweepMetrics,
    maybe_write_bench_json,
    write_bench_json,
)
from repro.runtime.engine import (
    SweepEngine,
    SweepOutcome,
    SweepPoint,
    SweepResult,
    WORKERS_ENV,
    group_points,
)
from repro.runtime.journal import (
    JOURNAL_SCHEMA,
    RunJournal,
    atomic_write_text,
    clean_stale_tmp,
)
from repro.runtime.chaos import ChaosMonkey, ChaosPlan
from repro.runtime.fleet import (
    FleetCoordinator,
    PROTOCOL_VERSION,
    parse_address,
    run_worker,
)
from repro.runtime.supervisor import (
    RunReport,
    RunSupervisor,
    SupervisedResult,
    SupervisorConfig,
    TaskRecord,
    run_fingerprint,
    task_fingerprint,
)

__all__ = [
    "PDNSpec",
    "REGULAR",
    "VOLTAGE_STACKED",
    "DEFAULT_GRID_NODES",
    "SweepEngine",
    "SweepPoint",
    "SweepOutcome",
    "SweepResult",
    "GroupMetrics",
    "SweepMetrics",
    "write_bench_json",
    "maybe_write_bench_json",
    "BENCH_SCHEMA",
    "BENCH_DIR_ENV",
    "WORKERS_ENV",
    "group_points",
    "JOURNAL_SCHEMA",
    "RunJournal",
    "atomic_write_text",
    "clean_stale_tmp",
    "ChaosMonkey",
    "ChaosPlan",
    "FleetCoordinator",
    "PROTOCOL_VERSION",
    "parse_address",
    "run_worker",
    "RunSupervisor",
    "SupervisorConfig",
    "SupervisedResult",
    "RunReport",
    "TaskRecord",
    "task_fingerprint",
    "run_fingerprint",
]
