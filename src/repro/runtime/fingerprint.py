"""Content fingerprints shared by the engine, supervisor, and obs layer.

Historically these lived in :mod:`repro.runtime.supervisor`; they moved
here so the engine (and the trace exporters) can stamp every artifact of
a run — ``BENCH_*.json``, ``report-<fp>.json``, ``journal-<fp>.jsonl``,
``trace-<fp>.jsonl`` — with the *same* run fingerprint without importing
the supervisor.  One fingerprint joins all four files of a run.
"""

from __future__ import annotations

import functools
import hashlib
import re
from typing import Any, Sequence, Tuple

__all__ = [
    "task_fingerprint",
    "run_fingerprint",
]


def _stable_repr(value: Any) -> str:
    """A repr that is identical across independent interpreter runs.

    RNG generators are described by their bit-generator state (content,
    not object identity); any other default repr has its ``at 0x...``
    memory address stripped.
    """
    state = getattr(getattr(value, "bit_generator", None), "state", None)
    if state is not None:
        return f"rng:{state!r}"
    return re.sub(r" at 0x[0-9a-fA-F]+", "", repr(value))


def _plan_description(plan: Any) -> str:
    """A run-stable textual identity for a fault plan.

    Unlike the engine's in-process ``_plan_key`` (which falls back to
    ``id(plan)`` for factories), this must not change between the
    original run and a resumed one, so factories are described by their
    qualified name plus stable reprs of their partial arguments.
    """
    if plan is None:
        return "none"
    fingerprint = getattr(plan, "fingerprint", None)
    if fingerprint is not None:
        return f"plan:{fingerprint()!r}"
    if isinstance(plan, functools.partial):
        func = plan.func
        args = [_stable_repr(a) for a in plan.args]
        keywords = [
            (k, _stable_repr(v)) for k, v in sorted(plan.keywords.items())
        ]
        return (
            f"factory:{getattr(func, '__module__', '?')}."
            f"{getattr(func, '__qualname__', repr(func))}"
            f":{args!r}:{keywords!r}"
        )
    name = getattr(plan, "__qualname__", None)
    if name is not None:
        return f"factory:{getattr(plan, '__module__', '?')}.{name}"
    return f"factory:{type(plan).__module__}.{type(plan).__qualname__}"


def task_fingerprint(key, members: Sequence[Tuple[int, Any]]) -> str:
    """Content fingerprint of one topology task (16 hex chars).

    ``key`` is an engine ``GroupKey`` — ``(spec, plan identity,
    resilient, solver backend)`` — and ``members`` the group's
    ``(index, point)`` pairs.  The solver backend is part of the
    content (a resumed run must not serve cholesky results to an lu
    request), except that the default ``"lu"`` is omitted so
    fingerprints of default-backend runs match pre-backend journals.
    """
    spec, resilient = key[0], key[2]
    solver = key[3] if len(key) > 3 else "lu"
    plan = members[0][1].fault_plan
    parts = [repr(spec.key()), _plan_description(plan), repr(bool(resilient))]
    if solver != "lu":
        parts.append(f"solver:{solver}")
    for index, point in members:
        parts.append(repr((index, point.activities_tuple(), point.tag)))
    digest = hashlib.sha256(
        "\n".join(parts).encode("utf-8", "backslashreplace")
    )
    return digest.hexdigest()[:16]


def run_fingerprint(task_fingerprints: Sequence[str], n_points: int) -> str:
    """Fingerprint of a whole run: its point count and task set."""
    parts = [str(n_points)] + list(task_fingerprints)
    return hashlib.sha256("\n".join(parts).encode("ascii")).hexdigest()[:16]
