"""Write-ahead run journal for supervised sweeps.

One :class:`RunJournal` is one JSONL file inside a run directory: a
header line naming the run fingerprint, then one record per completed
(or quarantined) topology task.  Every append rewrites the file through
an fsync'd tmp-file + ``os.replace`` sequence, so a SIGKILL at any
instant leaves either the previous journal or the new one — never a
torn line.  ``--resume <run_dir>`` replays the journal: tasks recorded
as ``done`` are restored bit-for-bit from their pickled payload and
skipped; everything else re-runs.

Any unparsable line raises
:class:`repro.errors.ResumeMismatchError` carrying the offending
1-based line number — a journal that cannot be trusted must not be
silently half-replayed.  ``salvage=True`` relaxes that for the tail
only: the journal is truncated at the *first* corrupted record (with a
logged warning naming the line and how many records were dropped) and
every intact record before it is replayed normally.  Header corruption
still hard-fails — without a trusted header there is nothing to salvage
against.
"""

from __future__ import annotations

import base64
import json
import os
import pathlib
import pickle
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ResumeMismatchError
from repro.obs.logs import get_logger

__all__ = [
    "JOURNAL_SCHEMA",
    "RunJournal",
    "atomic_write_text",
    "clean_stale_tmp",
    "encode_payload",
    "decode_payload",
]

_log = get_logger(__name__)

#: Schema version of the journal layout; bump on record changes.
JOURNAL_SCHEMA = 1


def atomic_write_text(
    path: Union[str, pathlib.Path],
    text: str,
    durable: bool = True,
    tmp_token: Optional[str] = None,
) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically (tmp file, fsync, rename).

    The containing directory is fsync'd too when the platform allows
    it, so the rename itself survives a crash.  ``durable=False`` skips
    both fsyncs: readers still never observe a torn file (the rename is
    what guarantees that), but an OS crash may lose the write — the
    right trade for advisory artifacts like trace flushes, where the
    fsync would dominate the cost of the write itself.

    ``tmp_token`` makes the scratch name writer-unique
    (``<name>.<token>.tmp``).  Required whenever *several processes*
    may write the same path concurrently — service replicas sharing a
    cache directory — because two writers interleaving on one shared
    tmp file could rename a torn mix of both payloads.  Tokened tmp
    files still match the ``*.tmp`` glob of :func:`clean_stale_tmp`.
    """
    path = pathlib.Path(path)
    suffix = f".{tmp_token}.tmp" if tmp_token else ".tmp"
    tmp = path.with_name(path.name + suffix)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if not durable:
        return path
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return path
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(dir_fd)
    return path


def clean_stale_tmp(directory: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """Remove leftover ``*.tmp`` files from an interrupted atomic write.

    A crash between the tmp-file write and the ``os.replace`` in
    :func:`atomic_write_text` (durable or not) strands a ``*.tmp`` next
    to the real artifact.  The stranded file holds a superseded or
    partial payload and must never be read; on the next run over the
    same directory it is deleted.  Returns the paths removed.
    """
    directory = pathlib.Path(directory)
    removed: List[pathlib.Path] = []
    if not directory.is_dir():
        return removed
    for tmp in sorted(directory.glob("*.tmp")):
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - racing writer/permissions
            continue
        removed.append(tmp)
    if removed:
        _log.warning(
            "removed stale tmp file(s) from an interrupted write",
            extra={
                "directory": str(directory),
                "files": [p.name for p in removed],
            },
        )
    return removed


def encode_payload(values: Any) -> Optional[str]:
    """Pickle + base64 a task's result values for a journal record.

    Returns None when the values cannot be pickled (e.g. raw
    ``SweepOutcome``\\ s holding SuperLU handles) — the record is still
    journaled, but resume will re-run the task instead of restoring it.
    """
    try:
        raw = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    return base64.b64encode(raw).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload` (bit-exact round trip)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class RunJournal:
    """An append-only JSONL journal with atomic, fsync'd writes."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self._lines: list = []

    # ------------------------------------------------------------------
    @classmethod
    def start(cls, path: Union[str, pathlib.Path], header: Dict) -> "RunJournal":
        """Create (or truncate) a journal with a fresh header line."""
        journal = cls(path)
        journal._lines = [
            json.dumps(
                {"kind": "header", "schema": JOURNAL_SCHEMA, **header},
                sort_keys=True,
            )
        ]
        journal._flush()
        return journal

    @classmethod
    def open_existing(
        cls, path: Union[str, pathlib.Path], salvage: bool = False
    ) -> Tuple["RunJournal", Dict, Dict[str, Dict]]:
        """Load a journal for resume.

        Returns ``(journal, header, task_records)`` where
        ``task_records`` maps task fingerprints to their latest record.
        Raises :class:`ResumeMismatchError` (with the 1-based line
        number) on any corrupted, truncated or unknown record — unless
        ``salvage`` is set, in which case the journal is truncated at
        the first corrupted record (warning logged with the drop count)
        and the intact prefix is replayed.  A corrupted *header* always
        raises: the salvage must have a trusted run identity to salvage
        against.
        """
        journal = cls(path)
        path = journal.path
        if not path.exists():
            raise ResumeMismatchError(f"no journal at {path}")
        header: Optional[Dict] = None
        records: Dict[str, Dict] = {}
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ResumeMismatchError(f"journal {path} is empty", line=1)
        for number, line in enumerate(lines, start=1):
            try:
                record = cls._parse_line(path, number, line)
            except ResumeMismatchError:
                if not salvage or number == 1:
                    raise
                dropped = len(lines) - (number - 1)
                _log.warning(
                    "salvage: truncating journal at first corrupted record",
                    extra={
                        "journal": str(path),
                        "line": number,
                        "dropped_records": dropped,
                    },
                )
                lines = lines[: number - 1]
                journal._lines = list(lines)
                journal._flush()
                break
            if number == 1:
                header = record
            else:
                records[record["fingerprint"]] = record
        if header is None:  # pragma: no cover - unreachable (line 1 checked)
            raise ResumeMismatchError(f"journal {path} has no header", line=1)
        journal._lines = list(lines)
        return journal, header, records

    @classmethod
    def _parse_line(
        cls, path: pathlib.Path, number: int, line: str
    ) -> Dict:
        """Parse and validate one journal line (1-based ``number``)."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ResumeMismatchError(
                f"journal {path}: corrupted or truncated record at "
                f"line {number}: {exc.msg}",
                line=number,
            ) from None
        if not isinstance(record, dict) or "kind" not in record:
            raise ResumeMismatchError(
                f"journal {path}: line {number} is not a journal record",
                line=number,
            )
        if number == 1:
            if record["kind"] != "header":
                raise ResumeMismatchError(
                    f"journal {path}: first line is not a header",
                    line=1,
                )
            if record.get("schema") != JOURNAL_SCHEMA:
                raise ResumeMismatchError(
                    f"journal {path}: schema {record.get('schema')!r} "
                    f"!= expected {JOURNAL_SCHEMA}",
                    line=1,
                )
            return record
        if record["kind"] == "task":
            if "fingerprint" not in record or "status" not in record:
                raise ResumeMismatchError(
                    f"journal {path}: task record at line {number} is "
                    "missing its fingerprint or status",
                    line=number,
                )
            return record
        raise ResumeMismatchError(
            f"journal {path}: unknown record kind "
            f"{record['kind']!r} at line {number}",
            line=number,
        )

    # ------------------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Durably append one record (atomic rewrite + fsync)."""
        self._lines.append(json.dumps(record, sort_keys=True))
        self._flush()

    def _flush(self) -> None:
        atomic_write_text(self.path, "\n".join(self._lines) + "\n")

    def __len__(self) -> int:
        return len(self._lines)
