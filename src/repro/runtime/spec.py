"""PDNSpec — one hashable value object naming a PDN design point.

Every experiment used to thread the same keyword soup (arrangement,
layer count, TSV topology, pad fraction, converters per core, grid
resolution) through ``build_regular_pdn`` / ``build_stacked_pdn`` and
``FaultPlan``.  :class:`PDNSpec` collapses that into a single frozen
dataclass that

* builds the PDN it describes (:meth:`build`),
* hashes and compares by value, so it is the keyed-structure-cache key
  of :class:`repro.runtime.engine.SweepEngine` — two sweep points with
  equal specs share one netlist build and one LU factorisation,
* pickles cheaply, so design points can be fanned out across worker
  processes without shipping circuits around.

Both scenario builders accept a spec positionally
(``build_regular_pdn(spec)``) while keeping their historical keyword
signatures, and :class:`repro.faults.FaultPlan` carries an optional
spec naming the design point a plan was sampled for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: Grid resolution used when a spec does not say otherwise (matches
#: ``repro.core.scenarios.DEFAULT_GRID_NODES``).
DEFAULT_GRID_NODES = 20

REGULAR = "regular"
VOLTAGE_STACKED = "voltage-stacked"
ARRANGEMENTS = (REGULAR, VOLTAGE_STACKED)


@dataclass(frozen=True)
class PDNSpec:
    """A hashable description of one buildable PDN design point."""

    arrangement: str = REGULAR
    n_layers: int = 8
    topology: str = "Few"
    power_pad_fraction: float = 0.25
    #: V-S through-via pad override (0 = allocate by pad fraction).
    vdd_pads_per_core: int = 0
    grid_nodes: int = DEFAULT_GRID_NODES
    #: SC cells per core regulating each intermediate rail (V-S only).
    converters_per_core: int = 0

    def __post_init__(self):
        if self.arrangement not in ARRANGEMENTS:
            raise ValueError(
                f"arrangement must be one of {ARRANGEMENTS}, got "
                f"{self.arrangement!r}"
            )
        if self.n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {self.n_layers}")
        if self.grid_nodes < 2:
            raise ValueError(f"grid_nodes must be >= 2, got {self.grid_nodes}")
        if self.arrangement == REGULAR and self.converters_per_core:
            raise ValueError("a regular PDN has no per-rail SC converters")
        if self.arrangement == VOLTAGE_STACKED and self.converters_per_core < 1:
            raise ValueError(
                "a voltage-stacked PDN needs converters_per_core >= 1"
            )

    # ------------------------------------------------------------------
    @classmethod
    def regular(
        cls,
        n_layers: int,
        topology: str = "Few",
        power_pad_fraction: float = 0.25,
        grid_nodes: int = DEFAULT_GRID_NODES,
    ) -> "PDNSpec":
        """Spec for a conventional parallel PDN."""
        return cls(
            arrangement=REGULAR,
            n_layers=n_layers,
            topology=topology,
            power_pad_fraction=power_pad_fraction,
            grid_nodes=grid_nodes,
        )

    @classmethod
    def stacked(
        cls,
        n_layers: int,
        converters_per_core: int = 8,
        topology: str = "Few",
        power_pad_fraction: float = 0.25,
        vdd_pads_per_core: int = 0,
        grid_nodes: int = DEFAULT_GRID_NODES,
    ) -> "PDNSpec":
        """Spec for a charge-recycled voltage-stacked PDN."""
        return cls(
            arrangement=VOLTAGE_STACKED,
            n_layers=n_layers,
            topology=topology,
            power_pad_fraction=power_pad_fraction,
            vdd_pads_per_core=vdd_pads_per_core,
            grid_nodes=grid_nodes,
            converters_per_core=converters_per_core,
        )

    # ------------------------------------------------------------------
    def with_(self, **changes) -> "PDNSpec":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **changes)

    @property
    def is_stacked(self) -> bool:
        return self.arrangement == VOLTAGE_STACKED

    def to_dict(self) -> dict:
        """Plain-dict form (the service wire protocol's "spec" object).

        Round-trips through ``PDNSpec(**spec.to_dict())`` and JSON.
        """
        return {f: getattr(self, f) for f in self.__dataclass_fields__}

    def key(self) -> Tuple:
        """The value tuple this spec hashes by (cache-key debugging)."""
        return (
            self.arrangement,
            self.n_layers,
            self.topology,
            self.power_pad_fraction,
            self.vdd_pads_per_core,
            self.grid_nodes,
            self.converters_per_core,
        )

    def label(self) -> str:
        """Compact human-readable identity for logs and metrics."""
        parts = [
            self.arrangement,
            f"{self.n_layers}L",
            self.topology,
            f"pads{self.power_pad_fraction:g}",
            f"g{self.grid_nodes}",
        ]
        if self.is_stacked:
            parts.append(f"{self.converters_per_core}conv")
        if self.vdd_pads_per_core:
            parts.append(f"{self.vdd_pads_per_core}vddpads")
        return "/".join(parts)

    # ------------------------------------------------------------------
    def build(self, **kwargs):
        """Construct the PDN this spec describes.

        Extra keyword arguments are forwarded to the PDN class
        (``converter_spec``, ``package``, ...).
        """
        # Imported lazily: repro.core.scenarios re-exports PDNSpec, so a
        # top-level import would be circular.
        from repro.core.scenarios import build_regular_pdn, build_stacked_pdn

        if self.is_stacked:
            return build_stacked_pdn(
                self.n_layers,
                converters_per_core=self.converters_per_core,
                topology=self.topology,
                power_pad_fraction=self.power_pad_fraction,
                vdd_pads_per_core=self.vdd_pads_per_core,
                grid_nodes=self.grid_nodes,
                **kwargs,
            )
        return build_regular_pdn(
            self.n_layers,
            topology=self.topology,
            power_pad_fraction=self.power_pad_fraction,
            grid_nodes=self.grid_nodes,
            **kwargs,
        )

