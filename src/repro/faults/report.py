"""Structured record of an applied fault plan.

:class:`FaultReport` is the receipt :meth:`repro.faults.FaultPlan.apply`
hands back: one :class:`AppliedFault` per rewritten element plus totals
the contingency experiment aggregates.  It deliberately mirrors
:class:`repro.grid.solver.SolveDiagnostics` — one object says what was
broken, the other says what the solver had to do about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class AppliedFault:
    """One element-level rewrite actually performed on the circuit."""

    #: "conductor" (resistor bundle), "converter", or "resistor-tag".
    kind: str
    #: Conductor-group key / converter tag / raw resistor tag.
    tag: str
    #: Branch index within the tag's run (-1 for whole-tag faults).
    branch: int
    #: Physical conductors (or converter cells) failed open.
    n_failed: int
    #: Residual resistance-degradation factor applied (1.0 = none).
    factor: float
    #: True when the whole model branch was removed from the netlist.
    opened: bool


@dataclass
class FaultReport:
    """Everything a :class:`repro.faults.FaultPlan` did to one PDN."""

    applied: List[AppliedFault] = field(default_factory=list)

    def record(self, fault: AppliedFault) -> None:
        self.applied.append(fault)

    # ------------------------------------------------------------------
    @property
    def n_faults(self) -> int:
        return len(self.applied)

    @property
    def n_opened_branches(self) -> int:
        return sum(1 for f in self.applied if f.opened)

    @property
    def n_degraded_branches(self) -> int:
        return sum(1 for f in self.applied if not f.opened)

    @property
    def n_failed_conductors(self) -> int:
        """Physical TSVs/C4 pads failed open (not converter cells)."""
        return sum(
            f.n_failed for f in self.applied if f.kind in ("conductor", "resistor-tag")
        )

    @property
    def n_failed_converters(self) -> int:
        """Physical SC converter cells failed open."""
        return sum(f.n_failed for f in self.applied if f.kind == "converter")

    def summary(self) -> str:
        return (
            f"{self.n_faults} fault(s): {self.n_failed_conductors} conductor(s) "
            f"and {self.n_failed_converters} converter cell(s) failed, "
            f"{self.n_opened_branches} branch(es) opened, "
            f"{self.n_degraded_branches} degraded"
        )

    def format(self) -> str:
        lines = [self.summary()]
        for f in self.applied:
            where = f"{f.tag}" if f.branch < 0 else f"{f.tag}[{f.branch}]"
            action = "opened" if f.opened else f"degraded x{f.factor:.3g}"
            lines.append(f"  {where}: {f.n_failed} failed -> {action}")
        return "\n".join(lines)
