"""Failure-set samplers: from EM statistics (or a flat rate) to a plan.

The EM model (:mod:`repro.em`) gives every physical conductor a
lognormal lifetime whose median follows Black's equation from the
current it carries at the solved operating point.  The sampler here
inverts that: pick an operating time ``t``, evaluate each conductor's
failure probability ``F_i(t)`` and draw a *correlated* failure set —
correlated because conductors in high-current regions (lower tiers of a
regular PDN, pads under hot cores) fail together, exactly the weakest-
element physics of paper Sec. 3.3.

Two simpler samplers support the N-k contingency experiment: a uniform
random sampler (every conductor fails i.i.d. with one probability) and
the deterministic :func:`severed_layer_plan` worst case that cuts every
connection of one layer, producing a genuine floating island.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from repro.config.technology import EMParameters, default_em
from repro.em.black import (
    C4_CROSS_SECTION,
    TSV_CROSS_SECTION,
    median_lifetimes_from_currents,
)
from repro.errors import FaultInjectionError
from repro.faults.plan import FaultPlan
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive

#: Conductor-group key prefixes the samplers target by default.
DEFAULT_PREFIXES: Tuple[str, ...] = ("tsv", "c4")


def _cross_section_for(key: str) -> float:
    """EM cross-section by conductor-group key prefix."""
    return C4_CROSS_SECTION if key.startswith("c4") else TSV_CROSS_SECTION


def _matching_groups(pdn, prefixes: Sequence[str]):
    items = [
        (key, group)
        for key, group in pdn.conductor_groups.items()
        if any(key.startswith(p) for p in prefixes)
    ]
    if not items:
        raise FaultInjectionError(
            f"no conductor groups match prefixes {tuple(prefixes)!r}; "
            f"available: {sorted(pdn.conductor_groups)}"
        )
    return items


def em_fault_plan(
    result,
    at_time: float,
    em: Optional[EMParameters] = None,
    rng: SeedLike = None,
    prefixes: Sequence[str] = DEFAULT_PREFIXES,
) -> FaultPlan:
    """Draw an EM failure set at operating time ``at_time`` (hours).

    ``result`` is the pre-damage :class:`repro.pdn.results.PDNResult`
    whose branch currents set each conductor's stress.  Every conductor
    of every matching group fails independently with its own lognormal
    probability ``F_i(at_time)``; a conductor whose branch chains
    ``segments`` series segments fails when any segment does.  Apply the
    returned plan to a freshly built PDN of the same design point.
    """
    try:
        check_positive("at_time", at_time)
    except ValueError as exc:
        raise FaultInjectionError(str(exc)) from exc
    em = em or default_em()
    gen = make_rng(rng)
    plan = FaultPlan()
    for key, group in _matching_groups(result, prefixes):
        branch_currents = np.abs(result.solution.resistor_currents(group.tag))
        per_conductor = branch_currents / np.maximum(group.multiplicity, 1)
        medians = median_lifetimes_from_currents(
            per_conductor, _cross_section_for(key), em
        )
        # Vectorised lognormal CDF at time t across per-branch medians.
        p_segment = norm.cdf((np.log(at_time) - np.log(medians)) / em.sigma)
        # A conductor dies when any of its series segments dies.
        p_conductor = 1.0 - (1.0 - p_segment) ** group.segments
        failures = gen.binomial(group.multiplicity, p_conductor)
        for branch in np.flatnonzero(failures):
            plan.fail_conductors(key, int(branch), int(failures[branch]))
    return plan


def uniform_fault_plan(
    pdn,
    fraction: float,
    rng: SeedLike = None,
    prefixes: Sequence[str] = ("tsv",),
    converter_fraction: float = 0.0,
) -> FaultPlan:
    """Fail a uniform random ``fraction`` of the matching conductors.

    Each physical conductor fails i.i.d. with probability ``fraction``
    (binomial per bundle), which is the N-k contingency sweep's failure
    model.  ``converter_fraction`` additionally kills that fraction of
    SC converter cells on PDNs that have them (ignored otherwise).
    """
    try:
        check_fraction("fraction", fraction)
        check_fraction("converter_fraction", converter_fraction)
    except ValueError as exc:
        raise FaultInjectionError(str(exc)) from exc
    gen = make_rng(rng)
    plan = FaultPlan()
    if fraction > 0:
        for key, group in _matching_groups(pdn, prefixes):
            failures = gen.binomial(group.multiplicity, fraction)
            for branch in np.flatnonzero(failures):
                plan.fail_conductors(key, int(branch), int(failures[branch]))
    conv_mult = getattr(pdn, "converter_multiplicity", None)
    if converter_fraction > 0 and conv_mult is not None:
        from repro.grid.netlist import CONVERTER

        store = pdn.circuit.store(CONVERTER)
        for tag in store.tags:
            indices = store.tag_indices(tag)
            failures = gen.binomial(conv_mult[indices], converter_fraction)
            for branch in np.flatnonzero(failures):
                plan.fail_converters(tag, int(branch), int(failures[branch]))
    return plan


def severed_layer_plan(pdn, layer: Optional[int] = None) -> FaultPlan:
    """Cut every connection of one layer (worst-case N-k contingency).

    Uses the PDN's ``isolation_tags`` hook, so the same call isolates a
    layer of either topology: for the regular PDN both TSV nets of the
    adjacent tier(s) are opened; for the voltage-stacked PDN the rail
    tiers, SC converter banks and their parasitic branches touching the
    layer are all killed.  The result is a genuine floating island the
    resilient solver must detect and prune.
    """
    hook = getattr(pdn, "isolation_tags", None)
    if hook is None:
        raise FaultInjectionError(
            f"{type(pdn).__name__} does not expose an isolation_tags hook"
        )
    tags = hook(layer)
    plan = FaultPlan()
    for tag in tags.get("groups", ()):
        plan.open_group(tag)
    for tag in tags.get("converters", ()):
        plan.open_converter_bank(tag)
    for tag in tags.get("resistors", ()):
        plan.open_resistor_tag(tag)
    return plan
