"""Fault injection and graceful degradation for 3D PDNs.

The paper's EM analysis predicts *when* TSVs, C4 pads and SC converters
fail; this package models what the PDN looks like *after* they do:

* :class:`FaultPlan` — a declarative, replayable failure set (individual
  conductors failed open, bundles resistance-degraded, converter cells
  killed) applied to a built PDN via
  :meth:`repro.pdn.builder.BasePDN3D.apply_faults`;
* :func:`em_fault_plan` — draw a correlated failure set from the
  Black's-equation / lognormal EM statistics at a given operating time;
* :func:`uniform_fault_plan` / :func:`severed_layer_plan` — the N-k
  contingency experiment's stochastic and worst-case failure models;
* :class:`FaultReport` — the structured receipt of an application.

Degraded netlists are solved by the resilient path in
:mod:`repro.grid.solver`, which prunes floating islands and reports a
:class:`repro.grid.solver.SolveDiagnostics` instead of dying.
"""

from repro.faults.plan import ElementFault, FaultPlan
from repro.faults.report import AppliedFault, FaultReport
from repro.faults.sampling import (
    DEFAULT_PREFIXES,
    em_fault_plan,
    severed_layer_plan,
    uniform_fault_plan,
)

__all__ = [
    "ElementFault",
    "FaultPlan",
    "AppliedFault",
    "FaultReport",
    "DEFAULT_PREFIXES",
    "em_fault_plan",
    "severed_layer_plan",
    "uniform_fault_plan",
]
