"""Fault plans: declarative failure sets applied to a built PDN.

A :class:`FaultPlan` is an ordered list of element-level faults —
individual TSVs or C4 pads failed open, bundles resistance-degraded by a
factor, SC converter cells killed — that :meth:`FaultPlan.apply` replays
onto a :class:`repro.pdn.builder.BasePDN3D`'s circuit.

The electrical model aggregates ``m`` parallel physical conductors into
one model branch of resistance ``R/m`` (see :mod:`repro.pdn.geometry`).
Failing ``k < m`` conductors of a bundle therefore *degrades* the branch
to ``R/(m-k)``; failing all ``m`` *opens* it (the element is removed
from subsequent assemblies via :meth:`repro.grid.netlist.Circuit.
open_elements`).  Multiplicity bookkeeping in the PDN's conductor groups
is updated in lockstep so the EM analysis keeps seeing the surviving
population.

Plans are topology-agnostic: they address conductor groups by their
registry key ("tsv.rail2", "c4.vdd", ...), converter banks by tag
("sc.rail1"), and — as an escape hatch — raw resistor tags ("scpar.rail1",
"grid.vdd.l0").  Unknown references raise
:class:`repro.errors.FaultInjectionError` at apply time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.report import AppliedFault, FaultReport
from repro.grid.netlist import CONVERTER, RESISTOR

#: Fault kinds stored in a plan.
CONDUCTOR = "conductor"
CONVERTER_FAULT = "converter"
RESISTOR_TAG = "resistor-tag"


@dataclass(frozen=True)
class ElementFault:
    """One declarative fault; ``branch``/``n_failed`` of None mean "all"."""

    kind: str
    tag: str
    branch: Optional[int] = None
    n_failed: Optional[int] = None
    factor: float = 1.0


class FaultPlan:
    """An ordered, replayable set of element failures.

    ``spec`` optionally names the design point the plan was sampled
    for (a :class:`repro.runtime.spec.PDNSpec`); the sweep engine uses
    it only for bookkeeping — plans are applied to whatever PDN they
    are handed.
    """

    def __init__(self, spec=None) -> None:
        self._faults: List[ElementFault] = []
        self.spec = spec

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def fail_conductors(self, tag: str, branch: int, count: int = 1) -> "FaultPlan":
        """Fail ``count`` physical conductors open within one bundle."""
        if count <= 0:
            raise FaultInjectionError(f"count must be > 0, got {count}")
        self._faults.append(ElementFault(CONDUCTOR, tag, int(branch), int(count)))
        return self

    def degrade_conductors(self, tag: str, branch: int, factor: float) -> "FaultPlan":
        """Multiply one bundle's resistance by ``factor`` (EM thinning)."""
        if not np.isfinite(factor) or factor <= 0:
            raise FaultInjectionError(f"degrade factor must be finite and > 0, got {factor}")
        self._faults.append(
            ElementFault(CONDUCTOR, tag, int(branch), 0, float(factor))
        )
        return self

    def fail_converters(self, tag: str, branch: int, count: int = 1) -> "FaultPlan":
        """Kill ``count`` SC converter cells within one bank bundle."""
        if count <= 0:
            raise FaultInjectionError(f"count must be > 0, got {count}")
        self._faults.append(
            ElementFault(CONVERTER_FAULT, tag, int(branch), int(count))
        )
        return self

    def open_group(self, tag: str) -> "FaultPlan":
        """Fail every conductor of a whole group open (severed tier)."""
        self._faults.append(ElementFault(CONDUCTOR, tag))
        return self

    def open_converter_bank(self, tag: str) -> "FaultPlan":
        """Kill every converter cell of a bank (dead regulator rail)."""
        self._faults.append(ElementFault(CONVERTER_FAULT, tag))
        return self

    def open_resistor_tag(self, tag: str) -> "FaultPlan":
        """Open every raw resistor carrying ``tag`` (escape hatch)."""
        self._faults.append(ElementFault(RESISTOR_TAG, tag))
        return self

    def extend(self, other: "FaultPlan") -> "FaultPlan":
        """Append another plan's faults to this one."""
        self._faults.extend(other._faults)
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[ElementFault]:
        return iter(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self._faults)} faults)"

    def fingerprint(self) -> Tuple[ElementFault, ...]:
        """Hashable value identity of the plan's fault sequence.

        Two plans with equal fingerprints rewrite a circuit
        identically, so the sweep engine batches their design points
        into one topology group behind a single factorisation.
        """
        return tuple(self._faults)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, pdn) -> FaultReport:
        """Rewrite ``pdn.circuit`` according to this plan.

        Returns a :class:`repro.faults.report.FaultReport`.  The PDN's
        conductor-group multiplicities (and converter multiplicities,
        when present) are updated so downstream EM/loading analyses see
        the surviving population.  Prefer
        :meth:`repro.pdn.builder.BasePDN3D.apply_faults`, which also
        invalidates the cached factorisation.
        """
        circuit = pdn.circuit
        groups: Dict[str, object] = pdn.conductor_groups
        report = FaultReport()
        # Working multiplicity arrays, shared between group keys that
        # alias the same resistor run (e.g. "c4.vdd" and "tvia.vdd").
        working: Dict[Tuple[str, int, int], np.ndarray] = {}

        def working_mult(group) -> np.ndarray:
            key = (group.ref.kind, group.ref.start, group.ref.count)
            if key not in working:
                working[key] = np.array(group.multiplicity, dtype=int, copy=True)
            return working[key]

        conv_mult = getattr(pdn, "converter_multiplicity", None)

        for fault in self._faults:
            if fault.kind == CONDUCTOR:
                self._apply_conductor(circuit, groups, working_mult, fault, report)
            elif fault.kind == CONVERTER_FAULT:
                self._apply_converter(circuit, conv_mult, fault, report)
            elif fault.kind == RESISTOR_TAG:
                self._apply_resistor_tag(circuit, fault, report)
            else:  # pragma: no cover - construction prevents this
                raise FaultInjectionError(f"unknown fault kind {fault.kind!r}")

        # Write the surviving multiplicities back into the group registry.
        for key, group in list(groups.items()):
            ref_key = (group.ref.kind, group.ref.start, group.ref.count)
            if ref_key in working:
                groups[key] = dataclasses.replace(
                    group, multiplicity=working[ref_key]
                )
        return report

    # ------------------------------------------------------------------
    def _apply_conductor(self, circuit, groups, working_mult, fault, report):
        group = groups.get(fault.tag)
        if group is None:
            raise FaultInjectionError(
                f"unknown conductor group {fault.tag!r}; available: "
                f"{sorted(groups)}"
            )
        mult = working_mult(group)

        if fault.branch is None:
            # Whole-group fault: open every surviving branch at once.
            live = np.flatnonzero(mult > 0)
            total = int(mult[live].sum())
            if live.size:
                circuit.open_elements(RESISTOR, group.ref.start + live)
                mult[live] = 0
            report.record(
                AppliedFault(
                    kind=CONDUCTOR,
                    tag=fault.tag,
                    branch=-1,
                    n_failed=total,
                    factor=1.0,
                    opened=True,
                )
            )
            return

        branch = fault.branch
        if not 0 <= branch < len(mult):
            raise FaultInjectionError(
                f"branch {branch} out of range for group {fault.tag!r} "
                f"({len(mult)} branches)"
            )
        m = int(mult[branch])
        count = fault.n_failed
        if count > m:
            raise FaultInjectionError(
                f"cannot fail {count} conductors in {fault.tag!r}[{branch}]: "
                f"only {m} remain"
            )
        if count == 0 and fault.factor == 1.0:
            return  # no-op
        global_idx = group.ref.start + branch
        opened = False
        if count == m and count > 0:
            circuit.open_elements(RESISTOR, [global_idx])
            mult[branch] = 0
            opened = True
        elif count > 0:
            circuit.scale_elements(
                RESISTOR, "resistance", [global_idx], m / (m - count)
            )
            mult[branch] = m - count
        if fault.factor != 1.0 and not opened:
            circuit.scale_elements(
                RESISTOR, "resistance", [global_idx], fault.factor
            )
        report.record(
            AppliedFault(
                kind=CONDUCTOR,
                tag=fault.tag,
                branch=branch,
                n_failed=count,
                factor=fault.factor,
                opened=opened,
            )
        )

    def _apply_converter(self, circuit, conv_mult, fault, report):
        store = circuit.store(CONVERTER)
        indices = store.tag_indices(fault.tag)
        if indices.size == 0:
            raise FaultInjectionError(
                f"unknown converter tag {fault.tag!r}; available: "
                f"{circuit.tags(CONVERTER)}"
            )
        branches = (
            range(indices.size) if fault.branch is None else (fault.branch,)
        )
        for branch in branches:
            if not 0 <= branch < indices.size:
                raise FaultInjectionError(
                    f"branch {branch} out of range for converter tag "
                    f"{fault.tag!r} ({indices.size} bundles)"
                )
            global_idx = int(indices[branch])
            cm = 1 if conv_mult is None else int(conv_mult[global_idx])
            count = cm if fault.n_failed is None else fault.n_failed
            if count > cm:
                raise FaultInjectionError(
                    f"cannot fail {count} converter cells in "
                    f"{fault.tag!r}[{branch}]: only {cm} remain"
                )
            if count == 0:
                continue
            opened = False
            if count == cm:
                circuit.open_elements(CONVERTER, [global_idx])
                opened = True
            else:
                circuit.scale_elements(
                    CONVERTER, "r_series", [global_idx], cm / (cm - count)
                )
            if conv_mult is not None:
                conv_mult[global_idx] = cm - count
            report.record(
                AppliedFault(
                    kind=CONVERTER_FAULT,
                    tag=fault.tag,
                    branch=branch,
                    n_failed=count,
                    factor=1.0,
                    opened=opened,
                )
            )

    def _apply_resistor_tag(self, circuit, fault, report):
        store = circuit.store(RESISTOR)
        indices = store.tag_indices(fault.tag)
        if indices.size == 0:
            raise FaultInjectionError(
                f"unknown resistor tag {fault.tag!r}; available: "
                f"{circuit.tags(RESISTOR)}"
            )
        circuit.open_elements(RESISTOR, indices)
        report.record(
            AppliedFault(
                kind=RESISTOR_TAG,
                tag=fault.tag,
                branch=-1,
                n_failed=int(indices.size),
                factor=1.0,
                opened=True,
            )
        )
