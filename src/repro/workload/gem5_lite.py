"""Gem5-lite: a statistical micro-architecture activity simulator.

The paper derives its workload power samples from Gem5 + McPAT.  The
primary substitute in this package (:mod:`repro.workload.parsec`) draws
activities from calibrated distributions; this module goes one level
deeper and *generates* those activities from a simple performance model,
so the shape of each application's distribution emerges from
micro-architectural parameters rather than being postulated:

* each application is an instruction mix (memory fraction, branch
  fraction) with a cache miss rate and branch misprediction rate;
* a two-state Markov phase process (compute-bound / memory-bound)
  modulates the miss rate between 2k-cycle windows — the source of the
  within-application variance in Fig. 7;
* per window, an analytic in-order pipeline model converts the mix into
  achieved IPC and hence a dynamic-activity factor (issue slots doing
  work per cycle).

Windows are evaluated in closed form (expected stall cycles per
instruction), so a 1000-window campaign costs microseconds while still
being driven by interpretable hardware parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config.stackups import ProcessorSpec
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive, check_positive_int


@dataclass(frozen=True)
class MicroWorkload:
    """Micro-architectural description of one application."""

    name: str
    #: Fraction of instructions that access memory.
    memory_fraction: float
    #: Fraction of instructions that are branches.
    branch_fraction: float
    #: L1-miss-to-DRAM rate in the compute-bound phase (misses/mem-op).
    miss_rate_low: float
    #: Miss rate in the memory-bound phase.
    miss_rate_high: float
    #: Probability of switching phase between consecutive windows.
    phase_switch_probability: float = 0.08
    #: Fraction of windows spent memory-bound at steady state.
    memory_bound_fraction: float = 0.5
    #: Branch misprediction rate (mispredicts/branch).
    mispredict_rate: float = 0.05
    #: DRAM stall penalty (cycles).
    miss_penalty: float = 120.0
    #: Pipeline refill penalty on a mispredict (cycles).
    flush_penalty: float = 12.0
    #: Per-window lognormal jitter (sigma of log-activity).
    jitter: float = 0.04

    def __post_init__(self) -> None:
        check_fraction("memory_fraction", self.memory_fraction)
        check_fraction("branch_fraction", self.branch_fraction)
        check_fraction("miss_rate_low", self.miss_rate_low)
        check_fraction("miss_rate_high", self.miss_rate_high)
        check_fraction("phase_switch_probability", self.phase_switch_probability)
        check_fraction("memory_bound_fraction", self.memory_bound_fraction)
        check_fraction("mispredict_rate", self.mispredict_rate)
        check_positive("miss_penalty", self.miss_penalty)
        check_positive("flush_penalty", self.flush_penalty)
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.miss_rate_high < self.miss_rate_low:
            raise ValueError("miss_rate_high must be >= miss_rate_low")

    # ------------------------------------------------------------------
    def cpi(self, miss_rate: float) -> float:
        """Cycles per instruction of the in-order pipeline model."""
        base = 1.0
        memory_stalls = self.memory_fraction * miss_rate * self.miss_penalty
        branch_stalls = self.branch_fraction * self.mispredict_rate * self.flush_penalty
        return base + memory_stalls + branch_stalls

    def activity(self, miss_rate: float) -> float:
        """Dynamic activity factor = achieved IPC (issue-slot utilisation)."""
        return 1.0 / self.cpi(miss_rate)


#: PARSEC-flavoured micro-workloads.  Memory-bound apps (canneal,
#: streamcluster) idle the pipeline on DRAM; compute-bound kernels
#: (blackscholes, swaptions) stay near IPC 1.
GEM5_WORKLOADS: Dict[str, MicroWorkload] = {
    w.name: w
    for w in (
        MicroWorkload("blackscholes", 0.25, 0.05, 0.0005, 0.0012,
                      phase_switch_probability=0.02, memory_bound_fraction=0.3),
        MicroWorkload("swaptions", 0.28, 0.08, 0.001, 0.004),
        MicroWorkload("bodytrack", 0.30, 0.10, 0.001, 0.012),
        MicroWorkload("freqmine", 0.35, 0.12, 0.002, 0.015),
        MicroWorkload("vips", 0.32, 0.09, 0.001, 0.018),
        MicroWorkload("raytrace", 0.34, 0.11, 0.002, 0.020),
        MicroWorkload("facesim", 0.36, 0.08, 0.002, 0.024),
        MicroWorkload("ferret", 0.38, 0.10, 0.002, 0.028),
        MicroWorkload("fluidanimate", 0.36, 0.07, 0.003, 0.032),
        MicroWorkload("streamcluster", 0.42, 0.06, 0.010, 0.035,
                      memory_bound_fraction=0.7),
        MicroWorkload("canneal", 0.45, 0.08, 0.012, 0.060,
                      memory_bound_fraction=0.7),
        MicroWorkload("dedup", 0.40, 0.10, 0.003, 0.070),
        MicroWorkload("x264", 0.33, 0.12, 0.001, 0.080,
                      phase_switch_probability=0.15),
    )
}


def simulate_activity_windows(
    workload: MicroWorkload,
    n_windows: int = 1000,
    rng: SeedLike = None,
) -> np.ndarray:
    """Per-window dynamic activity factors from the phase-modulated model.

    The Markov phase chain is simulated exactly; within each window the
    activity is the pipeline model's value at the phase's miss rate,
    with small lognormal jitter.
    """
    check_positive_int("n_windows", n_windows)
    gen = make_rng(rng)
    # Stationary start, then first-order transitions.
    memory_bound = gen.random(n_windows) < workload.memory_bound_fraction
    switch = gen.random(n_windows) < workload.phase_switch_probability
    state = bool(memory_bound[0])
    states = np.empty(n_windows, dtype=bool)
    for k in range(n_windows):
        if switch[k]:
            # Re-draw toward the stationary distribution on a switch.
            state = bool(memory_bound[k])
        states[k] = state
    miss_rates = np.where(
        states, workload.miss_rate_high, workload.miss_rate_low
    )
    activities = np.array([workload.activity(m) for m in miss_rates])
    if workload.jitter > 0:
        activities = activities * np.exp(
            workload.jitter * gen.standard_normal(n_windows)
        )
    return np.clip(activities, 0.0, 1.0)


def gem5_sample_suite(
    processor: Optional[ProcessorSpec] = None,
    n_windows: int = 1000,
    rng: SeedLike = None,
    workloads: Optional[Dict[str, MicroWorkload]] = None,
):
    """Full-suite power samples from the micro-architectural generator.

    Returns the same ``{name: SampleSet}`` structure as
    :func:`repro.workload.sampling.sample_suite`, so it drops into the
    Fig. 7 pipeline as an alternative back end.
    """
    from repro.workload.sampling import SampleSet

    processor = processor or ProcessorSpec()
    workloads = GEM5_WORKLOADS if workloads is None else workloads
    gen = make_rng(rng)
    suite: Dict[str, SampleSet] = {}
    for name, workload in workloads.items():
        activities = simulate_activity_windows(workload, n_windows, gen)
        dynamic = activities * processor.dynamic_power
        suite[name] = SampleSet(
            name=name,
            powers=processor.leakage_power + dynamic,
            dynamic_powers=dynamic,
        )
    return suite
