"""Workload-imbalance definitions and layer power patterns.

The paper defines X% workload imbalance between two adjacent layers as
the low-power layer consuming X% less *dynamic* power than the high-power
layer; 100% imbalance means the low layer is idle and burns only leakage
(Sec. 5.2).  The Fig. 6 stress pattern interleaves fully-active layers
with X%-reduced layers so every intermediate rail sees the same mismatch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config.stackups import ProcessorSpec
from repro.utils.validation import check_fraction, check_positive_int


def imbalance_ratio(dynamic_high: float, dynamic_low: float) -> float:
    """Imbalance between two layers from their dynamic powers (0..1).

    ``(D_high - D_low) / D_high``; by convention 0 when both are idle.
    """
    if dynamic_high < 0 or dynamic_low < 0:
        raise ValueError("dynamic powers must be non-negative")
    if dynamic_high < dynamic_low:
        dynamic_high, dynamic_low = dynamic_low, dynamic_high
    if dynamic_high == 0:
        return 0.0
    return (dynamic_high - dynamic_low) / dynamic_high


def adjacent_imbalances(layer_dynamic_powers: Sequence[float]) -> np.ndarray:
    """Imbalance ratio for every adjacent layer pair, bottom-up."""
    powers = np.asarray(layer_dynamic_powers, dtype=float)
    if powers.ndim != 1 or len(powers) < 2:
        raise ValueError("need at least two layer powers")
    return np.array(
        [imbalance_ratio(powers[i], powers[i + 1]) for i in range(len(powers) - 1)]
    )


def interleaved_layer_activities(n_layers: int, imbalance: float) -> np.ndarray:
    """The Fig. 6 "high-low" stress pattern as per-layer activity factors.

    Odd-indexed layers (0, 2, ... from the bottom) run fully active
    (activity 1); even-interleaved layers run at ``1 - imbalance``
    dynamic activity.  At ``imbalance = 1`` the low layers are idle and
    consume only leakage, matching the paper's definition.
    """
    check_positive_int("n_layers", n_layers)
    check_fraction("imbalance", imbalance)
    activities = np.ones(n_layers)
    activities[1::2] = 1.0 - imbalance
    return activities


def layer_powers_from_activities(
    processor: ProcessorSpec, activities: Sequence[float]
) -> np.ndarray:
    """Convert per-layer activity factors to per-layer power (W)."""
    return np.array([processor.layer_power(a) for a in activities])
