"""Synthetic PARSEC 2.0 application power profiles.

Each application is modelled by a dynamic-activity distribution over
``[activity_max * (1 - max_imbalance), activity_max]``: scheduling two
samples of the application on adjacent layers can therefore produce at
most ``max_imbalance`` workload imbalance, which is the quantity the
paper extracts per application from its Gem5/McPAT sampling campaign.

Calibration targets (paper Sec. 5.2 / Fig. 7):

* blackscholes: ~10% maximum imbalance across its samples,
* the maximum across all samples of all applications: > 90%,
* the mean of the per-application maxima: ~65%.

Within its range each application's activity follows a Beta(alpha, beta)
distribution, giving the within-app clustering visible in the paper's
box plot (small inter-quartile range, longer whiskers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config.stackups import ProcessorSpec
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class ApplicationProfile:
    """Dynamic-activity distribution of one application."""

    #: PARSEC benchmark name.
    name: str
    #: Highest dynamic activity any sample reaches (0..1).
    activity_max: float
    #: Maximum workload imbalance over the app's own samples (0..1);
    #: fixes the bottom of the activity range at
    #: ``activity_max * (1 - max_imbalance)``.
    max_imbalance: float
    #: Beta-distribution shape parameters inside the range.
    alpha: float = 2.5
    beta: float = 2.5

    def __post_init__(self) -> None:
        check_fraction("activity_max", self.activity_max)
        check_fraction("max_imbalance", self.max_imbalance)
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("beta-distribution shapes must be positive")

    @property
    def activity_min(self) -> float:
        """Lowest dynamic activity of any sample."""
        return self.activity_max * (1.0 - self.max_imbalance)

    def sample_activities(self, n: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``n`` per-sample dynamic activity factors."""
        if n <= 0:
            raise ValueError("n must be positive")
        gen = make_rng(rng)
        unit = gen.beta(self.alpha, self.beta, size=n)
        return self.activity_min + unit * (self.activity_max - self.activity_min)

    def sample_powers(
        self, processor: ProcessorSpec, n: int, rng: SeedLike = None
    ) -> np.ndarray:
        """Draw ``n`` per-sample layer powers (W): leakage + activity*dyn."""
        activities = self.sample_activities(n, rng)
        return processor.leakage_power + activities * processor.dynamic_power


#: The PARSEC 2.0 suite with per-application maximum-imbalance targets.
#: blackscholes is the best case (10%); x264's bursty phases give the
#: worst (93%, "more than 90%" over the full suite); the mean of the
#: per-application maxima is 65.0%, the paper's headline average.
PARSEC_APPLICATIONS: Dict[str, ApplicationProfile] = {
    app.name: app
    for app in (
        ApplicationProfile("blackscholes", activity_max=0.80, max_imbalance=0.10, alpha=4, beta=4),
        ApplicationProfile("swaptions", activity_max=0.85, max_imbalance=0.40, alpha=3, beta=3),
        ApplicationProfile("streamcluster", activity_max=0.75, max_imbalance=0.50, alpha=3, beta=2),
        ApplicationProfile("freqmine", activity_max=0.82, max_imbalance=0.58, alpha=2.5, beta=2.5),
        ApplicationProfile("bodytrack", activity_max=0.78, max_imbalance=0.60, alpha=2, beta=2.5),
        ApplicationProfile("vips", activity_max=0.88, max_imbalance=0.65, alpha=2.5, beta=2),
        ApplicationProfile("raytrace", activity_max=0.72, max_imbalance=0.68, alpha=2, beta=2),
        ApplicationProfile("facesim", activity_max=0.86, max_imbalance=0.72, alpha=2, beta=3),
        ApplicationProfile("ferret", activity_max=0.90, max_imbalance=0.75, alpha=2, beta=2),
        ApplicationProfile("fluidanimate", activity_max=0.84, max_imbalance=0.78, alpha=1.8, beta=2.2),
        ApplicationProfile("canneal", activity_max=0.70, max_imbalance=0.85, alpha=1.5, beta=2.5),
        ApplicationProfile("dedup", activity_max=0.92, max_imbalance=0.91, alpha=1.6, beta=2.0),
        ApplicationProfile("x264", activity_max=0.95, max_imbalance=0.93, alpha=1.5, beta=1.8),
    )
}


def average_max_imbalance(
    applications: Optional[Sequence[ApplicationProfile]] = None,
) -> float:
    """Mean of the per-application maximum imbalance (paper: 65%)."""
    apps = (
        list(PARSEC_APPLICATIONS.values()) if applications is None else list(applications)
    )
    if not apps:
        raise ValueError("applications must be non-empty")
    return float(np.mean([a.max_imbalance for a in apps]))


def sample_application_powers(
    processor: ProcessorSpec,
    n_samples: int = 1000,
    rng: SeedLike = None,
    applications: Optional[Dict[str, ApplicationProfile]] = None,
) -> Dict[str, np.ndarray]:
    """Per-application power samples (W), paper's 1000x2k-cycle campaign."""
    apps = PARSEC_APPLICATIONS if applications is None else applications
    gen = make_rng(rng)
    return {
        name: profile.sample_powers(processor, n_samples, gen)
        for name, profile in apps.items()
    }
