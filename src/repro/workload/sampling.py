"""Statistical sampling and stack scheduling of application samples.

Reproduces the methodology of the paper's Sec. 5.2: draw many short
execution samples per application, schedule samples onto the layers of a
3D stack, and measure the resulting adjacent-layer workload imbalance.
The paper's scheduling observation — running instances of the *same*
application in one core stack keeps imbalance near that application's own
(small) spread, while mixing applications exposes the cross-application
spread — is directly reproducible with :func:`schedule_stack`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config.stackups import ProcessorSpec
from repro.errors import ReproError
from repro.utils.rng import SeedLike, make_rng
from repro.workload.imbalance import adjacent_imbalances
from repro.workload.parsec import PARSEC_APPLICATIONS, ApplicationProfile


@dataclass(frozen=True)
class SampleSet:
    """Power samples of one application plus summary statistics."""

    name: str
    powers: np.ndarray  # W, one entry per 2k-cycle sample
    dynamic_powers: np.ndarray  # W, leakage removed

    @property
    def max_imbalance(self) -> float:
        """Largest imbalance any two samples of this app can produce."""
        high = float(self.dynamic_powers.max())
        low = float(self.dynamic_powers.min())
        if high == 0:
            return 0.0
        return (high - low) / high

    def percentiles(self, qs: Sequence[float] = (0, 25, 50, 75, 100)) -> np.ndarray:
        """Power percentiles for box-plot rendering (W)."""
        return np.percentile(self.powers, qs)


def sample_suite(
    processor: ProcessorSpec,
    n_samples: int = 1000,
    rng: SeedLike = None,
    applications: Optional[Dict[str, ApplicationProfile]] = None,
) -> Dict[str, SampleSet]:
    """Draw the full suite's sample sets (paper: 1000 samples/app)."""
    apps = PARSEC_APPLICATIONS if applications is None else applications
    gen = make_rng(rng)
    result: Dict[str, SampleSet] = {}
    for name, profile in apps.items():
        activities = profile.sample_activities(n_samples, gen)
        if not np.all(np.isfinite(activities)):
            raise ReproError(
                f"application {name!r} produced NaN/Inf activity samples"
            )
        dynamic = activities * processor.dynamic_power
        result[name] = SampleSet(
            name=name,
            powers=processor.leakage_power + dynamic,
            dynamic_powers=dynamic,
        )
    return result


def schedule_stack(
    sample_sets: Dict[str, SampleSet],
    layer_apps: Sequence[str],
    rng: SeedLike = None,
) -> np.ndarray:
    """Assign one random sample of ``layer_apps[i]`` to layer ``i``.

    Returns the adjacent-layer imbalance ratios for the resulting stack
    (length ``len(layer_apps) - 1``).  Scheduling the same application on
    every layer reproduces the paper's low-imbalance recommendation.
    """
    if len(layer_apps) < 2:
        raise ValueError("need at least two layers to compute imbalance")
    gen = make_rng(rng)
    dynamics: List[float] = []
    for app in layer_apps:
        if app not in sample_sets:
            raise KeyError(f"no sample set for application {app!r}")
        samples = sample_sets[app].dynamic_powers
        dynamics.append(float(samples[gen.integers(len(samples))]))
    return adjacent_imbalances(dynamics)


def expected_scheduling_gain(
    sample_sets: Dict[str, SampleSet],
    n_layers: int,
    trials: int = 200,
    rng: SeedLike = None,
) -> Dict[str, float]:
    """Monte-Carlo comparison of same-app vs mixed-app stack scheduling.

    Returns mean worst-pair imbalance for both policies; the gap is the
    benefit of the paper's same-application scheduling recommendation.
    """
    if n_layers < 2:
        raise ValueError("n_layers must be >= 2")
    gen = make_rng(rng)
    names = list(sample_sets)
    same_app: List[float] = []
    mixed: List[float] = []
    for _ in range(trials):
        app = names[gen.integers(len(names))]
        same_app.append(
            float(schedule_stack(sample_sets, [app] * n_layers, gen).max())
        )
        apps = [names[gen.integers(len(names))] for _ in range(n_layers)]
        mixed.append(float(schedule_stack(sample_sets, apps, gen).max()))
    return {
        "same_application": float(np.mean(same_app)),
        "mixed_applications": float(np.mean(mixed)),
    }
