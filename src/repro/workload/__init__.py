"""Synthetic PARSEC-like workload power behaviour.

The paper samples one thousand 2k-cycle windows from each PARSEC 2.0
application with Gem5 + McPAT (the statistical-sampling methodology of
VoltSpot/ISCA'14) and reports the resulting power distributions (Fig. 7).
This package substitutes parametric per-application activity
distributions calibrated to the statistics the paper quotes:

* blackscholes' samples span only ~10% maximum imbalance,
* the maximum imbalance across all samples exceeds 90%,
* the *average* per-application maximum imbalance is ~65%.

It also provides the interleaved "high-low" layer-power pattern used as
the stress benchmark of Fig. 6 and the imbalance metrics shared by all
experiments.
"""

from repro.workload.parsec import (
    PARSEC_APPLICATIONS,
    ApplicationProfile,
    average_max_imbalance,
    sample_application_powers,
)
from repro.workload.imbalance import (
    adjacent_imbalances,
    imbalance_ratio,
    interleaved_layer_activities,
    layer_powers_from_activities,
)
from repro.workload.gem5_lite import (
    GEM5_WORKLOADS,
    MicroWorkload,
    gem5_sample_suite,
    simulate_activity_windows,
)
from repro.workload.sampling import SampleSet, sample_suite, schedule_stack

__all__ = [
    "GEM5_WORKLOADS",
    "MicroWorkload",
    "gem5_sample_suite",
    "simulate_activity_windows",
    "PARSEC_APPLICATIONS",
    "ApplicationProfile",
    "average_max_imbalance",
    "sample_application_powers",
    "adjacent_imbalances",
    "imbalance_ratio",
    "interleaved_layer_activities",
    "layer_powers_from_activities",
    "SampleSet",
    "sample_suite",
    "schedule_stack",
]
