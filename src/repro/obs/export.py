"""Trace and metrics exporters.

Three formats, one source of truth (the span list):

* ``trace-<fp>.jsonl`` — the canonical per-run trace: a header line
  carrying the schema + run fingerprint, then one span record per line.
  Written through the supervisor journal's atomic tmp+rename machinery
  (without its fsync — traces are advisory, and the fsync would cost
  more than the whole flush), so a crash mid-flush never leaves a torn
  file.
  Resumed runs append to the existing trace (deduplicated by span id —
  ids are ``uuid4``-derived, so replays restored from the journal do not
  re-emit old spans under new identities).
* Chrome ``trace_event`` JSON (``chrome-trace-<fp>.json``) — open in
  chrome://tracing / Perfetto.  Complete ``ph:"X"`` duration events on
  the wall-clock timeline, one track per (pid, tid).
* Prometheus textfile (``metrics-<fp>.prom``) — a
  :class:`repro.obs.metrics.MetricsRegistry` snapshot for a textfile
  collector.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import TraceDataError

from .metrics import MetricsRegistry
from .trace import TRACE_DIR_ENV, TRACE_SCHEMA, Span

__all__ = [
    "resolve_trace_dir",
    "trace_path",
    "flush_spans",
    "load_trace",
    "write_chrome_trace",
    "write_prometheus",
    "chrome_trace_events",
]

PathLike = Union[str, Path]


def _atomic_write_text(path: Path, text: str) -> None:
    # Imported lazily: journal.py is runtime-layer and obs must stay
    # importable on its own (the CLI trace viewer needs no engine).
    from repro.runtime.journal import atomic_write_text

    # durable=False: rename-atomicity without the fsyncs.  Losing a
    # trace to an OS crash is acceptable; charging two fsyncs to every
    # traced sweep is not (it would dwarf the tracing itself).
    atomic_write_text(path, text, durable=False)


def resolve_trace_dir(explicit: Optional[PathLike] = None) -> Path:
    """Where trace artifacts land: explicit arg > $REPRO_TRACE_DIR > cwd."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(TRACE_DIR_ENV, "").strip()
    return Path(env) if env else Path(".")


def trace_path(run_fingerprint: str, trace_dir: Optional[PathLike] = None) -> Path:
    return resolve_trace_dir(trace_dir) / f"trace-{run_fingerprint}.jsonl"


def _header(run_fingerprint: str, trace_id: Optional[str]) -> Dict:
    return {
        "kind": "header",
        "schema": TRACE_SCHEMA,
        "run_fingerprint": run_fingerprint,
        "trace": trace_id,
    }


def flush_spans(
    spans: Iterable[Span],
    run_fingerprint: str,
    trace_dir: Optional[PathLike] = None,
    trace_id: Optional[str] = None,
) -> Optional[Path]:
    """Write (or extend) ``trace-<fp>.jsonl`` atomically.

    If a trace for this fingerprint already exists — a ``--resume`` run,
    or a multi-experiment session sharing one fingerprint — its spans
    are loaded first and new spans are appended, deduplicated by span
    id, then the whole file is rewritten atomically.  Returns the path,
    or ``None`` when there was nothing to write.
    """
    new_spans = list(spans)
    if not new_spans:
        return None
    path = trace_path(run_fingerprint, trace_dir)
    merged: List[Span] = []
    seen = set()
    if path.exists():
        try:
            previous = load_trace(path)
        except TraceDataError:
            # A torn pre-existing trace must not fail the run's flush;
            # start the file over with this run's spans only.
            previous = []
        for span in previous:
            if span.span_id not in seen:
                seen.add(span.span_id)
                merged.append(span)
    for span in new_spans:
        if span.span_id not in seen:
            seen.add(span.span_id)
            merged.append(span)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(_header(run_fingerprint, trace_id))]
    lines.extend(json.dumps(span.to_json(), sort_keys=False) for span in merged)
    _atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def _parse_trace_line(path: PathLike, number: int, line: str) -> Dict:
    """One trace record, or a typed error naming the torn line."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceDataError(
            f"trace {path} is torn: unparsable record at line {number} "
            f"({exc.msg})",
            path=str(path),
        ) from None
    if not isinstance(record, dict):
        raise TraceDataError(
            f"trace {path} is torn: line {number} is not a trace record",
            path=str(path),
        )
    return record


def load_trace(path: PathLike) -> List[Span]:
    """Read span records back from a ``trace-*.jsonl`` file.

    Raises :class:`repro.errors.TraceDataError` when the file cannot be
    read or holds an unparsable (torn) line — trace viewers turn that
    into a one-line diagnostic instead of a traceback.
    """
    spans: List[Span] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                record = _parse_trace_line(path, number, line)
                if record.get("kind") != "span":
                    continue
                spans.append(Span.from_json(record))
    except OSError as exc:
        raise TraceDataError(
            f"cannot read trace {path}: {exc}", path=str(path)
        ) from None
    return spans


def load_trace_header(path: PathLike) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                record = _parse_trace_line(path, number, line)
                if record.get("kind") == "header":
                    return record
                return None
    except OSError as exc:
        raise TraceDataError(
            f"cannot read trace {path}: {exc}", path=str(path)
        ) from None
    return None


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict]:
    """Spans as complete (``ph: "X"``) ``trace_event`` dicts, ts in µs."""
    events: List[Dict] = []
    for span in spans:
        event = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": span.pid,
            "tid": span.tid,
        }
        args = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        event["args"] = args
        events.append(event)
    return events


def write_chrome_trace(
    spans: Iterable[Span],
    path: PathLike,
    run_fingerprint: Optional[str] = None,
) -> Path:
    """Write a chrome://tracing-loadable ``trace_event`` JSON file."""
    spans = list(spans)
    # Normalise ts so the timeline starts near zero (Perfetto renders
    # absolute epoch-µs timestamps as a decade-wide empty track).
    events = chrome_trace_events(spans)
    if events:
        t0 = min(e["ts"] for e in events)
        for event in events:
            event["ts"] -= t0
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_fingerprint": run_fingerprint or ""},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_text(path, json.dumps(doc))
    return path


def write_prometheus(
    registry: MetricsRegistry,
    path: PathLike,
) -> Path:
    """Snapshot a registry in Prometheus textfile format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_text(path, registry.to_prometheus())
    return path
