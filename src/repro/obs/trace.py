"""Hierarchical span tracing for the sweep hot path.

One process-global :class:`Tracer` records *spans* — named, timed,
attributed intervals with parent/child links — through the full run
hierarchy: experiment → sweep → topology group → build / factorize /
solve / post stages → solver escalation rungs → fixed-point iterations →
contract checks.  The design goals, in order:

1. **Disabled is free.**  Tracing is off by default; ``span()`` then
   returns a shared no-op context manager and the only cost at a call
   site is one attribute check.  Numerical outputs are bit-identical
   with tracing on or off — the tracer only ever reads clocks and
   generates ids (``os.urandom``-backed, so the NumPy/stdlib RNG streams
   experiments rely on are untouched).
2. **Thread- and process-safe.**  The current span is tracked in a
   :mod:`contextvars` variable (so threads and asyncio tasks nest
   correctly) and finished spans are buffered under a lock.  Worker
   processes receive a :meth:`Tracer.worker_context` dict, activate it
   with :func:`activate_worker_context`, and ship their finished spans
   back to the parent (``drain()`` → pickle → :meth:`Tracer.adopt`), so
   the reassembled trace is one coherent tree across processes.
3. **Monotonic durations, wall-clock anchors.**  Durations come from
   ``time.perf_counter`` (monotonic, immune to clock steps); each span
   also records a ``time.time`` start so spans from different processes
   line up on one timeline in the Chrome trace export.

Spans serialise to stable JSON records (see
:mod:`repro.obs.export` for the ``trace-<fp>.jsonl`` / Chrome
``trace_event`` / Prometheus exporters).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "TRACE_ENV",
    "TRACE_DIR_ENV",
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "get_tracer",
    "configure",
    "span",
    "activate_worker_context",
    "new_trace_id",
]

#: Enable tracing process-wide: "1"/"true"/"on", or a directory path
#: (which both enables tracing and selects the trace output directory).
TRACE_ENV = "REPRO_TRACE"
#: Directory traces are flushed to when tracing is enabled (default ".").
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
#: Schema version of serialised span records; bump on layout changes.
TRACE_SCHEMA = 1


def _new_id() -> str:
    """A 16-hex-char span id, unique across processes and resumed runs.

    Drawn straight from ``os.urandom`` — deliberately *not* any seeded
    RNG, so tracing never perturbs experiment reproducibility (and a
    few times cheaper than ``uuid4``, which matters on the hot path).
    """
    return os.urandom(8).hex()


@dataclass
class Span:
    """One finished, immutable span record."""

    name: str
    span_id: str
    parent_id: Optional[str]
    trace_id: Optional[str]
    #: Wall-clock start (``time.time()``), for cross-process alignment.
    start_s: float
    #: Monotonic duration (``time.perf_counter`` delta).
    duration_s: float
    pid: int
    tid: int
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "start_s": round(self.start_s, 6),
            "dur_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "status": self.status,
        }
        if self.attributes:
            record["attrs"] = self.attributes
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            span_id=record["id"],
            parent_id=record.get("parent"),
            trace_id=record.get("trace"),
            start_s=float(record.get("start_s", 0.0)),
            duration_s=float(record.get("dur_s", 0.0)),
            pid=int(record.get("pid", 0)),
            tid=int(record.get("tid", 0)),
            status=record.get("status", "ok"),
            attributes=dict(record.get("attrs") or {}),
        )


class _NullSpan:
    """The shared no-op span handle returned while tracing is disabled."""

    __slots__ = ()
    duration_s = 0.0
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> None:
        """Discard attributes (no-op)."""


_NULL_SPAN = _NullSpan()


class _RemoteAnchor:
    """A stand-in for a span that lives in *another* process.

    Installed into the current-span contextvar by
    :meth:`Tracer.remote_context`, it gives spans opened underneath it a
    remote parent id and a remote trace id without opening a local span.
    This is how a service replica anchors one request's spans under the
    client's ``service.client`` span: contextvars keep concurrent asyncio
    requests isolated, so N in-flight queries anchor to N different
    remote parents simultaneously.
    """

    __slots__ = ("span_id", "trace_id")

    def __init__(self, span_id: Optional[str], trace_id: Optional[str]):
        self.span_id = span_id
        self.trace_id = trace_id


class _RemoteContext:
    """Context manager installing/removing one :class:`_RemoteAnchor`."""

    __slots__ = ("_tracer", "_anchor", "_token")

    def __init__(self, tracer: "Tracer", anchor: _RemoteAnchor):
        self._tracer = tracer
        self._anchor = anchor
        self._token = None

    def __enter__(self) -> _RemoteAnchor:
        self._token = self._tracer._current.set(self._anchor)
        return self._anchor

    def __exit__(self, *exc) -> bool:
        self._tracer._current.reset(self._token)
        return False


class _ActiveSpan:
    """A live span: context manager measuring one code region."""

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attributes",
        "status",
        "duration_s",
        "_token",
        "_start_wall",
        "_start_perf",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = _new_id()
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.attributes = attributes
        self.status = "ok"
        self.duration_s = 0.0
        self._token = None

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        parent = tracer._current.get()
        if parent is not None:
            self.parent_id = parent.span_id
            # Inherit the chain's trace id (set by a remote anchor); a
            # None here falls back to the tracer-global id at __exit__,
            # preserving the engine behavior where set_trace_id() names
            # the run only partway through it.
            self.trace_id = parent.trace_id
        else:
            self.parent_id = tracer._root_parent
        self._token = tracer._current.set(self)
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attributes.update(attributes)

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._start_perf
        tracer = self._tracer
        tracer._current.reset(self._token)
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        tracer._finish(
            Span(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                trace_id=self.trace_id or tracer._trace_id,
                start_s=self._start_wall,
                duration_s=self.duration_s,
                pid=tracer._pid,
                tid=threading.get_ident(),
                status=self.status,
                attributes=self.attributes,
            )
        )
        return False  # never swallow exceptions


class Tracer:
    """Process-global span recorder (see the module docstring)."""

    def __init__(self):
        self._enabled = False
        self._trace_id: Optional[str] = None
        #: Parent id inherited from another process (worker activation).
        self._root_parent: Optional[str] = None
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._current: contextvars.ContextVar[Optional[_ActiveSpan]] = (
            contextvars.ContextVar("repro_obs_current_span", default=None)
        )
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def trace_id(self) -> Optional[str]:
        return self._trace_id

    def enable(
        self,
        trace_id: Optional[str] = None,
        root_parent: Optional[str] = None,
    ) -> None:
        self._enabled = True
        if trace_id is not None:
            self._trace_id = trace_id
        self._root_parent = root_parent
        self._pid = os.getpid()

    def disable(self) -> None:
        self._enabled = False
        self._root_parent = None

    def set_trace_id(self, trace_id: Optional[str]) -> None:
        """Name the current run; stamped on every subsequent span."""
        self._trace_id = trace_id

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes):
        """A context manager timing one region (no-op when disabled)."""
        if not self._enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attributes)

    def remote_context(
        self,
        trace_id: Optional[str],
        parent_id: Optional[str],
    ):
        """Anchor this thread/task's spans under a remote span.

        Spans opened inside the returned context manager parent onto
        ``parent_id`` and stamp ``trace_id`` — the server side of
        trace-context propagation over a wire protocol.  No-op (but
        still a valid context manager) while disabled.
        """
        if not self._enabled:
            return _NULL_SPAN
        return _RemoteContext(self, _RemoteAnchor(parent_id, trace_id))

    def record(
        self,
        name: str,
        duration_s: float,
        start_s: Optional[float] = None,
        **attributes,
    ) -> Optional[Span]:
        """Record an already-measured interval as a finished span.

        Used where the caller owns the timer (e.g. a contract report's
        ``elapsed_s`` or the solver's per-rung wall times) so the span
        duration is *exactly* the metric the BENCH machinery reports —
        no double measurement, no drift between the two.
        """
        if not self._enabled:
            return None
        parent = self._current.get()
        span = Span(
            name=name,
            span_id=_new_id(),
            parent_id=parent.span_id if parent is not None else self._root_parent,
            trace_id=(parent.trace_id if parent is not None else None)
            or self._trace_id,
            start_s=(time.time() - duration_s) if start_s is None else start_s,
            duration_s=float(duration_s),
            pid=self._pid,
            tid=threading.get_ident(),
            attributes=attributes,
        )
        self._finish(span)
        return span

    def current_span_id(self) -> Optional[str]:
        active = self._current.get()
        if active is not None:
            return active.span_id
        return self._root_parent

    def current_trace_id(self) -> Optional[str]:
        """The effective trace id: the span chain's, else the global."""
        active = self._current.get()
        if active is not None and active.trace_id:
            return active.trace_id
        return self._trace_id

    def current(self) -> Optional[_ActiveSpan]:
        """The innermost live span of this thread/task, if any."""
        return self._current.get()

    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def adopt(self, spans: List[Span]) -> None:
        """Merge finished spans shipped back from a worker process."""
        if not spans:
            return
        with self._lock:
            self._spans.extend(spans)

    def drain(self) -> List[Span]:
        """Pop every buffered finished span (oldest first)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------
    def worker_context(self, **attributes) -> Optional[Dict[str, Any]]:
        """The picklable activation context a worker process needs.

        Returns ``None`` while tracing is disabled so call sites can
        pass it through unconditionally.
        """
        if not self._enabled:
            return None
        return {
            "enabled": True,
            "trace_id": self.current_trace_id(),
            "parent_id": self.current_span_id(),
            "attrs": attributes or {},
        }


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str, **attributes):
    """Module-level convenience for ``get_tracer().span(...)``."""
    return _TRACER.span(name, **attributes)


def new_trace_id() -> str:
    """Mint a fresh trace id (same id space as span ids).

    Used by clients that originate a distributed trace — ``repro query``
    mints one here and carries it in the request envelope.
    """
    return _new_id()


def configure(
    enabled: Optional[bool] = None,
    trace_dir: Optional[str] = None,
) -> Tracer:
    """Turn tracing on/off and select the trace output directory.

    ``trace_dir=None`` leaves the configured directory untouched; the
    effective flush directory is resolved by
    :func:`repro.obs.export.resolve_trace_dir`.
    """
    if enabled is not None:
        if enabled:
            _TRACER.enable()
        else:
            _TRACER.disable()
    if trace_dir is not None:
        os.environ[TRACE_DIR_ENV] = str(trace_dir)
    return _TRACER


def activate_worker_context(context: Optional[Dict[str, Any]]) -> bool:
    """Arm the (worker-process) global tracer from a parent's context.

    Clears any span buffer inherited through ``fork`` — those spans
    belong to (and are flushed by) the parent — and resets the
    current-span variable so the worker's spans attach to the parent id
    carried in ``context``.  Returns True when tracing is now active.
    """
    if not context or not context.get("enabled"):
        _TRACER.disable()
        return False
    with _TRACER._lock:
        _TRACER._spans = []
    _TRACER._current.set(None)
    _TRACER.enable(
        trace_id=context.get("trace_id"),
        root_parent=context.get("parent_id"),
    )
    return True


def _init_from_env() -> None:
    value = os.environ.get(TRACE_ENV, "").strip()
    if not value:
        return
    lowered = value.lower()
    if lowered in ("0", "false", "off", "no", "none", ""):
        return
    if lowered in ("1", "true", "on", "yes"):
        _TRACER.enable()
        return
    # Any other value is a directory: enable and flush there.
    _TRACER.enable()
    os.environ.setdefault(TRACE_DIR_ENV, value)


_init_from_env()
